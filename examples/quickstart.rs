//! Quickstart: encode one VR frame with the perceptual encoder and compare
//! it against the Base+Delta baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use perceptual_vr_encoding::prelude::*;

fn main() {
    // 1. Render a frame of the synthetic "office" scene at a small per-eye
    //    resolution (the algorithm is resolution-agnostic).
    let dims = Dimensions::new(256, 256);
    let frame = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims)).render_linear(0);

    // 2. Build the encoder: a population discrimination model plus the
    //    paper's default configuration (4×4 tiles, 5° foveal bypass,
    //    optimization along the Blue and Red axes).
    let encoder = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default(),
    );

    // 3. Encode for a viewer looking at the center of the display.
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::center_of(dims);
    let result = encoder.encode_frame(&frame, &display, gaze);

    // 4. Compare traffic against the baselines.
    let ours = result.our_stats();
    let bd = result.bd_stats();
    let nocom = nocom_stats(dims);
    println!("scene: office, {dims} pixels, gaze at center");
    println!(
        "  uncompressed : {:>8.2} bits/pixel",
        nocom.bits_per_pixel()
    );
    println!(
        "  BD baseline  : {:>8.2} bits/pixel ({:.1}% reduction vs uncompressed)",
        bd.bits_per_pixel(),
        bd.bandwidth_reduction_percent()
    );
    println!(
        "  ours         : {:>8.2} bits/pixel ({:.1}% vs uncompressed, {:.1}% vs BD)",
        ours.bits_per_pixel(),
        result.reduction_over_uncompressed_percent(),
        result.reduction_over_bd_percent()
    );

    // 5. The adjustment is numerically lossy but bounded by the
    //    discrimination ellipsoids; PSNR quantifies the numeric loss.
    let quality = QualityReport::compare(&result.original, &result.adjusted)
        .expect("frames share dimensions");
    println!(
        "  objective quality of the adjusted frame: {:.1} dB PSNR, {:.1}% of pixels changed",
        quality.psnr_db,
        quality.changed_pixel_fraction * 100.0
    );

    // 6. Decoding uses the unmodified BD decoder and reproduces the adjusted
    //    frame exactly.
    assert_eq!(result.encoded.decode(), result.adjusted);
    println!("  BD round-trip of the adjusted frame: exact");
}
