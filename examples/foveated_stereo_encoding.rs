//! Foveated stereo encoding: encode the two per-eye sub-frames of a stereo
//! VR frame with different gaze positions, as a compositor would each frame.
//!
//! Run with: `cargo run --release --example foveated_stereo_encoding`

use perceptual_vr_encoding::fovea::Eye;
use perceptual_vr_encoding::frame::TileRect;
use perceptual_vr_encoding::prelude::*;

fn main() {
    // A stereo frame: two 256×256 per-eye views side by side.
    let full = Dimensions::new(512, 256);
    let stereo = StereoGeometry::quest2_like(full);
    let frame = SceneRenderer::new(SceneId::Skyline, SceneConfig::stereo(full)).render_linear(0);

    // The eye tracker reports a different fixation for each eye (vergence on
    // a nearby object left of center).
    let gaze_left = GazePoint::new(100.0, 128.0);
    let gaze_right = GazePoint::new(90.0, 128.0);

    let encoder = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default(),
    );

    let mut total_ours = 0u64;
    let mut total_bd = 0u64;
    for (eye, gaze) in [(Eye::Left, gaze_left), (Eye::Right, gaze_right)] {
        let eye_dims = stereo.eye_geometry().dimensions();
        // Slice the eye's sub-frame out of the full stereo frame.
        let offset_x = match eye {
            Eye::Left => 0,
            Eye::Right => full.width / 2,
        };
        let mut eye_frame = LinearFrame::filled(eye_dims, pvc_color::LinearRgb::BLACK);
        let region = TileRect {
            x: offset_x,
            y: 0,
            width: eye_dims.width,
            height: eye_dims.height,
        };
        eye_frame.write_tile(
            TileRect {
                x: 0,
                y: 0,
                width: eye_dims.width,
                height: eye_dims.height,
            },
            &frame.tile_pixels(region),
        );

        let result = encoder.encode_frame(&eye_frame, &stereo.eye_geometry(), gaze);
        total_ours += result.our_stats().compressed_bits;
        total_bd += result.bd_stats().compressed_bits;
        println!(
            "{eye:?} eye: ours {:.2} bpp vs BD {:.2} bpp ({} of {} tiles protected around the fovea)",
            result.our_stats().bits_per_pixel(),
            result.bd_stats().bits_per_pixel(),
            result.stats.foveal_tiles,
            result.stats.total_tiles,
        );
    }

    let saving = (1.0 - total_ours as f64 / total_bd as f64) * 100.0;
    println!("whole stereo frame: {saving:.1}% less DRAM traffic than BD");

    // Project the saving onto the headset's DRAM power budget at 90 Hz.
    let power = PowerModel::default();
    let to_stats = |bits: u64| {
        CompressionStats::from_breakdown(
            full.pixel_count(),
            pvc_bdc::SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: bits,
            },
        )
    };
    let breakdown = power.breakdown(
        &to_stats(total_bd),
        &to_stats(total_ours),
        Dimensions::QUEST2_HIGH,
        RefreshRate::Hz90,
    );
    println!(
        "at 5408x2736 @ 90 FPS this saving is worth {:.0} mW of DRAM power",
        breakdown.net_saving_mw()
    );
}
