//! Power budgeting: measure the encoder's traffic on every scene and
//! project the DRAM power savings across the Quest 2's resolution and
//! refresh-rate options, including the CAU's own overhead and latency.
//!
//! Run with: `cargo run --release --example vr_power_budget`

use perceptual_vr_encoding::prelude::*;

fn main() {
    let dims = Dimensions::new(256, 256);
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::center_of(dims);
    let encoder = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default(),
    );

    // Average bits/pixel of BD and of our encoding across the six scenes.
    let mut bd_bpp = 0.0;
    let mut ours_bpp = 0.0;
    for scene in SceneId::ALL {
        let frame = SceneRenderer::new(scene, SceneConfig::new(dims)).render_linear(0);
        let result = encoder.encode_frame(&frame, &display, gaze);
        bd_bpp += result.bd_stats().bits_per_pixel();
        ours_bpp += result.our_stats().bits_per_pixel();
        println!(
            "{:>9}: BD {:>5.2} bpp → ours {:>5.2} bpp",
            scene.name(),
            result.bd_stats().bits_per_pixel(),
            result.our_stats().bits_per_pixel()
        );
    }
    bd_bpp /= SceneId::ALL.len() as f64;
    ours_bpp /= SceneId::ALL.len() as f64;
    println!("\naverage: BD {bd_bpp:.2} bpp, ours {ours_bpp:.2} bpp\n");

    // Project onto device resolutions and refresh rates (Fig. 13).
    let to_stats = |bpp: f64| {
        CompressionStats::from_breakdown(
            1_000_000,
            pvc_bdc::SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: (bpp * 1_000_000.0) as u64,
            },
        )
    };
    let power = PowerModel::default();
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "resolution", "fps", "saving (W)", "CAU fits?"
    );
    for breakdown in power.quest2_sweep(&to_stats(bd_bpp), &to_stats(ours_bpp)) {
        let fits = power
            .cau
            .meets_frame_budget(breakdown.dimensions, breakdown.fps);
        println!(
            "{:>12} {:>8} {:>12.3} {:>12}",
            breakdown.dimensions.to_string(),
            breakdown.fps,
            breakdown.net_saving_w(),
            if fits { "yes" } else { "NO" }
        );
    }

    // The hardware summary of Sec. 6.1.
    let cau = CauModel::default();
    println!(
        "\nCAU: {:.1} MHz, {:.2} mm^2, {:.1} µW, {:.1} µs per 5408x2736 frame",
        cau.frequency_mhz(),
        cau.total_area_mm2(),
        cau.total_power_mw() * 1000.0,
        cau.frame_latency_us(Dimensions::QUEST2_HIGH)
    );
}
