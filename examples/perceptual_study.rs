//! Simulated psychophysical study: encode every scene, show the adjusted
//! frames to a population of simulated observers and count who notices
//! artifacts (the protocol behind Fig. 14).
//!
//! Run with: `cargo run --release --example perceptual_study`

use perceptual_vr_encoding::prelude::*;

fn main() {
    let dims = Dimensions::new(256, 256);
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::center_of(dims);
    let model = SyntheticDiscriminationModel::default();
    let encoder = PerceptualEncoder::new(model, EncoderConfig::default());
    let grid_size = EncoderConfig::default().tile_size;
    let map = EccentricityMap::per_tile(
        &display,
        &TileGrid::new(dims, grid_size),
        gaze,
        FoveaConfig::default(),
    );

    // Build one trial per scene from the original/adjusted frame pair.
    let trials: Vec<SceneTrial> = SceneId::ALL
        .iter()
        .map(|&scene| {
            let frame = SceneRenderer::new(scene, SceneConfig::new(dims)).render_linear(0);
            let (adjusted, _) = encoder.adjust_frame(&frame, &display, gaze);
            SceneTrial::from_frames(scene.name(), &frame, &adjusted, &map, &model)
        })
        .collect();

    // 11 simulated participants, as in the paper's IRB study.
    let study = UserStudy::new(StudyConfig::default());
    println!("observer sensitivity scales:");
    for o in study.population().observers() {
        println!(
            "  participant {:>2}: scale {:.2}{}",
            o.id + 1,
            o.sensitivity_scale,
            if o.is_color_sensitive() {
                "  (color-sensitive)"
            } else {
                ""
            }
        );
    }

    let outcome = study.run(&trials);
    println!("\nscene      did-not-notice (of {})", outcome.observers);
    for scene in &outcome.scenes {
        println!(
            "{:>9}  {:>2}   {}",
            scene.scene_name,
            scene.did_not_notice,
            "#".repeat(scene.did_not_notice)
        );
    }
    println!(
        "\non average {:.1} of {} participants noticed artifacts (std dev {:.1})",
        outcome.mean_noticed(),
        outcome.observers,
        outcome.std_dev_noticed()
    );
}
