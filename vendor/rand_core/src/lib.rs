//! Offline stand-in for the `rand_core` traits this workspace uses:
//! [`RngCore`] and [`SeedableRng`] (including `seed_from_u64`).

#![forbid(unsafe_code)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with a SplitMix64 stream and
    /// instantiates the RNG from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 generator used for seed expansion.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u32);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn next_u64_combines_two_words() {
        let mut c = Counter(0);
        assert_eq!(c.next_u64(), (2u64 << 32) | 1);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut c = Counter(0);
        let mut buf = [0u8; 7];
        c.fill_bytes(&mut buf);
        assert_eq!(&buf[..4], &1u32.to_le_bytes());
        assert_eq!(&buf[4..], &2u32.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let a: Vec<u64> = {
            let mut s = SplitMix64::new(42);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = SplitMix64::new(42);
            (0..4).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
