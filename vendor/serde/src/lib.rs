//! Offline stand-in for the parts of [serde](https://serde.rs) this
//! workspace uses.
//!
//! The in-tree crates only ever *derive* `Serialize` / `Deserialize`; no
//! code path serializes at run time (there is no `serde_json` in the
//! dependency tree). The traits are therefore pure markers with blanket
//! implementations, and the derives expand to nothing. Swapping this stub
//! for the real `serde` crate requires no source changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that derive bounds and generic
/// bounds written against the real serde API continue to compile.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Blanket-implemented for every type so that derive bounds and generic
/// bounds written against the real serde API continue to compile.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
