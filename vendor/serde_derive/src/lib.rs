//! No-op `Serialize` / `Deserialize` derive macros backing the vendored
//! serde stand-in. The traits they "implement" are blanket-implemented in
//! the `serde` stub, so the derives expand to nothing at all.

use proc_macro::TokenStream;

/// Expands to nothing: `Serialize` is blanket-implemented in the stub.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: `Deserialize` is blanket-implemented in the stub.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
