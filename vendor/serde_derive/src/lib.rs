//! No-op `Serialize` / `Deserialize` derive macros backing the vendored
//! serde stand-in. The traits they "implement" are blanket-implemented in
//! the `serde` stub, so the derives expand to nothing at all.
//!
//! Both derives declare the `serde` helper attribute so in-tree types can
//! carry real field attributes (`#[serde(skip)]` and friends); the stub
//! ignores them, the real `serde_derive` honours them.

use proc_macro::TokenStream;

/// Expands to nothing: `Serialize` is blanket-implemented in the stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: `Deserialize` is blanket-implemented in the stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
