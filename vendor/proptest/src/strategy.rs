//! The [`Strategy`] trait and the primitive strategies the workspace uses:
//! numeric ranges, `any::<T>()`, tuples, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing any value of a primitive type; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of a primitive type, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Primitive types with a full-range uniform distribution.
pub trait Arbitrary {
    /// Draws one uniformly distributed value over the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "integer range must be non-empty");
                    let span = u64::from(self.end - self.start);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "integer range must be non-empty");
                    let span = u64::from(*self.end() - *self.start()) + 1;
                    self.start() + rng.below(span) as $t
                }
            }
        )+
    };
}

impl_strategy_int_range!(u8, u16, u32);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (1u32..40).sample(&mut r);
            assert!((1..40).contains(&x));
            let y = (0u8..=255).sample(&mut r);
            let _ = y; // full range: every draw valid by construction
            let z = (-2.0..2.0f64).sample(&mut r);
            assert!((-2.0..2.0).contains(&z));
            let w = (0.0..=1.0f64).sample(&mut r);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut r = rng();
        let strategy = (any::<u8>(), any::<u8>()).prop_map(|(a, b)| u16::from(a) + u16::from(b));
        let v = strategy.sample(&mut r);
        assert!(v <= 510);
    }

    #[test]
    fn collection_vec_length_in_range() {
        let mut r = rng();
        let strategy = crate::collection::vec(any::<u8>(), 1..64);
        for _ in 0..100 {
            let v = strategy.sample(&mut r);
            assert!((1..64).contains(&v.len()));
        }
    }

    #[test]
    fn uniform3_yields_three_independent_samples() {
        let mut r = rng();
        let strategy = crate::array::uniform3(0.0..=1.0f64);
        let [a, b, c] = strategy.sample(&mut r);
        assert!(
            a != b || b != c,
            "three equal uniform draws are vanishingly unlikely"
        );
    }
}
