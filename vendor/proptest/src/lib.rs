//! Offline stand-in for the parts of the `proptest` API this workspace's
//! property tests use.
//!
//! Instead of shrinking failure cases, the stub simply runs each property
//! over [`test_runner::DEFAULT_CASES`] deterministic pseudo-random samples
//! (seeded from the test name), which preserves the coverage intent of the
//! original tests while requiring no external dependencies.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! The deterministic pseudo-random driver behind the [`proptest!`](crate::proptest) macro.

    /// Number of sampled cases each property is checked against.
    pub const DEFAULT_CASES: u32 = 96;

    /// A small deterministic RNG (SplitMix64) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over the bytes).
        pub fn deterministic(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Returns the next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform integer in `[0, bound)`; `bound` must be > 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values drawn from `element`, with lengths in
    /// the half-open range `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 3]` sampling each element independently.
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        element: S,
    }

    /// Generates arrays of three values drawn from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.element.sample(rng),
                self.element.sample(rng),
                self.element.sample(rng),
            ]
        }
    }
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Checks a condition inside a property, panicking with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Checks equality inside a property, panicking with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body over deterministic samples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::test_runner::DEFAULT_CASES {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut runner_rng);)+
                    $body
                }
            }
        )+
    };
}
