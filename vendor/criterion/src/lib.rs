//! Offline wall-clock benchmarking stand-in for the parts of the
//! `criterion` API this workspace's benches use.
//!
//! Each `bench_function` calibrates an iteration count to a minimum
//! measurement window, takes `sample_size` samples, and prints the best
//! and mean time per iteration. There is no statistical analysis, HTML
//! report, or outlier rejection — just honest timings to stdout.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall-clock span of one measured sample.
const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(10);

/// How values produced by `iter_batched` setup closures are grouped.
/// The stub runs one setup per routine invocation regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark target.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Measures a routine, timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // spans the minimum window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_WINDOW || iters >= 1 << 24 {
                self.samples.push(elapsed.as_secs_f64() / iters as f64);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Measures a routine that consumes a fresh input per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate the per-sample batch count on un-timed setups.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_WINDOW || iters >= 1 << 20 {
                self.samples.push(elapsed.as_secs_f64() / iters as f64);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 1..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn report(&self, name: &str) {
        let best = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len().max(1) as f64;
        println!(
            "{name:<48} best {:>12}  mean {:>12}",
            format_time(best),
            format_time(mean)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "n/a".to_string()
    } else if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The benchmark driver handed to every target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, sample_size: usize) -> &mut Self {
        assert!(sample_size > 0, "sample size must be non-zero");
        self.sample_size = sample_size;
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine_and_collects_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut bencher = Bencher::with_sample_size(2);
        bencher.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(bencher.samples.len(), 2);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2e-3), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
