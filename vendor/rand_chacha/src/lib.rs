//! A genuine ChaCha keystream RNG standing in for the `rand_chacha` crate.
//!
//! Implements the ChaCha block function (RFC 7539 quarter-rounds) with a
//! 64-bit block counter and exposes [`ChaCha8Rng`] / [`ChaCha20Rng`] through
//! the [`rand_core`] traits. The keystream is a faithful ChaCha stream for
//! the given key; only the `seed_from_u64` key expansion (SplitMix64, from
//! the vendored `rand_core`) may differ from upstream `rand_chacha`.

#![forbid(unsafe_code)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}

/// A ChaCha keystream generator with a compile-time round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: u32> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

/// ChaCha with 8 rounds — the variant the workspace's tests seed.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the IETF standard count).
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: u32> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        self.buffer = chacha_block(&self.key, self.counter, ROUNDS);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const ROUNDS: u32> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaChaRng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl<const ROUNDS: u32> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc7539_zero_key_block_zero() {
        // RFC 7539 §2.3.2 test vector structure uses a nonce; with an all-zero
        // key, counter 0 and zero nonce the first output word of ChaCha20 is
        // the well-known 0xade0b876.
        let block = chacha_block(&[0u32; 8], 0, 20);
        assert_eq!(block[0], 0xade0_b876);
        assert_eq!(block[14], 0x69b6_87c3);
        assert_eq!(block[15], 0x8665_eeb2);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1024).map(|_| rng.next_u32().count_ones()).sum();
        let total = 1024 * 32;
        let fraction = f64::from(ones) / f64::from(total);
        assert!((0.48..0.52).contains(&fraction), "bit balance {fraction}");
    }
}
