//! Offline stand-in for the parts of the `rand` crate this workspace uses:
//! the [`Rng`] extension trait with `gen::<T>()` for primitive types, and
//! re-exports of the [`rand_core`] traits.

#![forbid(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be sampled uniformly from an [`RngCore`], mirroring
/// `rand`'s `Standard` distribution for the primitives this workspace uses.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $from:ident($src:ident)),+ $(,)?) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$src() as $t
            }
        })+
    };
}

impl_standard_int! {
    u8 => from(next_u32),
    u16 => from(next_u32),
    u32 => from(next_u32),
    u64 => from(next_u64),
    usize => from(next_u64),
    i8 => from(next_u32),
    i16 => from(next_u32),
    i32 => from(next_u32),
    i64 => from(next_u64),
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u32() >> 31 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Extension methods for random number generators.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);

    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.0 as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn f64_sampling_stays_in_unit_interval() {
        for bits in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let x: f64 = Fixed(bits).gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn bool_uses_high_bit() {
        assert!(Fixed(u64::MAX).gen::<bool>());
        assert!(!Fixed(0).gen::<bool>());
    }

    #[test]
    fn integer_widths_truncate() {
        assert_eq!(Fixed(0x1_23).gen::<u8>(), 0x23);
        assert_eq!(Fixed(0xFFFF_FFFF_FFFF_FFFF).gen::<u64>(), u64::MAX);
    }
}
