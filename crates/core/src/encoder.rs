//! The full-frame perceptual encoder.

use crate::adjust::{adjust_tile_with, AdjustScratch, AdjustmentCase};
use crate::config::EncoderConfig;
use crate::stats::AdjustmentStats;
use pvc_bdc::{
    BdConfig, BdEncodedFrame, BdEncoder, BitWriter, CompressionStats, TemporalFrameStats,
};
use pvc_color::{DiscriminationModel, LinearRgb, Srgb8};
use pvc_fovea::{DisplayGeometry, EccentricityMap, GazePoint};
use pvc_frame::{Dimensions, LinearFrame, SrgbFrame, SrgbTileLanes, TileGrid, TileRect};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use std::time::Instant;

/// What one worker decided about one tile. Collected in tile order so the
/// fold below is deterministic regardless of the thread count.
enum TileOutcome {
    /// The tile overlaps the foveal bypass region and is copied through.
    Foveal,
    /// The tile was adjusted; carries the replacement pixels.
    Adjusted {
        tile: TileRect,
        pixels: Vec<LinearRgb>,
        case: AdjustmentCase,
    },
}

/// The color perception-aware frame encoder (Fig. 7 of the paper).
///
/// The encoder sits between the rendering pipeline (which produces linear
/// RGB pixels and, per prior work, per-pixel discrimination ellipsoids) and
/// the existing BD framebuffer compressor. It adjusts pixel colors inside
/// their discrimination ellipsoids so that the BD Δs become cheaper, then
/// hands the adjusted frame to an unmodified BD encoder. Decoding is
/// untouched.
#[derive(Debug, Clone)]
pub struct PerceptualEncoder<M> {
    model: M,
    config: EncoderConfig,
    /// The BD back-end, built once at construction rather than per frame.
    bd: BdEncoder,
}

impl<M: DiscriminationModel + Sync> PerceptualEncoder<M> {
    /// Creates an encoder from a discrimination model and a configuration.
    ///
    /// `config.threads` is normalized here, in one place: the public field
    /// permits 0 via a struct literal (or deserialization), which means
    /// sequential — the encoder never needs a thread-count guard again.
    pub fn new(model: M, mut config: EncoderConfig) -> Self {
        config.threads = config.threads.max(1);
        let bd =
            BdEncoder::new(BdConfig::with_tile_size(config.tile_size)).with_threads(config.threads);
        PerceptualEncoder { model, config, bd }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The discrimination model used to build per-pixel ellipsoids.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Adjusts the colors of a linear-RGB frame for a given display and gaze
    /// position, returning the adjusted frame and the per-tile statistics.
    ///
    /// Tiles overlapping the foveal bypass region are copied through
    /// unchanged; every other tile is adjusted along the configured axes and
    /// the cheaper result is kept.
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn adjust_frame(
        &self,
        frame: &LinearFrame,
        display: &DisplayGeometry,
        gaze: GazePoint,
    ) -> (LinearFrame, AdjustmentStats) {
        assert_eq!(
            frame.dimensions(),
            display.dimensions(),
            "frame and display dimensions must match"
        );
        let grid = TileGrid::new(frame.dimensions(), self.config.tile_size);
        let eccentricity = EccentricityMap::per_tile(display, &grid, gaze, self.config.fovea);
        self.adjust_frame_with_map(frame, &eccentricity)
    }

    /// Like [`Self::adjust_frame`], but reuses a prebuilt eccentricity map.
    ///
    /// The map only depends on the display geometry, tile grid, gaze and
    /// fovea configuration — not on pixel data — so a session encoding many
    /// frames at the same gaze (see [`crate::BatchEncoder`]) can build it
    /// once and amortise its cost across the stream.
    ///
    /// The per-tile fan-out runs on `EncoderConfig::threads` scoped worker
    /// threads; tile outcomes are folded in tile order, so the result is
    /// bit-identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if the map's tile size or tile counts do not match this
    /// encoder's configuration and the frame's dimensions.
    pub fn adjust_frame_with_map(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
    ) -> (LinearFrame, AdjustmentStats) {
        let mut adjusted = LinearFrame::filled(Dimensions::new(1, 1), LinearRgb::BLACK);
        let mut scratch = AdjustScratch::new();
        let stats =
            self.adjust_frame_with_map_into(frame, eccentricity, &mut scratch, &mut adjusted);
        (adjusted, stats)
    }

    /// Like [`Self::adjust_frame_with_map`], but writes the adjusted frame
    /// into a caller-provided buffer and runs the per-tile machinery out
    /// of a caller-provided [`AdjustScratch`] — the steady-state
    /// allocation-free form of the adjustment.
    ///
    /// Bit-identical to `adjust_frame_with_map` on the same inputs. With
    /// `threads <= 1` every tile is adjusted in place through the scratch
    /// (no allocation once the buffers are warm); the parallel path gets
    /// one scratch per worker via
    /// [`pvc_parallel::parallel_chunk_map_init`] and only allocates the
    /// per-tile result pixels it has to send across threads.
    ///
    /// # Panics
    ///
    /// Panics if the map does not match the frame and encoder
    /// configuration.
    pub fn adjust_frame_with_map_into(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
        scratch: &mut AdjustScratch,
        out: &mut LinearFrame,
    ) -> AdjustmentStats {
        let grid = TileGrid::new(frame.dimensions(), self.config.tile_size);
        assert_eq!(
            eccentricity.tile_size(),
            self.config.tile_size,
            "eccentricity map tile size must match the encoder configuration"
        );
        assert_eq!(
            (eccentricity.tiles_x(), eccentricity.tiles_y()),
            (grid.tiles_x(), grid.tiles_y()),
            "eccentricity map must cover the frame's tile grid"
        );
        out.clone_from(frame);
        let mut stats = AdjustmentStats {
            total_tiles: grid.tile_count(),
            ..Default::default()
        };

        if self.config.threads <= 1 {
            // Sequential: adjust straight through the caller's scratch and
            // write each winning tile into `out` — no per-tile allocation.
            for tile in grid.tiles() {
                if eccentricity.is_foveal_tile(tile) {
                    stats.foveal_tiles += 1;
                    continue;
                }
                let case = self.adjust_tile_into_scratch(frame, eccentricity, tile, scratch);
                stats.record_case(case);
                out.write_tile(tile, scratch.best());
            }
            return stats;
        }

        // Parallel: one scratch per worker; only the winning pixels of
        // each adjusted tile cross the thread boundary.
        let tiles: Vec<TileRect> = grid.tiles().collect();
        let outcomes = pvc_parallel::parallel_chunk_map_init(
            &tiles,
            self.config.threads,
            AdjustScratch::new,
            |worker_scratch, tile_batch| {
                tile_batch
                    .iter()
                    .map(|&tile| {
                        if eccentricity.is_foveal_tile(tile) {
                            return TileOutcome::Foveal;
                        }
                        let case = self.adjust_tile_into_scratch(
                            frame,
                            eccentricity,
                            tile,
                            worker_scratch,
                        );
                        TileOutcome::Adjusted {
                            tile,
                            case,
                            pixels: worker_scratch.best().to_vec(),
                        }
                    })
                    .collect()
            },
        );
        for outcome in outcomes {
            match outcome {
                TileOutcome::Foveal => stats.foveal_tiles += 1,
                TileOutcome::Adjusted { tile, pixels, case } => {
                    stats.record_case(case);
                    out.write_tile(tile, &pixels);
                }
            }
        }
        stats
    }

    /// Gathers one (non-foveal) tile into the scratch, builds its
    /// ellipsoids and adjusts it; the winning pixels land in
    /// `scratch.best()`.
    fn adjust_tile_into_scratch(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
        tile: TileRect,
        scratch: &mut AdjustScratch,
    ) -> AdjustmentCase {
        frame.tile_pixels_into(tile, &mut scratch.pixels);
        let ecc = eccentricity.tile_eccentricity(tile);
        scratch.build_ellipsoids(|p| self.model.ellipsoid(p, ecc));
        adjust_tile_with(scratch, &self.config.axes).case
    }

    /// Runs the complete pipeline of Fig. 7: adjust colors, gamma-encode to
    /// sRGB and compress with the existing BD encoder. The result can also
    /// produce the BD encoding of the *unadjusted* frame on demand
    /// ([`PerceptualEncodeResult::baseline`]) so callers can compare against
    /// the state-of-the-art baseline directly; that second BD pass is
    /// evaluated lazily and costs nothing until asked for.
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn encode_frame(
        &self,
        frame: &LinearFrame,
        display: &DisplayGeometry,
        gaze: GazePoint,
    ) -> PerceptualEncodeResult {
        let (adjusted_linear, stats) = self.adjust_frame(frame, display, gaze);
        self.bd_encode(frame, adjusted_linear, stats)
    }

    /// Like [`Self::encode_frame`], but reuses a prebuilt eccentricity map
    /// (see [`Self::adjust_frame_with_map`]).
    ///
    /// # Panics
    ///
    /// Panics if the map does not match the frame and encoder configuration.
    pub fn encode_frame_with_map(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
    ) -> PerceptualEncodeResult {
        let (adjusted_linear, stats) = self.adjust_frame_with_map(frame, eccentricity);
        self.bd_encode(frame, adjusted_linear, stats)
    }

    /// Stream-mode encode: adjust colors, gamma-encode and BD-compress the
    /// adjusted frame — and nothing else.
    ///
    /// A serving path never consumes the baseline BD encoding of the
    /// unadjusted frame (that exists to regenerate the paper's comparison
    /// figures), nor the gamma-encoded original. Skipping both halves the
    /// BD work per streamed frame. The `encoded` bitstream is bit-identical
    /// to [`Self::encode_frame`]'s on the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn encode_frame_stream(
        &self,
        frame: &LinearFrame,
        display: &DisplayGeometry,
        gaze: GazePoint,
    ) -> StreamEncodeResult {
        let (adjusted_linear, stats) = self.adjust_frame(frame, display, gaze);
        self.bd_encode_stream(adjusted_linear, stats)
    }

    /// Like [`Self::encode_frame_stream`], but reuses a prebuilt
    /// eccentricity map (see [`Self::adjust_frame_with_map`]).
    ///
    /// # Panics
    ///
    /// Panics if the map does not match the frame and encoder configuration.
    pub fn encode_frame_stream_with_map(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
    ) -> StreamEncodeResult {
        let (adjusted_linear, stats) = self.adjust_frame_with_map(frame, eccentricity);
        self.bd_encode_stream(adjusted_linear, stats)
    }

    /// Stream-mode encode through caller-provided scratch: adjusts the
    /// frame, gamma-encodes it and packs the BD bitstream straight into
    /// `out` — bit-identical to
    /// [`Self::encode_frame_stream_with_map`]'s `encoded.to_bitstream()`
    /// — returning only the per-frame statistics.
    ///
    /// Every intermediate (adjusted frame, sRGB frame, tile buffers, bit
    /// packing) lives in `scratch`, so once the buffers are warm a
    /// sequential encoder performs **zero** steady-state allocation per
    /// frame. This is the per-frame hot path of a streaming session
    /// (`pvc_stream` shard workers call it through
    /// `BatchEncoder::encode_frame_stream_into`).
    ///
    /// # Panics
    ///
    /// Panics if the map does not match the frame and encoder configuration.
    pub fn encode_frame_stream_with_map_into(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
        scratch: &mut StreamScratch,
        out: &mut Vec<u8>,
    ) -> StreamFrameStats {
        let started = Instant::now();
        let adjustment = self.adjust_frame_with_map_into(
            frame,
            eccentricity,
            &mut scratch.adjust,
            &mut scratch.adjusted,
        );
        let after_adjust = Instant::now();
        scratch.adjusted.to_srgb_into(&mut scratch.srgb);
        let after_gamma = Instant::now();
        let compression =
            self.bd
                .encode_frame_into(&scratch.srgb, &mut scratch.writer, &mut scratch.gather);
        out.clear();
        out.extend_from_slice(scratch.writer.as_bytes());
        // Reading the clock is a vDSO call, not an allocation, so the
        // sub-stage timing rides along without disturbing the zero-alloc
        // pin on this path.
        scratch.timing = StageNanos {
            adjust: after_adjust.duration_since(started).as_nanos() as u64,
            gamma: after_gamma.duration_since(after_adjust).as_nanos() as u64,
            bd_encode: after_gamma.elapsed().as_nanos() as u64,
        };
        let bits = scratch.writer.bits_written();
        StreamFrameStats {
            adjustment,
            compression,
            temporal: intra_frame_stats(adjustment.total_tiles as u64, bits),
        }
    }

    /// Temporal stream-mode encode: adjust, gamma-encode and emit either
    /// an intra keyframe (the exact bitstream of
    /// [`Self::encode_frame_stream_with_map_into`]) or a predicted frame
    /// of per-tile Skip / Delta / Intra records against `history`.
    ///
    /// A frame is a keyframe when its absolute `frame_index` is a multiple
    /// of `TemporalConfig::keyframe_interval`, when `history` is invalid
    /// (fresh encoder, or an explicit reset at a handoff boundary) or when
    /// the frame size changed. `history` is updated to this frame's
    /// adjusted pixels on return, so feeding consecutive frame indices
    /// reproduces exactly the stream a decoder can follow.
    ///
    /// Temporal packing is sequential regardless of
    /// `EncoderConfig::threads`: keyframes already serialize identically
    /// across thread counts and predicted frames are packed on one thread,
    /// so the emitted bytes are thread-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the map does not match the frame and encoder configuration.
    pub fn encode_frame_stream_temporal_into(
        &self,
        frame: &LinearFrame,
        eccentricity: &EccentricityMap,
        history: &mut TemporalHistory,
        frame_index: u32,
        scratch: &mut StreamScratch,
        out: &mut Vec<u8>,
    ) -> StreamFrameStats {
        let started = Instant::now();
        let adjustment = self.adjust_frame_with_map_into(
            frame,
            eccentricity,
            &mut scratch.adjust,
            &mut scratch.adjusted,
        );
        let after_adjust = Instant::now();
        scratch.adjusted.to_srgb_into(&mut scratch.srgb);
        let after_gamma = Instant::now();
        let interval = self.config.temporal.keyframe_interval.max(1);
        let keyframe = frame_index % interval == 0
            || !history.valid
            || history.prev.dimensions() != scratch.srgb.dimensions();
        let (temporal, compression) = if keyframe {
            let compression =
                self.bd
                    .encode_frame_into(&scratch.srgb, &mut scratch.writer, &mut scratch.gather);
            let bits = scratch.writer.bits_written();
            (
                intra_frame_stats(adjustment.total_tiles as u64, bits),
                compression,
            )
        } else {
            pvc_bdc::encode_temporal_frame_into(
                self.config.tile_size,
                &scratch.srgb,
                &history.prev,
                &mut scratch.writer,
                &mut scratch.gather,
                &mut scratch.reference_gather,
            )
        };
        history.prev.clone_from(&scratch.srgb);
        history.valid = true;
        out.clear();
        out.extend_from_slice(scratch.writer.as_bytes());
        scratch.timing = StageNanos {
            adjust: after_adjust.duration_since(started).as_nanos() as u64,
            gamma: after_gamma.duration_since(after_adjust).as_nanos() as u64,
            bd_encode: after_gamma.elapsed().as_nanos() as u64,
        };
        StreamFrameStats {
            adjustment,
            compression,
            temporal,
        }
    }

    fn bd_encode(
        &self,
        frame: &LinearFrame,
        adjusted_linear: LinearFrame,
        stats: AdjustmentStats,
    ) -> PerceptualEncodeResult {
        let original = frame.to_srgb();
        let adjusted = adjusted_linear.to_srgb();
        let encoded = self.bd.encode_frame(&adjusted);
        PerceptualEncodeResult {
            original,
            adjusted,
            encoded,
            baseline: OnceLock::new(),
            bd_threads: self.config.threads,
            stats,
        }
    }

    fn bd_encode_stream(
        &self,
        adjusted_linear: LinearFrame,
        stats: AdjustmentStats,
    ) -> StreamEncodeResult {
        let adjusted = adjusted_linear.to_srgb();
        let encoded = self.bd.encode_frame(&adjusted);
        StreamEncodeResult {
            adjusted,
            encoded,
            stats,
        }
    }
}

/// Reusable per-session state for the scratch stream-encode path
/// ([`PerceptualEncoder::encode_frame_stream_with_map_into`] /
/// `BatchEncoder::encode_frame_stream_into`): the tile adjustment
/// buffers, the adjusted frame in both color spaces, the BD tile gather
/// buffer and the bitstream writer.
///
/// Buffers grow to the session's frame size on the first frame and are
/// reused verbatim afterwards, so session lifetime — not frame count —
/// bounds the allocations. One scratch may serve sessions of different
/// frame sizes back to back (a shard worker does exactly that); buffers
/// simply warm up to the largest size seen.
#[derive(Debug, Clone)]
pub struct StreamScratch {
    adjust: AdjustScratch,
    adjusted: LinearFrame,
    srgb: SrgbFrame,
    writer: BitWriter,
    gather: SrgbTileLanes,
    /// Reference-tile gather lanes for temporal encodes. Pure scratch —
    /// the bit-relevant previous frame lives in [`TemporalHistory`], so a
    /// shard worker can keep sharing one scratch across all its sessions.
    reference_gather: SrgbTileLanes,
    timing: StageNanos,
}

impl Default for StreamScratch {
    fn default() -> Self {
        StreamScratch {
            adjust: AdjustScratch::new(),
            // Placeholder frames; the first encode resizes them.
            adjusted: LinearFrame::filled(Dimensions::new(1, 1), LinearRgb::BLACK),
            srgb: SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default()),
            writer: BitWriter::new(),
            gather: SrgbTileLanes::new(),
            reference_gather: SrgbTileLanes::new(),
            timing: StageNanos::default(),
        }
    }
}

impl StreamScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        StreamScratch::default()
    }

    /// Wall-clock breakdown of the most recent
    /// [`PerceptualEncoder::encode_frame_stream_with_map_into`] call
    /// through this scratch (all zeros before the first encode). Lives on
    /// the scratch rather than in [`StreamFrameStats`] so the stats stay a
    /// pure function of the pixels — tests compare them across runs.
    pub fn last_timing(&self) -> StageNanos {
        self.timing
    }
}

/// Wall-clock nanoseconds spent in each sub-stage of one scratch
/// stream-encode: the per-frame breakdown a tracing worker turns into
/// adjust / gamma / BD-encode spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Eccentricity-guided tile adjustment.
    pub adjust: u64,
    /// Linear → sRGB gamma conversion.
    pub gamma: u64,
    /// BD entropy encode plus the copy into the caller's output buffer.
    pub bd_encode: u64,
}

/// Per-frame telemetry of the scratch stream-encode path: everything a
/// serving pipeline records about a frame, with the payload bytes
/// delivered separately through the caller's output buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamFrameStats {
    /// Per-tile adjustment statistics (the paper's case distribution).
    pub adjustment: AdjustmentStats,
    /// Compression statistics of the emitted BD bitstream.
    pub compression: CompressionStats,
    /// Temporal coding statistics. Intra-only encodes report a keyframe
    /// whose `bits == intra_bits`, so accumulating this field is always
    /// meaningful regardless of the temporal configuration.
    pub temporal: TemporalFrameStats,
}

/// Builds the [`TemporalFrameStats`] of an intra (key) frame: every tile
/// is an intra record and the temporal mode saves nothing.
fn intra_frame_stats(tiles: u64, bits: u64) -> TemporalFrameStats {
    TemporalFrameStats {
        keyframe: true,
        intra_tiles: tiles,
        bits,
        intra_bits: bits,
        ..TemporalFrameStats::default()
    }
}

/// The encoder side of a temporal session's GOP state: the previous
/// adjusted frame that the next predicted frame encodes against.
///
/// Owned per *session* (each [`crate::BatchEncoder`] embeds one), never
/// shared through [`StreamScratch`]: the previous frame is bit-relevant
/// state, while the scratch is explicitly documented as shareable across
/// sessions on a shard. [`Self::reset`] drops the reference, forcing the
/// next frame to be an intra keyframe — the handoff-boundary refresh the
/// migration/shed determinism pins rely on.
#[derive(Debug, Clone)]
pub struct TemporalHistory {
    prev: SrgbFrame,
    valid: bool,
}

impl Default for TemporalHistory {
    fn default() -> Self {
        TemporalHistory::new()
    }
}

impl TemporalHistory {
    /// Creates an empty (invalid) history: the first encode through it is
    /// forced to a keyframe.
    pub fn new() -> Self {
        TemporalHistory {
            prev: SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default()),
            valid: false,
        }
    }

    /// Drops the reference frame, forcing the next frame to be an intra
    /// keyframe.
    pub fn reset(&mut self) {
        self.valid = false;
    }

    /// Whether the history holds a usable reference frame.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

/// Everything produced by one invocation of the perceptual encoder.
///
/// The BD encoding of the *unadjusted* frame (the paper's "BD" baseline) is
/// computed lazily on first access through [`Self::baseline`] /
/// [`Self::bd_stats`]; callers that never compare against the baseline —
/// streaming sessions, ablations over our own numbers — no longer pay a
/// second BD pass per frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptualEncodeResult {
    /// The unadjusted frame, gamma-encoded (what BD alone would compress).
    pub original: SrgbFrame,
    /// The perceptually adjusted frame, gamma-encoded.
    pub adjusted: SrgbFrame,
    /// BD encoding of the adjusted frame — "ours" in the paper's figures.
    pub encoded: BdEncodedFrame,
    /// Lazily computed BD encoding of `original` — the "BD" baseline.
    /// Skipped by serde (real serde has no `OnceLock` impls; the cache is
    /// rebuilt on first access after a round-trip anyway).
    #[serde(skip)]
    baseline: OnceLock<BdEncodedFrame>,
    /// Thread count the baseline encode should use, mirroring the encoder.
    /// Skipped by serde; a deserialized 0 is treated as sequential.
    #[serde(skip)]
    bd_threads: usize,
    /// Per-tile adjustment statistics.
    pub stats: AdjustmentStats,
}

/// Equality ignores whether the lazy baseline has been materialized: two
/// results from the same inputs are equal regardless of which accessors
/// have been called on them.
impl PartialEq for PerceptualEncodeResult {
    fn eq(&self, other: &Self) -> bool {
        self.original == other.original
            && self.adjusted == other.adjusted
            && self.encoded == other.encoded
            && self.stats == other.stats
    }
}

impl Eq for PerceptualEncodeResult {}

impl PerceptualEncodeResult {
    /// BD encoding of the original frame — the "BD" baseline the paper's
    /// figures compare against.
    ///
    /// Computed on first access (one extra BD pass, using the same tile
    /// size and thread count as the perceptual encoding) and cached for the
    /// lifetime of the result.
    pub fn baseline(&self) -> &BdEncodedFrame {
        self.baseline.get_or_init(|| {
            // A deserialized result has bd_threads 0 (serde skip), which
            // with_threads normalizes to sequential.
            BdEncoder::new(BdConfig::with_tile_size(self.encoded.tile_size()))
                .with_threads(self.bd_threads)
                .encode_frame(&self.original)
        })
    }

    /// Compression statistics of the perceptual encoding.
    pub fn our_stats(&self) -> CompressionStats {
        self.encoded.stats()
    }

    /// Compression statistics of the plain BD baseline (materializes the
    /// lazy baseline encoding on first call).
    pub fn bd_stats(&self) -> CompressionStats {
        self.baseline().stats()
    }

    /// Traffic reduction of the perceptual encoding over plain BD, percent.
    pub fn reduction_over_bd_percent(&self) -> f64 {
        self.our_stats().reduction_over(&self.bd_stats())
    }

    /// Traffic reduction of the perceptual encoding over uncompressed
    /// frames, percent (the main number of Fig. 10).
    pub fn reduction_over_uncompressed_percent(&self) -> f64 {
        self.our_stats().bandwidth_reduction_percent()
    }
}

/// The output of the stream-mode encode path: only what a serving pipeline
/// ships — the adjusted frame and its BD bitstream — with no baseline
/// comparison material at all.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEncodeResult {
    /// The perceptually adjusted frame, gamma-encoded.
    pub adjusted: SrgbFrame,
    /// BD encoding of the adjusted frame — the bits that go on the wire.
    pub encoded: BdEncodedFrame,
    /// Per-tile adjustment statistics.
    pub stats: AdjustmentStats,
}

impl StreamEncodeResult {
    /// Compression statistics of the perceptual encoding.
    pub fn our_stats(&self) -> CompressionStats {
        self.encoded.stats()
    }

    /// Traffic reduction over uncompressed frames, percent.
    pub fn reduction_over_uncompressed_percent(&self) -> f64 {
        self.our_stats().bandwidth_reduction_percent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::{DiscriminationModel, SyntheticDiscriminationModel};
    use pvc_fovea::FoveaConfig;
    use pvc_frame::Dimensions;
    use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

    fn test_frame(scene: SceneId) -> LinearFrame {
        SceneRenderer::new(scene, SceneConfig::new(Dimensions::new(128, 96))).render_linear(0)
    }

    fn encoder() -> PerceptualEncoder<SyntheticDiscriminationModel> {
        PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default(),
        )
    }

    #[test]
    fn adjusted_frame_beats_bd_on_every_scene() {
        for scene in SceneId::ALL {
            let frame = test_frame(scene);
            let display = DisplayGeometry::quest2_like(frame.dimensions());
            let gaze = GazePoint::center_of(frame.dimensions());
            let result = encoder().encode_frame(&frame, &display, gaze);
            assert!(
                result.reduction_over_bd_percent() > 0.0,
                "{scene}: ours must not be larger than BD"
            );
            assert!(
                result.reduction_over_uncompressed_percent()
                    > result.bd_stats().bandwidth_reduction_percent(),
                "{scene}: ours must beat BD vs uncompressed too"
            );
        }
    }

    #[test]
    fn adjustment_respects_perceptual_constraints() {
        // Every adjusted pixel must stay within the discrimination ellipsoid
        // of its original color at that tile's eccentricity.
        let frame = test_frame(SceneId::Office);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let enc = encoder();
        let (adjusted, _) = enc.adjust_frame(&frame, &display, gaze);
        let grid = TileGrid::new(frame.dimensions(), enc.config().tile_size);
        let map = EccentricityMap::per_tile(&display, &grid, gaze, enc.config().fovea);
        let model = SyntheticDiscriminationModel::default();
        for tile in grid.tiles() {
            let ecc = map.tile_eccentricity(tile);
            for (orig, adj) in frame
                .tile_pixels(tile)
                .iter()
                .zip(adjusted.tile_pixels(tile))
            {
                let ellipsoid = model.ellipsoid(*orig, ecc);
                assert!(
                    ellipsoid.contains_rgb(adj, 1e-6),
                    "adjusted pixel escaped its ellipsoid"
                );
            }
        }
    }

    #[test]
    fn foveal_tiles_are_bit_exact() {
        let frame = test_frame(SceneId::Thai);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let enc = encoder();
        let (adjusted, stats) = enc.adjust_frame(&frame, &display, gaze);
        assert!(
            stats.foveal_tiles > 0,
            "a centrally-fixated frame must have foveal tiles"
        );
        let grid = TileGrid::new(frame.dimensions(), enc.config().tile_size);
        let map = EccentricityMap::per_tile(&display, &grid, gaze, enc.config().fovea);
        for tile in grid.tiles() {
            if map.is_foveal_tile(tile) {
                assert_eq!(frame.tile_pixels(tile), adjusted.tile_pixels(tile));
            }
        }
    }

    #[test]
    fn decoding_reconstructs_the_adjusted_frame_exactly() {
        // Our scheme is numerically lossy w.r.t. the original frame but the
        // BD stage stays lossless: decode(encode(adjusted)) == adjusted.
        let frame = test_frame(SceneId::Skyline);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let result = encoder().encode_frame(&frame, &display, gaze);
        assert_eq!(result.encoded.decode(), result.adjusted);
        assert_eq!(result.baseline().decode(), result.original);
        assert_ne!(
            result.adjusted, result.original,
            "adjustment must change peripheral pixels"
        );
    }

    #[test]
    fn statistics_account_for_every_tile() {
        let frame = test_frame(SceneId::Fortnite);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let result = encoder().encode_frame(&frame, &display, gaze);
        let s = result.stats;
        assert_eq!(s.total_tiles, s.foveal_tiles + s.adjusted_tiles());
        assert!(s.case2_tiles > 0, "smooth scenes should exercise case 2");
    }

    #[test]
    fn zero_threads_field_encodes_sequentially_without_panicking() {
        // The public field permits 0 via a struct literal, bypassing the
        // with_threads assert; the encode path must treat it as sequential.
        let frame = test_frame(SceneId::Office);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let zero = PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig {
                threads: 0,
                ..EncoderConfig::default()
            },
        );
        let result = zero.encode_frame(&frame, &display, gaze);
        assert_eq!(
            result.encoded,
            encoder().encode_frame(&frame, &display, gaze).encoded
        );
    }

    #[test]
    fn multithreaded_encoding_matches_sequential() {
        let frame = test_frame(SceneId::Monkey);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let sequential = PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default().with_threads(1),
        )
        .encode_frame(&frame, &display, gaze);
        let parallel = PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default().with_threads(4),
        )
        .encode_frame(&frame, &display, gaze);
        assert_eq!(sequential.adjusted, parallel.adjusted);
        assert_eq!(sequential.stats, parallel.stats);
    }

    #[test]
    fn stream_mode_matches_the_full_encode_bit_for_bit() {
        for scene in [SceneId::Office, SceneId::Dumbo] {
            let frame = test_frame(scene);
            let display = DisplayGeometry::quest2_like(frame.dimensions());
            let gaze = GazePoint::new(40.0, 30.0);
            let enc = encoder();
            let full = enc.encode_frame(&frame, &display, gaze);
            let stream = enc.encode_frame_stream(&frame, &display, gaze);
            assert_eq!(stream.encoded, full.encoded);
            assert_eq!(stream.adjusted, full.adjusted);
            assert_eq!(stream.stats, full.stats);
            assert_eq!(
                stream.our_stats().compressed_bits,
                full.our_stats().compressed_bits
            );
        }
    }

    #[test]
    fn scratch_stream_encode_is_bit_identical_to_the_allocating_path() {
        let mut scratch = StreamScratch::new();
        let mut bitstream = Vec::new();
        // One scratch across scenes and gazes, arriving dirty each time.
        for (scene, gaze) in [
            (SceneId::Office, GazePoint::new(40.0, 30.0)),
            (SceneId::Skyline, GazePoint::new(-5.0, 200.0)),
            (SceneId::Dumbo, GazePoint::new(64.0, 48.0)),
        ] {
            let frame = test_frame(scene);
            let display = DisplayGeometry::quest2_like(frame.dimensions());
            let enc = encoder();
            let expected = enc.encode_frame_stream(&frame, &display, gaze);
            let grid = TileGrid::new(frame.dimensions(), enc.config().tile_size);
            let map = EccentricityMap::per_tile(&display, &grid, gaze, enc.config().fovea);
            let stats =
                enc.encode_frame_stream_with_map_into(&frame, &map, &mut scratch, &mut bitstream);
            assert_eq!(bitstream, expected.encoded.to_bitstream());
            assert_eq!(stats.adjustment, expected.stats);
            assert_eq!(stats.compression, expected.our_stats());
        }
    }

    #[test]
    fn scratch_stream_encode_matches_across_thread_counts() {
        let frame = test_frame(SceneId::Monkey);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let mut reference = Vec::new();
        let mut parallel = Vec::new();
        for (threads, out) in [(1usize, &mut reference), (4, &mut parallel)] {
            let enc = PerceptualEncoder::new(
                SyntheticDiscriminationModel::default(),
                EncoderConfig::default().with_threads(threads),
            );
            let grid = TileGrid::new(frame.dimensions(), enc.config().tile_size);
            let map = EccentricityMap::per_tile(&display, &grid, gaze, enc.config().fovea);
            let mut scratch = StreamScratch::new();
            enc.encode_frame_stream_with_map_into(&frame, &map, &mut scratch, out);
        }
        assert_eq!(reference, parallel);
    }

    #[test]
    fn lazy_baseline_matches_an_eager_bd_pass() {
        let frame = test_frame(SceneId::Skyline);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let enc = encoder();
        let result = enc.encode_frame(&frame, &display, gaze);
        let eager = BdEncoder::new(BdConfig::with_tile_size(enc.config().tile_size))
            .encode_frame(&frame.to_srgb());
        // First access materializes; second reuses the same encoding.
        assert_eq!(*result.baseline(), eager);
        assert_eq!(result.bd_stats(), eager.stats());
        assert!(std::ptr::eq(result.baseline(), result.baseline()));
    }

    #[test]
    fn equality_ignores_baseline_materialization_state() {
        let frame = test_frame(SceneId::Thai);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let enc = encoder();
        let touched = enc.encode_frame(&frame, &display, gaze);
        let untouched = enc.encode_frame(&frame, &display, gaze);
        let _ = touched.bd_stats();
        assert_eq!(touched, untouched);
    }

    #[test]
    fn disabling_the_fovea_adjusts_every_tile() {
        let frame = test_frame(SceneId::Office);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let gaze = GazePoint::center_of(frame.dimensions());
        let enc = PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default().with_fovea(FoveaConfig::disabled()),
        );
        let (_, stats) = enc.adjust_frame(&frame, &display, gaze);
        assert_eq!(stats.foveal_tiles, 0);
        assert_eq!(stats.adjusted_tiles(), stats.total_tiles);
    }

    #[test]
    fn off_center_gaze_shifts_the_protected_region() {
        let frame = test_frame(SceneId::Office);
        let display = DisplayGeometry::quest2_like(frame.dimensions());
        let corner_gaze = GazePoint::new(8.0, 8.0);
        let enc = encoder();
        let (adjusted, _) = enc.adjust_frame(&frame, &display, corner_gaze);
        // The corner tile is now foveal and must be untouched...
        let grid = TileGrid::new(frame.dimensions(), enc.config().tile_size);
        let corner = grid.tile(0, 0);
        assert_eq!(frame.tile_pixels(corner), adjusted.tile_pixels(corner));
        // ... while the frame as a whole still changed.
        assert_ne!(frame.to_srgb(), adjusted.to_srgb());
    }

    #[test]
    fn peripheral_gain_exceeds_foveal_gain() {
        // A model with larger thresholds in the periphery should let tiles
        // far from the gaze compress better than the same content near the
        // gaze. Use a uniform-gradient frame so content is comparable.
        let dims = Dimensions::new(160, 96);
        let mut frame = LinearFrame::filled(dims, LinearRgb::BLACK);
        for y in 0..dims.height {
            for x in 0..dims.width {
                let t = f64::from(x) / f64::from(dims.width);
                let s = f64::from(y) / f64::from(dims.height);
                frame.set_pixel(
                    x,
                    y,
                    LinearRgb::new(0.3 + 0.05 * t, 0.4 + 0.04 * s, 0.35 + 0.06 * t),
                );
            }
        }
        let display = DisplayGeometry::quest2_like(dims);
        let enc = encoder();
        let center = enc.encode_frame(&frame, &display, GazePoint::center_of(dims));
        let off_screen_gaze = GazePoint::new(-2000.0, -2000.0);
        let all_peripheral = enc.encode_frame(&frame, &display, off_screen_gaze);
        assert!(
            all_peripheral.our_stats().compressed_bits <= center.our_stats().compressed_bits,
            "fully peripheral frame should compress at least as well"
        );
    }
}
