//! Ablation studies over the encoder's design choices.
//!
//! DESIGN.md calls out three design decisions worth ablating: the choice of
//! optimization axes (Blue and Red, per the paper's relaxation), the foveal
//! bypass radius, and the overall scale of the discrimination model (the
//! per-user calibration lever of Sec. 6.5). This module runs the encoder
//! with each variant on the same frame so the contribution of each choice
//! can be quantified; the `tab_ablation` binary in `pvc-bench` prints the
//! resulting table.

use crate::config::EncoderConfig;
use crate::encoder::PerceptualEncoder;
use pvc_color::{RgbAxis, SyntheticDiscriminationModel};
use pvc_fovea::{DisplayGeometry, FoveaConfig, GazePoint};
use pvc_frame::LinearFrame;
use serde::{Deserialize, Serialize};

/// One encoder variant evaluated by the ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AblationVariant {
    /// The paper's full configuration (Blue + Red axes, 5° bypass).
    Full,
    /// Optimize along a single axis only.
    SingleAxis(RgbAxis),
    /// Optimize along all three axes (including Green).
    AllAxes,
    /// Disable the foveal bypass entirely.
    NoFovealBypass,
    /// Enlarge the protected foveal region to the given radius in degrees.
    WideFovealBypass(f64),
    /// Scale the discrimination model (per-user calibration, Sec. 6.5).
    ModelScale(f64),
}

impl AblationVariant {
    /// The default set of variants reported by the ablation table.
    pub fn standard_set() -> Vec<AblationVariant> {
        vec![
            AblationVariant::Full,
            AblationVariant::SingleAxis(RgbAxis::Blue),
            AblationVariant::SingleAxis(RgbAxis::Red),
            AblationVariant::AllAxes,
            AblationVariant::NoFovealBypass,
            AblationVariant::WideFovealBypass(10.0),
            AblationVariant::ModelScale(0.5),
            AblationVariant::ModelScale(2.0),
        ]
    }

    /// A short human-readable label.
    pub fn label(&self) -> String {
        match self {
            AblationVariant::Full => "full (B+R, 5° bypass)".to_string(),
            AblationVariant::SingleAxis(axis) => format!("single axis {axis}"),
            AblationVariant::AllAxes => "all three axes".to_string(),
            AblationVariant::NoFovealBypass => "no foveal bypass".to_string(),
            AblationVariant::WideFovealBypass(deg) => format!("{deg}° foveal bypass"),
            AblationVariant::ModelScale(s) => format!("model scale {s}x"),
        }
    }

    fn encoder_config(&self, base: &EncoderConfig) -> EncoderConfig {
        match self {
            AblationVariant::Full | AblationVariant::ModelScale(_) => base.clone(),
            AblationVariant::SingleAxis(axis) => base.clone().with_axes(vec![*axis]),
            AblationVariant::AllAxes => base.clone().with_axes(RgbAxis::ALL.to_vec()),
            AblationVariant::NoFovealBypass => base.clone().with_fovea(FoveaConfig::disabled()),
            AblationVariant::WideFovealBypass(deg) => {
                base.clone().with_fovea(FoveaConfig::new(*deg))
            }
        }
    }

    fn model(&self) -> SyntheticDiscriminationModel {
        match self {
            AblationVariant::ModelScale(s) => SyntheticDiscriminationModel::with_scale(*s),
            _ => SyntheticDiscriminationModel::default(),
        }
    }
}

impl std::fmt::Display for AblationVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The measured outcome of one ablation variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// The variant.
    pub variant: AblationVariant,
    /// Compressed bits per pixel of the variant.
    pub bits_per_pixel: f64,
    /// Traffic reduction over the unadjusted BD baseline, percent.
    pub reduction_over_bd: f64,
    /// Fraction of tiles that were bypassed as foveal.
    pub foveal_tile_fraction: f64,
}

/// Runs all requested variants on one frame.
///
/// # Panics
///
/// Panics if the frame and display dimensions differ.
pub fn run_ablation(
    frame: &LinearFrame,
    display: &DisplayGeometry,
    gaze: GazePoint,
    base: &EncoderConfig,
    variants: &[AblationVariant],
) -> Vec<AblationResult> {
    variants
        .iter()
        .map(|variant| {
            let encoder = PerceptualEncoder::new(variant.model(), variant.encoder_config(base));
            let result = encoder.encode_frame(frame, display, gaze);
            AblationResult {
                variant: variant.clone(),
                bits_per_pixel: result.our_stats().bits_per_pixel(),
                reduction_over_bd: result.reduction_over_bd_percent(),
                foveal_tile_fraction: result.stats.foveal_tiles as f64
                    / result.stats.total_tiles.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_frame::Dimensions;
    use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

    fn setup() -> (LinearFrame, DisplayGeometry, GazePoint) {
        let dims = Dimensions::new(128, 96);
        let frame = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims)).render_linear(0);
        (
            frame,
            DisplayGeometry::quest2_like(dims),
            GazePoint::center_of(dims),
        )
    }

    fn result_of(results: &[AblationResult], variant: &AblationVariant) -> AblationResult {
        results
            .iter()
            .find(|r| &r.variant == variant)
            .expect("variant measured")
            .clone()
    }

    #[test]
    fn standard_set_runs_and_labels_are_unique() {
        let (frame, display, gaze) = setup();
        let variants = AblationVariant::standard_set();
        let results = run_ablation(&frame, &display, gaze, &EncoderConfig::default(), &variants);
        assert_eq!(results.len(), variants.len());
        let labels: std::collections::HashSet<String> =
            results.iter().map(|r| r.variant.label()).collect();
        assert_eq!(labels.len(), variants.len());
    }

    #[test]
    fn blue_axis_dominates_red_axis() {
        // With the published DKL matrix the ellipsoids are elongated along
        // Blue, so a Blue-only encoder must compress at least as well as a
        // Red-only encoder.
        let (frame, display, gaze) = setup();
        let results = run_ablation(
            &frame,
            &display,
            gaze,
            &EncoderConfig::default(),
            &[
                AblationVariant::SingleAxis(RgbAxis::Blue),
                AblationVariant::SingleAxis(RgbAxis::Red),
            ],
        );
        let blue = result_of(&results, &AblationVariant::SingleAxis(RgbAxis::Blue));
        let red = result_of(&results, &AblationVariant::SingleAxis(RgbAxis::Red));
        assert!(blue.bits_per_pixel <= red.bits_per_pixel + 1e-9);
    }

    #[test]
    fn trying_both_axes_is_at_least_as_good_as_either_alone() {
        let (frame, display, gaze) = setup();
        let results = run_ablation(
            &frame,
            &display,
            gaze,
            &EncoderConfig::default(),
            &[
                AblationVariant::Full,
                AblationVariant::SingleAxis(RgbAxis::Blue),
                AblationVariant::SingleAxis(RgbAxis::Red),
            ],
        );
        let full = result_of(&results, &AblationVariant::Full);
        for single in [RgbAxis::Blue, RgbAxis::Red] {
            let alone = result_of(&results, &AblationVariant::SingleAxis(single));
            assert!(full.bits_per_pixel <= alone.bits_per_pixel + 1e-9);
        }
    }

    #[test]
    fn wider_bypass_protects_more_and_compresses_less() {
        let (frame, display, gaze) = setup();
        let results = run_ablation(
            &frame,
            &display,
            gaze,
            &EncoderConfig::default(),
            &[
                AblationVariant::NoFovealBypass,
                AblationVariant::Full,
                AblationVariant::WideFovealBypass(15.0),
            ],
        );
        assert!(results[0].foveal_tile_fraction == 0.0);
        assert!(results[2].foveal_tile_fraction > results[1].foveal_tile_fraction);
        assert!(results[0].bits_per_pixel <= results[1].bits_per_pixel + 1e-9);
        assert!(results[1].bits_per_pixel <= results[2].bits_per_pixel + 1e-9);
    }

    #[test]
    fn larger_model_scale_compresses_at_least_as_well() {
        let (frame, display, gaze) = setup();
        let results = run_ablation(
            &frame,
            &display,
            gaze,
            &EncoderConfig::default(),
            &[
                AblationVariant::ModelScale(0.5),
                AblationVariant::ModelScale(2.0),
            ],
        );
        assert!(results[1].bits_per_pixel <= results[0].bits_per_pixel + 1e-9);
    }
}
