//! Encoder configuration.

use pvc_color::RgbAxis;
use pvc_fovea::FoveaConfig;
use pvc_frame::DEFAULT_TILE_SIZE;
use serde::{Deserialize, Serialize};

/// Configuration of the perceptual encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Side length of the square pixel tiles (4 in the paper's main
    /// configuration).
    pub tile_size: u32,
    /// Foveal bypass region: tiles overlapping it are not adjusted.
    pub fovea: FoveaConfig,
    /// The axes the adjustment is attempted along; the result with the
    /// smaller Δ cost wins. The paper uses Blue and Red.
    pub axes: Vec<RgbAxis>,
    /// Number of worker threads for frame encoding (1 = sequential).
    ///
    /// A struct-literal (or deserialized) 0 is normalized to 1 at encoder
    /// construction — `PerceptualEncoder::new` and `BdEncoder::with_threads`
    /// are the single normalization points; no call site needs a `.max(1)`
    /// guard.
    pub threads: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            tile_size: DEFAULT_TILE_SIZE,
            fovea: FoveaConfig::default(),
            axes: RgbAxis::OPTIMIZED.to_vec(),
            threads: 1,
        }
    }
}

impl EncoderConfig {
    /// Returns a copy with a different tile size (Fig. 15 sweeps 4–16).
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn with_tile_size(mut self, tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        self.tile_size = tile_size;
        self
    }

    /// Returns a copy with a different foveal bypass configuration.
    pub fn with_fovea(mut self, fovea: FoveaConfig) -> Self {
        self.fovea = fovea;
        self
    }

    /// Returns a copy that only optimizes along the given axes.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is empty.
    pub fn with_axes(mut self, axes: Vec<RgbAxis>) -> Self {
        assert!(
            !axes.is_empty(),
            "at least one optimization axis is required"
        );
        self.axes = axes;
        self
    }

    /// Returns a copy that encodes tiles on `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be non-zero");
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let c = EncoderConfig::default();
        assert_eq!(c.tile_size, 4);
        assert_eq!(c.axes, vec![RgbAxis::Blue, RgbAxis::Red]);
        assert_eq!(c.threads, 1);
        assert!((c.fovea.bypass_radius_deg - 5.0).abs() < 1e-12);
    }

    #[test]
    fn builder_methods_apply() {
        let c = EncoderConfig::default()
            .with_tile_size(8)
            .with_axes(vec![RgbAxis::Blue])
            .with_threads(4)
            .with_fovea(FoveaConfig::disabled());
        assert_eq!(c.tile_size, 8);
        assert_eq!(c.axes, vec![RgbAxis::Blue]);
        assert_eq!(c.threads, 4);
        assert_eq!(c.fovea.bypass_radius_deg, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_axes_panics() {
        let _ = EncoderConfig::default().with_axes(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_tile_size_panics() {
        let _ = EncoderConfig::default().with_tile_size(0);
    }
}
