//! Encoder configuration.

use pvc_color::RgbAxis;
use pvc_fovea::FoveaConfig;
use pvc_frame::DEFAULT_TILE_SIZE;
use serde::{Deserialize, Serialize};

/// Temporal (inter-frame) coding configuration.
///
/// When enabled, frames whose absolute index is a multiple of
/// `keyframe_interval` are emitted as intra keyframes and every other
/// frame as a predicted frame of per-tile Skip / Delta / Intra records
/// against the previous adjusted frame. Keying the schedule to the
/// *absolute* frame index (rather than a GOP-relative counter) keeps the
/// emitted stream a pure function of the frame index, which the
/// migration/shed determinism pins rely on: after a forced intra refresh
/// at a handoff boundary, the stream re-aligns bit-exactly with a solo
/// run at the next interval multiple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalConfig {
    /// Emit an intra keyframe every this many frames (≥ 1; 1 means every
    /// frame is a keyframe, i.e. intra-only bytes).
    pub keyframe_interval: u32,
    /// Whether temporal coding is on. Off by default: intra-only output
    /// is byte-identical to pre-temporal builds.
    pub enabled: bool,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig {
            // One refresh per sixth of a second on the baseline 72 Hz
            // tier — frequent enough that a dropped frame's stale window
            // stays short, long enough that keyframe overhead does not
            // eat the predicted frames' savings.
            keyframe_interval: 12,
            enabled: false,
        }
    }
}

impl TemporalConfig {
    /// Enabled temporal coding with the given keyframe cadence.
    ///
    /// # Panics
    ///
    /// Panics if `keyframe_interval` is zero.
    pub fn every(keyframe_interval: u32) -> Self {
        assert!(keyframe_interval > 0, "keyframe interval must be non-zero");
        TemporalConfig {
            keyframe_interval,
            enabled: true,
        }
    }
}

/// Configuration of the perceptual encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Side length of the square pixel tiles (4 in the paper's main
    /// configuration).
    pub tile_size: u32,
    /// Foveal bypass region: tiles overlapping it are not adjusted.
    pub fovea: FoveaConfig,
    /// The axes the adjustment is attempted along; the result with the
    /// smaller Δ cost wins. The paper uses Blue and Red.
    pub axes: Vec<RgbAxis>,
    /// Number of worker threads for frame encoding (1 = sequential).
    ///
    /// A struct-literal (or deserialized) 0 is normalized to 1 at encoder
    /// construction — `PerceptualEncoder::new` and `BdEncoder::with_threads`
    /// are the single normalization points; no call site needs a `.max(1)`
    /// guard.
    pub threads: usize,
    /// Temporal (inter-frame) coding; disabled by default.
    #[serde(default)]
    pub temporal: TemporalConfig,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            tile_size: DEFAULT_TILE_SIZE,
            fovea: FoveaConfig::default(),
            axes: RgbAxis::OPTIMIZED.to_vec(),
            threads: 1,
            temporal: TemporalConfig::default(),
        }
    }
}

impl EncoderConfig {
    /// Returns a copy with a different tile size (Fig. 15 sweeps 4–16).
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn with_tile_size(mut self, tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        self.tile_size = tile_size;
        self
    }

    /// Returns a copy with a different foveal bypass configuration.
    pub fn with_fovea(mut self, fovea: FoveaConfig) -> Self {
        self.fovea = fovea;
        self
    }

    /// Returns a copy that only optimizes along the given axes.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is empty.
    pub fn with_axes(mut self, axes: Vec<RgbAxis>) -> Self {
        assert!(
            !axes.is_empty(),
            "at least one optimization axis is required"
        );
        self.axes = axes;
        self
    }

    /// Returns a copy that encodes tiles on `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be non-zero");
        self.threads = threads;
        self
    }

    /// Returns a copy with the given temporal coding configuration.
    pub fn with_temporal(mut self, temporal: TemporalConfig) -> Self {
        self.temporal = temporal;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let c = EncoderConfig::default();
        assert_eq!(c.tile_size, 4);
        assert_eq!(c.axes, vec![RgbAxis::Blue, RgbAxis::Red]);
        assert_eq!(c.threads, 1);
        assert!((c.fovea.bypass_radius_deg - 5.0).abs() < 1e-12);
        assert!(!c.temporal.enabled, "temporal coding is opt-in");
    }

    #[test]
    fn temporal_builder_applies() {
        let c = EncoderConfig::default().with_temporal(TemporalConfig::every(3));
        assert!(c.temporal.enabled);
        assert_eq!(c.temporal.keyframe_interval, 3);
    }

    #[test]
    #[should_panic]
    fn zero_keyframe_interval_panics() {
        let _ = TemporalConfig::every(0);
    }

    #[test]
    fn builder_methods_apply() {
        let c = EncoderConfig::default()
            .with_tile_size(8)
            .with_axes(vec![RgbAxis::Blue])
            .with_threads(4)
            .with_fovea(FoveaConfig::disabled());
        assert_eq!(c.tile_size, 8);
        assert_eq!(c.axes, vec![RgbAxis::Blue]);
        assert_eq!(c.threads, 4);
        assert_eq!(c.fovea.bypass_radius_deg, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_axes_panics() {
        let _ = EncoderConfig::default().with_axes(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_tile_size_panics() {
        let _ = EncoderConfig::default().with_tile_size(0);
    }
}
