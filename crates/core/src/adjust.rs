//! The per-tile perceptual color adjustment algorithm (Sec. 3.3–3.4).
//!
//! For every pixel of a tile the algorithm knows the discrimination
//! ellipsoid the adjusted color must stay inside. Along the chosen RGB axis
//! each ellipsoid has a highest point `H` and a lowest point `L` (its
//! *extrema*); across the tile the algorithm computes
//!
//! * `HL` — the **H**ighest of all the **L**owest points, and
//! * `LH` — the **L**owest of all the **H**ighest points.
//!
//! If `LH ≥ HL` (case 2, Fig. 6b) a plane exists that crosses every
//! ellipsoid; all colors are moved onto the average of the two planes and
//! the Δ along the axis collapses to zero. Otherwise (case 1, Fig. 6a)
//! colors above `HL` are pulled down to it and colors below `LH` are pulled
//! up to it, leaving a residual range of `HL − LH`, which is the smallest
//! range achievable without leaving the ellipsoids. Movement is always along
//! each pixel's own extrema vector, so the adjusted color stays inside its
//! ellipsoid by construction; an additional gamut clamp shortens the move if
//! it would leave `[0, 1]`.

use pvc_bdc::tile_codec::bits_for_range;
use pvc_color::lanes::{max_f64, min_f64, min_max_u8};
use pvc_color::srgb::linear_to_srgb8_slice;
use pvc_color::{AxisExtrema, DiscriminationEllipsoid, LinearRgb, RgbAxis, Vec3};
use pvc_frame::LinearTileLanes;
use serde::{Deserialize, Serialize};

/// Which of the two geometric cases of Fig. 6 a tile fell into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdjustmentCase {
    /// Case 1 (`HL > LH`): no plane crosses every ellipsoid; a residual Δ of
    /// `HL − LH` remains along the optimized axis.
    NoCommonPlane,
    /// Case 2 (`HL ≤ LH`): a common plane exists and the Δ along the
    /// optimized axis collapses to zero.
    CommonPlane,
}

impl AdjustmentCase {
    /// Short label used in reports ("c1" / "c2" as in Fig. 12).
    pub fn label(self) -> &'static str {
        match self {
            AdjustmentCase::NoCommonPlane => "c1",
            AdjustmentCase::CommonPlane => "c2",
        }
    }
}

/// The result of adjusting one tile along one axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisAdjustment {
    /// The axis the adjustment optimized.
    pub axis: RgbAxis,
    /// Which geometric case the tile fell into.
    pub case: AdjustmentCase,
    /// The adjusted pixel colors (same order as the input).
    pub adjusted: Vec<LinearRgb>,
    /// The HL plane value (highest of the lowest extrema) along the axis.
    pub hl: f64,
    /// The LH plane value (lowest of the highest extrema) along the axis.
    pub lh: f64,
}

impl AxisAdjustment {
    /// Total Δ bit cost of the adjusted tile after sRGB quantization,
    /// summed over all three channels (the quantity Eq. 7a minimizes, minus
    /// the constant base cost).
    pub fn delta_bit_cost(&self) -> u64 {
        delta_bit_cost(&self.adjusted)
    }
}

/// The final result of adjusting a tile: the best of the per-axis attempts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileAdjustment {
    /// The winning per-axis adjustment.
    pub chosen: AxisAdjustment,
    /// Δ bit cost of the original (unadjusted) tile, for reporting.
    pub original_cost: u64,
}

impl TileAdjustment {
    /// The adjusted pixels of the winning attempt.
    pub fn adjusted_pixels(&self) -> &[LinearRgb] {
        &self.chosen.adjusted
    }

    /// Δ bits saved relative to the unadjusted tile (zero if the adjustment
    /// could not help).
    pub fn delta_bits_saved(&self) -> u64 {
        self.original_cost
            .saturating_sub(self.chosen.delta_bit_cost())
    }
}

/// Σ over channels of the per-Δ bit length × pixel count for a tile of
/// linear-RGB pixels, measured after sRGB quantization.
///
/// Scalar reference walk over AoS pixels; the hot path
/// ([`adjust_tile_with`]) computes the same quantity over SoA lanes with
/// [`delta_bit_cost_lanes`], and the equivalence tests compare the two.
fn delta_bit_cost(pixels: &[LinearRgb]) -> u64 {
    let mut total = 0u64;
    for channel in 0..3 {
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        for p in pixels {
            let v = p.to_srgb8().channel(channel);
            min = min.min(v);
            max = max.max(v);
        }
        total += u64::from(bits_for_range(max - min)) * pixels.len() as u64;
    }
    total
}

/// Moves `color` along its extrema vector until its `axis` channel reaches
/// `target`, shortening the move if it would leave the `[0, 1]` gamut.
///
/// `color` must be the center of the ellipsoid that produced `extrema`; the
/// extrema vector passes through the center, so any point reached this way
/// stays inside the ellipsoid.
fn move_along_extrema(
    color: LinearRgb,
    extrema: &AxisExtrema,
    axis: RgbAxis,
    target: f64,
) -> LinearRgb {
    let direction = extrema.extrema_vector();
    let axis_span = direction.component(axis.index());
    if axis_span.abs() <= f64::EPSILON {
        return color;
    }
    let current = color.channel(axis.index());
    // Fraction of the full extrema vector needed to reach the target.
    let mut t = (target - current) / axis_span;
    // The chord through the center spans t ∈ [-0.5, 0.5]; numerical safety.
    t = t.clamp(-0.5, 0.5);
    // Shorten the move so every channel stays inside [0, 1].
    t = clamp_step_to_gamut(color.to_vec3(), direction, t);
    LinearRgb::from_vec3(color.to_vec3() + direction * t)
}

/// Largest-magnitude step `t'` with `|t'| ≤ |t|` and the same sign such that
/// `origin + direction · t'` stays inside the unit cube.
fn clamp_step_to_gamut(origin: Vec3, direction: Vec3, t: f64) -> f64 {
    if t == 0.0 {
        return 0.0;
    }
    let mut limit = t.abs();
    let sign = t.signum();
    for i in 0..3 {
        let d = direction.component(i) * sign;
        if d.abs() <= f64::EPSILON {
            continue;
        }
        let o = origin.component(i);
        // Allowed movement along +d before hitting 0 or 1.
        let room = if d > 0.0 {
            (1.0 - o) / d
        } else {
            (0.0 - o) / d
        };
        if room < limit {
            limit = room.max(0.0);
        }
    }
    limit * sign
}

/// Per-axis SoA working buffers for the vectorized adjustment path.
///
/// Each `Vec` is one contiguous lane the 8-wide kernels stream over: the
/// per-pixel extrema direction components (`dir_*`), the low/high plane
/// values the HL/LH reduction consumes, the candidate and best-so-far
/// output pixel lanes, and a code lane for the Δ-bit costing. All buffers
/// are cleared, never shrunk, so the steady state performs no allocation.
#[derive(Debug, Clone, Default)]
struct AdjustLanes {
    pixels: LinearTileLanes,
    dir_x: Vec<f64>,
    dir_y: Vec<f64>,
    dir_z: Vec<f64>,
    low: Vec<f64>,
    high: Vec<f64>,
    out: LinearTileLanes,
    best: LinearTileLanes,
    codes: Vec<u8>,
}

impl AdjustLanes {
    /// Refills the per-axis direction and plane-value lanes from the
    /// scalar extrema.
    fn fill_axis(&mut self, extrema: &[AxisExtrema]) {
        self.dir_x.clear();
        self.dir_y.clear();
        self.dir_z.clear();
        self.low.clear();
        self.high.clear();
        for ext in extrema {
            let d = ext.extrema_vector();
            self.dir_x.push(d.x);
            self.dir_y.push(d.y);
            self.dir_z.push(d.z);
            self.low.push(ext.low_value());
            self.high.push(ext.high_value());
        }
    }
}

/// [`delta_bit_cost`] computed over SoA lanes: each channel lane is
/// quantized with the sRGB encode-LUT slice kernel and reduced with the
/// chunked min/max. Bit-identical to the scalar walk because the
/// per-element quantizer is the same function and integer min/max is
/// order-independent.
fn delta_bit_cost_lanes(lanes: &LinearTileLanes, codes: &mut Vec<u8>) -> u64 {
    let n = lanes.len();
    let mut total = 0u64;
    for channel in 0..3 {
        codes.clear();
        codes.resize(n, 0);
        linear_to_srgb8_slice(lanes.channel(channel), codes);
        let (min, max) = min_max_u8(codes);
        total += u64::from(bits_for_range(max - min)) * n as u64;
    }
    total
}

/// The vectorized Phase 3 color shift: moves every pixel lane-wise toward
/// its target plane with a branch-free compute-then-select form of
/// [`move_along_extrema`].
///
/// Every arithmetic operation matches the scalar path in value and order
/// (clamp to the chord, then the three-channel gamut walk in RGB order with
/// the limit chained through), so moved lanes produce bit-identical colors;
/// unmoved lanes (an in-range case-1 pixel, or a degenerate axis span) pass
/// the original pixel bits through the final select, which also discards
/// whatever the speculative arithmetic produced for them (including the
/// infinities and NaNs a near-zero span divides into).
fn lane_axis_adjust(
    pixels: &LinearTileLanes,
    dirs: (&[f64], &[f64], &[f64]),
    axis: RgbAxis,
    hl: f64,
    lh: f64,
    out: &mut LinearTileLanes,
) -> AdjustmentCase {
    let n = pixels.len();
    out.r.clear();
    out.r.resize(n, 0.0);
    out.g.clear();
    out.g.resize(n, 0.0);
    out.b.clear();
    out.b.resize(n, 0.0);
    let (px, py, pz) = (&pixels.r[..n], &pixels.g[..n], &pixels.b[..n]);
    let (dx, dy, dz) = (&dirs.0[..n], &dirs.1[..n], &dirs.2[..n]);
    let cur: &[f64] = match axis.index() {
        0 => px,
        1 => py,
        _ => pz,
    };
    let span: &[f64] = match axis.index() {
        0 => dx,
        1 => dy,
        _ => dz,
    };
    let common_plane = hl <= lh;
    let plane = 0.5 * (hl + lh);
    let (or_, og, ob) = (&mut out.r[..], &mut out.g[..], &mut out.b[..]);
    for i in 0..n {
        let value = cur[i];
        // Which plane this pixel moves toward, and whether it moves at all.
        let (target, wants_move) = if common_plane {
            (plane, true)
        } else {
            let target = if value > hl { hl } else { lh };
            (target, value > hl || value < lh)
        };
        let active = span[i].abs() > f64::EPSILON;
        let t0 = ((target - value) / span[i]).clamp(-0.5, 0.5);
        // clamp_step_to_gamut, unrolled with the limit chained in RGB order.
        let sign = t0.signum();
        let mut limit = t0.abs();
        for (d, o) in [(dx[i], px[i]), (dy[i], py[i]), (dz[i], pz[i])] {
            let d = d * sign;
            let room = if d > 0.0 {
                (1.0 - o) / d
            } else {
                (0.0 - o) / d
            };
            limit = if d.abs() > f64::EPSILON && room < limit {
                room.max(0.0)
            } else {
                limit
            };
        }
        let t = if t0 == 0.0 { 0.0 } else { limit * sign };
        let moved = wants_move && active;
        or_[i] = if moved { px[i] + dx[i] * t } else { px[i] };
        og[i] = if moved { py[i] + dy[i] * t } else { py[i] };
        ob[i] = if moved { pz[i] + dz[i] * t } else { pz[i] };
    }
    if common_plane {
        AdjustmentCase::CommonPlane
    } else {
        AdjustmentCase::NoCommonPlane
    }
}

/// Reusable buffers for per-tile adjustment: the tile's gathered pixels
/// and ellipsoids (filled by the caller) plus the per-axis working buffers
/// (extrema, SoA lanes and the best-so-far pixel set) the adjustment
/// cycles through internally.
///
/// One scratch serves an unbounded stream of tiles: every buffer is
/// cleared, never shrunk, so after the first few tiles the hot loop of
/// [`adjust_tile_with`] performs no allocation at all. Per-frame encoding
/// threads one scratch per *worker* through the tile fan-out (see
/// `pvc_parallel::parallel_chunk_map_init`), and streaming sessions keep
/// one alive for their whole lifetime.
#[derive(Debug, Clone, Default)]
pub struct AdjustScratch {
    /// The tile's pixels, gathered by the caller (row-major).
    pub pixels: Vec<LinearRgb>,
    /// One discrimination ellipsoid per pixel, built by the caller.
    pub ellipsoids: Vec<DiscriminationEllipsoid>,
    extrema: Vec<AxisExtrema>,
    lanes: AdjustLanes,
    best: Vec<LinearRgb>,
}

impl AdjustScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        AdjustScratch::default()
    }

    /// The winning adjusted pixels of the most recent
    /// [`adjust_tile_with`] call.
    pub fn best(&self) -> &[LinearRgb] {
        &self.best
    }

    /// Clears and refills `ellipsoids` with `f` applied to each gathered
    /// pixel.
    pub fn build_ellipsoids(&mut self, f: impl FnMut(LinearRgb) -> DiscriminationEllipsoid) {
        self.ellipsoids.clear();
        self.ellipsoids.extend(self.pixels.iter().copied().map(f));
    }
}

/// The metadata of a scratch-based tile adjustment ([`adjust_tile_with`]);
/// the winning pixels themselves stay in the scratch's
/// [`best`](AdjustScratch::best) buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileAdjustOutcome {
    /// The winning axis.
    pub axis: RgbAxis,
    /// Which geometric case the winning attempt fell into.
    pub case: AdjustmentCase,
    /// The winning attempt's HL plane value.
    pub hl: f64,
    /// The winning attempt's LH plane value.
    pub lh: f64,
    /// Δ bit cost of the original (unadjusted) tile.
    pub original_cost: u64,
    /// Δ bit cost of the pixels left in the scratch's `best` buffer.
    pub adjusted_cost: u64,
}

/// Adjusts one tile along a single axis, writing the adjusted pixels into
/// a caller-provided buffer (cleared first) and returning the case and
/// plane values. The scratch-path core shared by [`adjust_tile_along_axis`]
/// and [`adjust_tile_with`].
fn axis_adjust_into(
    pixels: &[LinearRgb],
    ellipsoids: &[DiscriminationEllipsoid],
    axis: RgbAxis,
    extrema: &mut Vec<AxisExtrema>,
    out: &mut Vec<LinearRgb>,
) -> (AdjustmentCase, f64, f64) {
    assert_eq!(
        pixels.len(),
        ellipsoids.len(),
        "one ellipsoid per pixel is required"
    );
    assert!(!pixels.is_empty(), "cannot adjust an empty tile");

    // Phase 1: per-pixel extrema (the Compute Extrema blocks of the CAU).
    extrema.clear();
    extrema.extend(ellipsoids.iter().map(|e| e.extrema_along_axis(axis)));

    // Phase 2: HL / LH reduction (the Compute Planes blocks).
    let hl = extrema
        .iter()
        .map(AxisExtrema::low_value)
        .fold(f64::NEG_INFINITY, f64::max);
    let lh = extrema
        .iter()
        .map(AxisExtrema::high_value)
        .fold(f64::INFINITY, f64::min);

    // Phase 3: color shifts (the Color Shift blocks).
    out.clear();
    let case = if hl <= lh {
        // Case 2: collapse every color onto the average plane.
        let plane = 0.5 * (hl + lh);
        out.extend(
            pixels
                .iter()
                .zip(extrema.iter())
                .map(|(&p, ext)| move_along_extrema(p, ext, axis, plane)),
        );
        AdjustmentCase::CommonPlane
    } else {
        // Case 1: clamp the axis values into [LH, HL].
        out.extend(pixels.iter().zip(extrema.iter()).map(|(&p, ext)| {
            let value = p.channel(axis.index());
            if value > hl {
                move_along_extrema(p, ext, axis, hl)
            } else if value < lh {
                move_along_extrema(p, ext, axis, lh)
            } else {
                p
            }
        }));
        AdjustmentCase::NoCommonPlane
    };
    (case, hl, lh)
}

/// Adjusts one tile along a single axis.
///
/// Allocates the result buffers per call; hot loops should prefer
/// [`adjust_tile_with`] with a reused [`AdjustScratch`].
///
/// # Panics
///
/// Panics if `pixels` and `ellipsoids` have different lengths or are empty.
pub fn adjust_tile_along_axis(
    pixels: &[LinearRgb],
    ellipsoids: &[DiscriminationEllipsoid],
    axis: RgbAxis,
) -> AxisAdjustment {
    let mut extrema = Vec::new();
    let mut adjusted = Vec::new();
    let (case, hl, lh) = axis_adjust_into(pixels, ellipsoids, axis, &mut extrema, &mut adjusted);
    AxisAdjustment {
        axis,
        case,
        adjusted,
        hl,
        lh,
    }
}

/// Adjusts the tile held in `scratch` (its `pixels` / `ellipsoids`
/// buffers) by trying every candidate axis and keeping the attempt with
/// the smallest Δ bit cost. The winning pixels land in
/// [`AdjustScratch::best`]; only metadata is returned.
///
/// This is the vectorized path: the tile is transposed into SoA lanes
/// once, every axis attempt runs the lane kernels (`lane_axis_adjust`,
/// `delta_bit_cost_lanes`, the chunked HL/LH reductions), and only the
/// winning lanes are scattered back to AoS. Bit-identical to
/// [`adjust_tile`] and to the scalar per-axis reference
/// ([`adjust_tile_along_axis`]) on the same inputs — the lanes only change
/// where intermediate values live and the order of order-independent
/// reductions, never a single computed value. Ties between axes resolve to
/// the first axis tried, matching `Iterator::min_by_key`.
///
/// # Panics
///
/// Panics if `axes` is empty, or if the scratch's `pixels` and
/// `ellipsoids` have different lengths or are empty.
pub fn adjust_tile_with(scratch: &mut AdjustScratch, axes: &[RgbAxis]) -> TileAdjustOutcome {
    assert!(
        !axes.is_empty(),
        "at least one optimization axis is required"
    );
    let AdjustScratch {
        pixels,
        ellipsoids,
        extrema,
        lanes,
        best,
    } = scratch;
    assert_eq!(
        pixels.len(),
        ellipsoids.len(),
        "one ellipsoid per pixel is required"
    );
    assert!(!pixels.is_empty(), "cannot adjust an empty tile");

    // Gather the tile into SoA lanes once; every axis attempt reads them.
    lanes.pixels.fill_from_pixels(pixels);
    let original_cost = delta_bit_cost_lanes(&lanes.pixels, &mut lanes.codes);
    let mut chosen: Option<TileAdjustOutcome> = None;
    for &axis in axes {
        // Phase 1: per-pixel extrema (the Compute Extrema blocks of the
        // CAU), split into direction and plane-value lanes.
        extrema.clear();
        extrema.extend(ellipsoids.iter().map(|e| e.extrema_along_axis(axis)));
        lanes.fill_axis(extrema);

        // Phase 2: HL / LH reduction (the Compute Planes blocks). The
        // chunked reductions visit values in a different order than a
        // scalar fold, which is harmless: f64 max/min are associative and
        // commutative over the non-NaN values extrema produce.
        let hl = max_f64(&lanes.low);
        let lh = min_f64(&lanes.high);

        // Phase 3: color shifts (the Color Shift blocks), lane-wise.
        let case = lane_axis_adjust(
            &lanes.pixels,
            (&lanes.dir_x, &lanes.dir_y, &lanes.dir_z),
            axis,
            hl,
            lh,
            &mut lanes.out,
        );
        let adjusted_cost = delta_bit_cost_lanes(&lanes.out, &mut lanes.codes);
        // Strict `<` keeps the first minimal axis, like min_by_key.
        if chosen.map_or(true, |c| adjusted_cost < c.adjusted_cost) {
            std::mem::swap(&mut lanes.out, &mut lanes.best);
            chosen = Some(TileAdjustOutcome {
                axis,
                case,
                hl,
                lh,
                original_cost,
                adjusted_cost,
            });
        }
    }
    let mut outcome = chosen.expect("axes is non-empty");
    // Never regress: if the adjustment does not help (e.g. everything was
    // clamped by the gamut), keep the original pixels.
    if outcome.adjusted_cost >= original_cost {
        best.clear();
        best.extend_from_slice(pixels);
        outcome.adjusted_cost = original_cost;
    } else {
        // Scatter the winning lanes back to AoS once per tile.
        lanes.best.scatter_into(best);
    }
    outcome
}

/// Adjusts one tile by trying every candidate axis and keeping the attempt
/// with the smallest Δ bit cost (Fig. 7: "pick the one with smaller Δ").
///
/// Allocates fresh buffers per call; hot loops should prefer
/// [`adjust_tile_with`] with a reused [`AdjustScratch`].
///
/// # Panics
///
/// Panics if `axes` is empty, or if `pixels` and `ellipsoids` have different
/// lengths or are empty.
pub fn adjust_tile(
    pixels: &[LinearRgb],
    ellipsoids: &[DiscriminationEllipsoid],
    axes: &[RgbAxis],
) -> TileAdjustment {
    let mut scratch = AdjustScratch::new();
    scratch.pixels.extend_from_slice(pixels);
    scratch.ellipsoids.extend_from_slice(ellipsoids);
    let outcome = adjust_tile_with(&mut scratch, axes);
    TileAdjustment {
        chosen: AxisAdjustment {
            axis: outcome.axis,
            case: outcome.case,
            adjusted: std::mem::take(&mut scratch.best),
            hl: outcome.hl,
            lh: outcome.lh,
        },
        original_cost: outcome.original_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::{DiscriminationModel, SyntheticDiscriminationModel};

    fn ellipsoids_for(pixels: &[LinearRgb], eccentricity: f64) -> Vec<DiscriminationEllipsoid> {
        let model = SyntheticDiscriminationModel::default();
        pixels
            .iter()
            .map(|&p| model.ellipsoid(p, eccentricity))
            .collect()
    }

    fn similar_tile() -> Vec<LinearRgb> {
        // A smooth tile: nearby colors, typical of rendered content.
        (0..16)
            .map(|i| {
                let t = f64::from(i) / 15.0;
                LinearRgb::new(0.42 + 0.01 * t, 0.5 + 0.008 * t, 0.35 + 0.012 * t)
            })
            .collect()
    }

    fn diverse_tile() -> Vec<LinearRgb> {
        (0..16)
            .map(|i| {
                let t = f64::from(i) / 15.0;
                LinearRgb::new(0.2 + 0.6 * t, 0.7 - 0.5 * t, 0.1 + 0.8 * t)
            })
            .collect()
    }

    #[test]
    fn adjusted_colors_stay_inside_ellipsoids() {
        for (pixels, ecc) in [(similar_tile(), 25.0), (diverse_tile(), 10.0)] {
            let ellipsoids = ellipsoids_for(&pixels, ecc);
            for axis in [RgbAxis::Blue, RgbAxis::Red] {
                let result = adjust_tile_along_axis(&pixels, &ellipsoids, axis);
                for (adjusted, ellipsoid) in result.adjusted.iter().zip(&ellipsoids) {
                    assert!(
                        ellipsoid.contains_rgb(*adjusted, 1e-6),
                        "adjusted color left its ellipsoid (axis {axis})"
                    );
                }
            }
        }
    }

    #[test]
    fn adjusted_colors_stay_in_gamut() {
        // Colors near the gamut boundary must not be pushed outside [0, 1].
        let pixels: Vec<LinearRgb> = (0..16)
            .map(|i| {
                let t = f64::from(i) / 15.0;
                LinearRgb::new(0.002 * t, 0.998 + 0.002 * t, 0.001)
            })
            .collect();
        let ellipsoids = ellipsoids_for(&pixels, 30.0);
        let result = adjust_tile(&pixels, &ellipsoids, &[RgbAxis::Blue, RgbAxis::Red]);
        for p in result.adjusted_pixels() {
            assert!(p.in_gamut(1e-9), "adjusted color {p:?} out of gamut");
        }
    }

    #[test]
    fn axis_range_never_grows() {
        for (pixels, ecc) in [(similar_tile(), 25.0), (diverse_tile(), 25.0)] {
            let ellipsoids = ellipsoids_for(&pixels, ecc);
            for axis in [RgbAxis::Blue, RgbAxis::Red] {
                let result = adjust_tile_along_axis(&pixels, &ellipsoids, axis);
                let range = |colors: &[LinearRgb]| {
                    let vals: Vec<f64> = colors.iter().map(|c| c.channel(axis.index())).collect();
                    vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                        - vals.iter().cloned().fold(f64::INFINITY, f64::min)
                };
                assert!(
                    range(&result.adjusted) <= range(&pixels) + 1e-9,
                    "axis range grew on {axis}"
                );
            }
        }
    }

    #[test]
    fn similar_colors_collapse_to_common_plane() {
        // A smooth peripheral tile should land in case 2 and the Δ along the
        // optimized axis should vanish.
        let pixels = similar_tile();
        let ellipsoids = ellipsoids_for(&pixels, 25.0);
        let result = adjust_tile_along_axis(&pixels, &ellipsoids, RgbAxis::Blue);
        assert_eq!(result.case, AdjustmentCase::CommonPlane);
        let values: Vec<f64> = result.adjusted.iter().map(|c| c.b).collect();
        let range = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(range < 1e-6, "blue range after collapse: {range}");
    }

    #[test]
    fn diverse_colors_fall_into_case_one_with_residual_range() {
        let pixels = diverse_tile();
        let ellipsoids = ellipsoids_for(&pixels, 10.0);
        let result = adjust_tile_along_axis(&pixels, &ellipsoids, RgbAxis::Blue);
        assert_eq!(result.case, AdjustmentCase::NoCommonPlane);
        assert!(result.hl > result.lh);
        // The residual range equals HL − LH (up to gamut clamping).
        let values: Vec<f64> = result.adjusted.iter().map(|c| c.b).collect();
        let range = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(range <= result.hl - result.lh + 1e-9);
    }

    #[test]
    fn foveal_ellipsoids_allow_less_adjustment_than_peripheral() {
        let pixels = similar_tile();
        let foveal = adjust_tile(&pixels, &ellipsoids_for(&pixels, 2.0), &RgbAxis::OPTIMIZED);
        let peripheral = adjust_tile(&pixels, &ellipsoids_for(&pixels, 30.0), &RgbAxis::OPTIMIZED);
        assert!(peripheral.chosen.delta_bit_cost() <= foveal.chosen.delta_bit_cost());
    }

    #[test]
    fn adjustment_reduces_delta_bits_on_smooth_peripheral_tiles() {
        let pixels = similar_tile();
        let ellipsoids = ellipsoids_for(&pixels, 25.0);
        let result = adjust_tile(&pixels, &ellipsoids, &RgbAxis::OPTIMIZED);
        assert!(
            result.delta_bits_saved() > 0,
            "expected savings on a smooth peripheral tile"
        );
        assert!(result.chosen.delta_bit_cost() < result.original_cost);
    }

    #[test]
    fn adjustment_never_increases_total_delta_bits() {
        for (pixels, ecc) in [(similar_tile(), 5.0), (diverse_tile(), 30.0)] {
            let ellipsoids = ellipsoids_for(&pixels, ecc);
            let result = adjust_tile(&pixels, &ellipsoids, &RgbAxis::OPTIMIZED);
            assert!(result.chosen.delta_bit_cost() <= result.original_cost);
        }
    }

    #[test]
    fn scratch_adjustment_is_bit_identical_to_the_allocating_path() {
        let mut scratch = AdjustScratch::new();
        for (pixels, ecc) in [
            (similar_tile(), 25.0),
            (diverse_tile(), 10.0),
            (similar_tile(), 2.0),
            (vec![LinearRgb::new(0.3, 0.4, 0.5)], 15.0),
        ] {
            let ellipsoids = ellipsoids_for(&pixels, ecc);
            let expected = adjust_tile(&pixels, &ellipsoids, &RgbAxis::OPTIMIZED);
            // The scratch arrives dirty from the previous tile on purpose.
            scratch.pixels.clear();
            scratch.pixels.extend_from_slice(&pixels);
            scratch.build_ellipsoids(|p| SyntheticDiscriminationModel::default().ellipsoid(p, ecc));
            let outcome = adjust_tile_with(&mut scratch, &RgbAxis::OPTIMIZED);
            assert_eq!(scratch.best(), expected.adjusted_pixels());
            assert_eq!(outcome.axis, expected.chosen.axis);
            assert_eq!(outcome.case, expected.chosen.case);
            assert_eq!(outcome.hl, expected.chosen.hl);
            assert_eq!(outcome.lh, expected.chosen.lh);
            assert_eq!(outcome.original_cost, expected.original_cost);
            assert_eq!(outcome.adjusted_cost, expected.chosen.delta_bit_cost());
        }
    }

    #[test]
    fn scratch_no_regress_keeps_the_original_pixels() {
        // Near-zero ellipsoids leave no room to improve: the scratch path
        // must fall back to the original pixels, exactly like adjust_tile.
        let pixels = diverse_tile();
        let model = SyntheticDiscriminationModel::default();
        let mut scratch = AdjustScratch::new();
        scratch.pixels.extend_from_slice(&pixels);
        scratch.build_ellipsoids(|p| model.ellipsoid(p, 0.01));
        let outcome = adjust_tile_with(&mut scratch, &RgbAxis::OPTIMIZED);
        let ellipsoids = ellipsoids_for(&pixels, 0.01);
        let expected = adjust_tile(&pixels, &ellipsoids, &RgbAxis::OPTIMIZED);
        assert_eq!(scratch.best(), expected.adjusted_pixels());
        assert_eq!(outcome.adjusted_cost, expected.chosen.delta_bit_cost());
        assert!(
            outcome.adjusted_cost <= outcome.original_cost,
            "the no-regress guard must hold"
        );
    }

    #[test]
    fn lane_path_matches_the_scalar_reference_composition() {
        // Rebuild adjust_tile_with's axis selection from the scalar
        // per-axis reference and require bit-identical pixels, plane
        // values and costs from the lane path.
        for (pixels, ecc) in [
            (similar_tile(), 25.0),
            (diverse_tile(), 10.0),
            (similar_tile(), 0.01),
            (vec![LinearRgb::new(0.3, 0.4, 0.5)], 15.0),
        ] {
            let ellipsoids = ellipsoids_for(&pixels, ecc);
            let mut scratch = AdjustScratch::new();
            scratch.pixels.extend_from_slice(&pixels);
            scratch.ellipsoids.extend_from_slice(&ellipsoids);
            let outcome = adjust_tile_with(&mut scratch, &RgbAxis::OPTIMIZED);

            // Scalar reference: first axis with strictly minimal cost.
            let mut expected: Option<AxisAdjustment> = None;
            for &axis in &RgbAxis::OPTIMIZED {
                let attempt = adjust_tile_along_axis(&pixels, &ellipsoids, axis);
                if expected
                    .as_ref()
                    .map_or(true, |b| attempt.delta_bit_cost() < b.delta_bit_cost())
                {
                    expected = Some(attempt);
                }
            }
            let expected = expected.unwrap();
            let original_cost = delta_bit_cost(&pixels);
            assert_eq!(outcome.axis, expected.axis, "ecc {ecc}");
            assert_eq!(outcome.case, expected.case, "ecc {ecc}");
            assert_eq!(outcome.hl, expected.hl, "ecc {ecc}");
            assert_eq!(outcome.lh, expected.lh, "ecc {ecc}");
            assert_eq!(outcome.original_cost, original_cost, "ecc {ecc}");
            if expected.delta_bit_cost() >= original_cost {
                assert_eq!(scratch.best(), &pixels[..], "ecc {ecc}");
                assert_eq!(outcome.adjusted_cost, original_cost, "ecc {ecc}");
            } else {
                assert_eq!(scratch.best(), &expected.adjusted[..], "ecc {ecc}");
                assert_eq!(
                    outcome.adjusted_cost,
                    expected.delta_bit_cost(),
                    "ecc {ecc}"
                );
            }
        }
    }

    #[test]
    fn case_labels_match_figure_12() {
        assert_eq!(AdjustmentCase::NoCommonPlane.label(), "c1");
        assert_eq!(AdjustmentCase::CommonPlane.label(), "c2");
    }

    #[test]
    fn single_pixel_tile_is_trivially_common_plane() {
        let pixels = vec![LinearRgb::new(0.3, 0.4, 0.5)];
        let ellipsoids = ellipsoids_for(&pixels, 15.0);
        let result = adjust_tile_along_axis(&pixels, &ellipsoids, RgbAxis::Blue);
        assert_eq!(result.case, AdjustmentCase::CommonPlane);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let pixels = similar_tile();
        let ellipsoids = ellipsoids_for(&pixels[..4], 10.0);
        let _ = adjust_tile_along_axis(&pixels, &ellipsoids, RgbAxis::Blue);
    }

    #[test]
    #[should_panic]
    fn empty_axes_panic() {
        let pixels = similar_tile();
        let ellipsoids = ellipsoids_for(&pixels, 10.0);
        let _ = adjust_tile(&pixels, &ellipsoids, &[]);
    }
}
