//! Iterative reference solver for the relaxed optimization problem.
//!
//! The paper notes that the original constrained problem (Eq. 7) needs
//! iterative solvers that are far too slow for real time, and that the
//! relaxed problem (Eq. 8c — minimize the per-tile range along one axis
//! subject to each color staying inside its ellipsoid) admits an analytical
//! solution. This module implements a straightforward projected-subgradient
//! solver for the relaxed problem. It exists purely as a cross-check: tests
//! assert that the analytical solution of [`crate::adjust`] is never worse
//! than what the iterative solver finds, which is strong evidence the
//! closed form is optimal (as proved in Sec. 3.3).

use pvc_color::{DiscriminationEllipsoid, DklColor, LinearRgb, RgbAxis};
use serde::{Deserialize, Serialize};

/// Projected-subgradient solver for
/// `min max_i(p_i[axis]) − min_i(p_i[axis])` subject to `p_i ∈ E_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterativeSolver {
    /// Number of subgradient iterations.
    pub iterations: usize,
    /// Initial step size along the optimized axis, in linear RGB units.
    pub step: f64,
}

impl Default for IterativeSolver {
    fn default() -> Self {
        IterativeSolver {
            iterations: 400,
            step: 0.02,
        }
    }
}

impl IterativeSolver {
    /// Creates a solver with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero or `step` is not positive.
    pub fn new(iterations: usize, step: f64) -> Self {
        assert!(iterations > 0, "iteration count must be non-zero");
        assert!(step > 0.0, "step size must be positive");
        IterativeSolver { iterations, step }
    }

    /// Minimizes the axis range of a tile, starting from the original colors
    /// (the ellipsoid centers), and returns the adjusted colors.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` and `ellipsoids` have different lengths or are
    /// empty.
    pub fn minimize_axis_range(
        &self,
        pixels: &[LinearRgb],
        ellipsoids: &[DiscriminationEllipsoid],
        axis: RgbAxis,
    ) -> Vec<LinearRgb> {
        assert_eq!(
            pixels.len(),
            ellipsoids.len(),
            "one ellipsoid per pixel is required"
        );
        assert!(!pixels.is_empty(), "cannot optimize an empty tile");
        let mut colors = pixels.to_vec();
        let mut best = colors.clone();
        let mut best_range = axis_range(&colors, axis);
        let mut step = self.step;
        for _ in 0..self.iterations {
            let (max_idx, min_idx) = extreme_indices(&colors, axis);
            if max_idx == min_idx {
                break;
            }
            // Subgradient step: pull the extreme pixels toward each other.
            colors[max_idx] = project(
                colors[max_idx]
                    .with_channel(axis.index(), colors[max_idx].channel(axis.index()) - step),
                &ellipsoids[max_idx],
            );
            colors[min_idx] = project(
                colors[min_idx]
                    .with_channel(axis.index(), colors[min_idx].channel(axis.index()) + step),
                &ellipsoids[min_idx],
            );
            let range = axis_range(&colors, axis);
            if range < best_range {
                best_range = range;
                best = colors.clone();
            } else {
                step *= 0.97;
            }
        }
        best
    }

    /// The axis range achieved by [`Self::minimize_axis_range`].
    pub fn achieved_range(
        &self,
        pixels: &[LinearRgb],
        ellipsoids: &[DiscriminationEllipsoid],
        axis: RgbAxis,
    ) -> f64 {
        axis_range(&self.minimize_axis_range(pixels, ellipsoids, axis), axis)
    }
}

/// Range (max − min) of the given channel over a set of colors.
pub fn axis_range(colors: &[LinearRgb], axis: RgbAxis) -> f64 {
    let values = colors.iter().map(|c| c.channel(axis.index()));
    let max = values.clone().fold(f64::NEG_INFINITY, f64::max);
    let min = values.fold(f64::INFINITY, f64::min);
    max - min
}

fn extreme_indices(colors: &[LinearRgb], axis: RgbAxis) -> (usize, usize) {
    let mut max_idx = 0;
    let mut min_idx = 0;
    for (i, c) in colors.iter().enumerate() {
        if c.channel(axis.index()) > colors[max_idx].channel(axis.index()) {
            max_idx = i;
        }
        if c.channel(axis.index()) < colors[min_idx].channel(axis.index()) {
            min_idx = i;
        }
    }
    (max_idx, min_idx)
}

/// Retracts a candidate color back inside its ellipsoid by shrinking its
/// offset from the center (a feasible, though not orthogonal, projection).
fn project(candidate: LinearRgb, ellipsoid: &DiscriminationEllipsoid) -> LinearRgb {
    let distance = ellipsoid.normalized_distance_rgb(candidate);
    if distance <= 1.0 {
        return candidate;
    }
    let center = ellipsoid.center_dkl().to_vec3();
    let offset = DklColor::from_linear_rgb(candidate).to_vec3() - center;
    let scaled = offset * (1.0 / distance.sqrt());
    DklColor::from_vec3(center + scaled).to_linear_rgb()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjust::adjust_tile_along_axis;
    use pvc_color::{DiscriminationModel, SyntheticDiscriminationModel};

    fn tile_and_ellipsoids(ecc: f64) -> (Vec<LinearRgb>, Vec<DiscriminationEllipsoid>) {
        let model = SyntheticDiscriminationModel::default();
        let pixels: Vec<LinearRgb> = (0..16)
            .map(|i| {
                let t = f64::from(i) / 15.0;
                LinearRgb::new(0.35 + 0.05 * t, 0.45 + 0.04 * t, 0.3 + 0.06 * t)
            })
            .collect();
        let ellipsoids = pixels.iter().map(|&p| model.ellipsoid(p, ecc)).collect();
        (pixels, ellipsoids)
    }

    #[test]
    fn projection_keeps_points_feasible() {
        let model = SyntheticDiscriminationModel::default();
        let center = LinearRgb::new(0.5, 0.5, 0.5);
        let ellipsoid = model.ellipsoid(center, 20.0);
        let far = LinearRgb::new(0.9, 0.1, 0.9);
        let projected = project(far, &ellipsoid);
        assert!(ellipsoid.contains_rgb(projected, 1e-9));
        // Points already inside are untouched.
        assert_eq!(project(center, &ellipsoid), center);
    }

    #[test]
    fn solver_never_leaves_the_ellipsoids() {
        let (pixels, ellipsoids) = tile_and_ellipsoids(20.0);
        let solver = IterativeSolver::default();
        let solution = solver.minimize_axis_range(&pixels, &ellipsoids, RgbAxis::Blue);
        for (p, e) in solution.iter().zip(&ellipsoids) {
            assert!(e.contains_rgb(*p, 1e-6));
        }
    }

    #[test]
    fn solver_reduces_the_range() {
        let (pixels, ellipsoids) = tile_and_ellipsoids(25.0);
        let solver = IterativeSolver::default();
        let achieved = solver.achieved_range(&pixels, &ellipsoids, RgbAxis::Blue);
        assert!(achieved < axis_range(&pixels, RgbAxis::Blue));
    }

    #[test]
    fn analytical_solution_is_at_least_as_good_as_iterative() {
        for ecc in [5.0, 15.0, 30.0] {
            let (pixels, ellipsoids) = tile_and_ellipsoids(ecc);
            let solver = IterativeSolver::default();
            for axis in [RgbAxis::Blue, RgbAxis::Red] {
                let iterative = solver.achieved_range(&pixels, &ellipsoids, axis);
                let analytical = adjust_tile_along_axis(&pixels, &ellipsoids, axis);
                let analytical_range = axis_range(&analytical.adjusted, axis);
                assert!(
                    analytical_range <= iterative + 1e-6,
                    "ecc {ecc}, axis {axis}: analytical {analytical_range} vs iterative {iterative}"
                );
            }
        }
    }

    #[test]
    fn analytical_residual_matches_hl_minus_lh_in_case_one() {
        // Force case 1 with a wide spread of colors at low eccentricity.
        let model = SyntheticDiscriminationModel::default();
        let pixels: Vec<LinearRgb> = (0..8)
            .map(|i| {
                let t = f64::from(i) / 7.0;
                LinearRgb::new(0.2 + 0.5 * t, 0.3 + 0.3 * t, 0.2 + 0.6 * t)
            })
            .collect();
        let ellipsoids: Vec<_> = pixels.iter().map(|&p| model.ellipsoid(p, 3.0)).collect();
        let result = adjust_tile_along_axis(&pixels, &ellipsoids, RgbAxis::Blue);
        assert_eq!(result.case, crate::adjust::AdjustmentCase::NoCommonPlane);
        let achieved = axis_range(&result.adjusted, RgbAxis::Blue);
        let lower_bound = result.hl - result.lh;
        assert!(achieved <= lower_bound + 1e-9);
        assert!(
            achieved >= lower_bound - 1e-6,
            "achieved {achieved} vs bound {lower_bound}"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_solver_parameters_panic() {
        let _ = IterativeSolver::new(0, 0.1);
    }
}
