//! A session API for encoding gaze-streams of frames.
//!
//! A VR runtime does not encode one frame in isolation: it serves a stream
//! of frames for one headset (fixed display geometry) whose gaze moves in
//! fixations — long runs of frames share the same (or a re-sent) gaze
//! sample. Everything the perceptual encoder derives from the gaze alone is
//! therefore reusable across the stream: the per-tile [`EccentricityMap`]
//! walks every tile of the grid and evaluates five eccentricities per tile,
//! which for a Quest-2-sized frame is millions of trigonometric evaluations
//! that [`PerceptualEncoder::encode_frame`] would redo per frame.
//!
//! [`BatchEncoder`] owns the display geometry and a small most-recently-used
//! cache of eccentricity maps keyed by the exact gaze sample, and feeds the
//! cached map into [`PerceptualEncoder::encode_frame_with_map`]. Cache hits
//! change *where the map comes from*, never its contents, so the encoded
//! stream is bit-identical to calling the one-shot encoder per frame.

use crate::config::EncoderConfig;
use crate::encoder::{
    PerceptualEncodeResult, PerceptualEncoder, StreamEncodeResult, StreamFrameStats, StreamScratch,
    TemporalHistory,
};
use pvc_color::DiscriminationModel;
use pvc_fovea::{DisplayGeometry, EccentricityMap, GazePoint};
use pvc_frame::{LinearFrame, TileGrid};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default number of distinct gazes the session keeps maps for.
pub const DEFAULT_GAZE_CACHE_CAPACITY: usize = 8;

/// Hit/miss counters of a session's eccentricity-map cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BatchCacheStats {
    /// Frames that reused a cached eccentricity map.
    pub hits: u64,
    /// Frames that had to build a fresh eccentricity map.
    pub misses: u64,
    /// Number of maps currently cached.
    pub entries: usize,
}

impl BatchCacheStats {
    /// Fraction of frames served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A per-stream encoding session that amortises gaze-dependent setup
/// across frames.
///
/// # Examples
///
/// ```
/// use pvc_color::SyntheticDiscriminationModel;
/// use pvc_core::{BatchEncoder, EncoderConfig};
/// use pvc_fovea::{DisplayGeometry, GazePoint};
/// use pvc_frame::{Dimensions, LinearFrame};
/// use pvc_color::LinearRgb;
///
/// let dims = Dimensions::new(64, 64);
/// let display = DisplayGeometry::quest2_like(dims);
/// let mut session = BatchEncoder::new(
///     SyntheticDiscriminationModel::default(),
///     EncoderConfig::default(),
///     display,
/// );
///
/// // Three frames of a fixation: one map build, two cache hits.
/// let gaze = GazePoint::center_of(dims);
/// for shade in [0.3, 0.4, 0.5] {
///     let frame = LinearFrame::filled(dims, LinearRgb::new(shade, 0.5, 0.4));
///     let result = session.encode(&frame, gaze);
///     assert!(result.our_stats().compressed_bits <= result.bd_stats().compressed_bits);
/// }
/// assert_eq!(session.cache_stats().hits, 2);
/// assert_eq!(session.cache_stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BatchEncoder<M> {
    encoder: PerceptualEncoder<M>,
    display: DisplayGeometry,
    /// Most-recently-used first; keys are the exact gaze bit patterns so a
    /// hit can never change the encoded output.
    cache: Vec<((u64, u64), Arc<EccentricityMap>)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// GOP state for temporal coding: the previous adjusted frame. Dead
    /// weight (one placeholder frame) when temporal coding is disabled.
    history: TemporalHistory,
    /// Absolute index of the next frame fed through
    /// [`Self::encode_frame_stream_into`]; drives the keyframe schedule.
    next_frame_index: u32,
}

impl<M: DiscriminationModel + Sync> BatchEncoder<M> {
    /// Creates a session for one display from a discrimination model and an
    /// encoder configuration.
    pub fn new(model: M, config: EncoderConfig, display: DisplayGeometry) -> Self {
        BatchEncoder {
            encoder: PerceptualEncoder::new(model, config),
            display,
            cache: Vec::new(),
            capacity: DEFAULT_GAZE_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
            history: TemporalHistory::new(),
            next_frame_index: 0,
        }
    }

    /// Returns the session positioned at absolute frame `index` — the
    /// builder form of [`Self::set_next_frame_index`].
    pub fn with_start_frame(mut self, index: u32) -> Self {
        self.set_next_frame_index(index);
        self
    }

    /// Repositions the session at absolute frame `index` and drops the
    /// temporal reference, forcing the next frame to be a keyframe.
    ///
    /// This is the handoff-boundary primitive: a runtime rebuilding a
    /// session's encoder mid-stream (migration resume, shed/retier) seeds
    /// the counter with the frames already streamed, so the keyframe
    /// schedule stays a pure function of the absolute frame index and the
    /// stream re-aligns bit-exactly with a solo run from the next
    /// interval multiple.
    pub fn set_next_frame_index(&mut self, index: u32) {
        self.next_frame_index = index;
        self.history.reset();
    }

    /// Absolute index of the next frame
    /// [`Self::encode_frame_stream_into`] will encode.
    pub fn next_frame_index(&self) -> u32 {
        self.next_frame_index
    }

    /// Returns the session with a different gaze-cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        self.capacity = capacity;
        self.cache.truncate(capacity);
        self
    }

    /// The underlying one-shot encoder.
    pub fn encoder(&self) -> &PerceptualEncoder<M> {
        &self.encoder
    }

    /// The display geometry this session encodes for.
    pub fn display(&self) -> &DisplayGeometry {
        &self.display
    }

    /// Cache hit/miss counters for the frames encoded so far.
    pub fn cache_stats(&self) -> BatchCacheStats {
        BatchCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.cache.len(),
        }
    }

    /// Encodes the next frame of the stream, viewed under `gaze`.
    ///
    /// Bit-identical to `PerceptualEncoder::encode_frame` on the same
    /// inputs; the session only saves the eccentricity-map construction when
    /// the gaze repeats.
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn encode(&mut self, frame: &LinearFrame, gaze: GazePoint) -> PerceptualEncodeResult {
        assert_eq!(
            frame.dimensions(),
            self.display.dimensions(),
            "frame and display dimensions must match"
        );
        let map = self.map_for(gaze);
        self.encoder.encode_frame_with_map(frame, &map)
    }

    /// Stream-mode encode of the next frame: like [`Self::encode`] but
    /// produces only the serving payload ([`StreamEncodeResult`]), skipping
    /// the gamma-encode of the original frame and any baseline BD material.
    ///
    /// This is what a multi-session streaming service calls per frame; the
    /// `encoded` bitstream is bit-identical to [`Self::encode`]'s.
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn encode_frame_stream(
        &mut self,
        frame: &LinearFrame,
        gaze: GazePoint,
    ) -> StreamEncodeResult {
        assert_eq!(
            frame.dimensions(),
            self.display.dimensions(),
            "frame and display dimensions must match"
        );
        let map = self.map_for(gaze);
        self.encoder.encode_frame_stream_with_map(frame, &map)
    }

    /// Stream-mode encode through caller-provided scratch: like
    /// [`Self::encode_frame_stream`], but the BD bitstream is packed
    /// straight into `out` (bit-identical to the `encoded.to_bitstream()`
    /// of the other paths) and every intermediate lives in `scratch`.
    ///
    /// On a cache-hitting gaze this is the allocation-free serving path: a
    /// session that keeps one [`StreamScratch`] and one output buffer
    /// across its stream allocates nothing per steady-state frame (pinned
    /// by the `alloc_regression` tier-2 test).
    ///
    /// # Panics
    ///
    /// Panics if the frame and display dimensions differ.
    pub fn encode_frame_stream_into(
        &mut self,
        frame: &LinearFrame,
        gaze: GazePoint,
        scratch: &mut StreamScratch,
        out: &mut Vec<u8>,
    ) -> StreamFrameStats {
        assert_eq!(
            frame.dimensions(),
            self.display.dimensions(),
            "frame and display dimensions must match"
        );
        let map = self.map_for(gaze);
        let frame_index = self.next_frame_index;
        self.next_frame_index = self.next_frame_index.wrapping_add(1);
        if self.encoder.config().temporal.enabled {
            self.encoder.encode_frame_stream_temporal_into(
                frame,
                &map,
                &mut self.history,
                frame_index,
                scratch,
                out,
            )
        } else {
            self.encoder
                .encode_frame_stream_with_map_into(frame, &map, scratch, out)
        }
    }

    /// Encodes a whole gaze-stream, returning one result per frame.
    pub fn encode_stream<'a, I>(&mut self, stream: I) -> Vec<PerceptualEncodeResult>
    where
        I: IntoIterator<Item = (&'a LinearFrame, GazePoint)>,
    {
        stream
            .into_iter()
            .map(|(frame, gaze)| self.encode(frame, gaze))
            .collect()
    }

    /// Returns the eccentricity map for `gaze`, building and caching it on
    /// a miss and refreshing its recency on a hit.
    fn map_for(&mut self, gaze: GazePoint) -> Arc<EccentricityMap> {
        let key = (gaze.x.to_bits(), gaze.y.to_bits());
        if let Some(position) = self.cache.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            let entry = self.cache.remove(position);
            self.cache.insert(0, entry);
            return Arc::clone(&self.cache[0].1);
        }
        self.misses += 1;
        let config = self.encoder.config();
        let grid = TileGrid::new(self.display.dimensions(), config.tile_size);
        let map = Arc::new(EccentricityMap::per_tile(
            &self.display,
            &grid,
            gaze,
            config.fovea,
        ));
        self.cache.insert(0, (key, Arc::clone(&map)));
        self.cache.truncate(self.capacity);
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::SyntheticDiscriminationModel;
    use pvc_frame::Dimensions;
    use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

    fn session(dims: Dimensions) -> BatchEncoder<SyntheticDiscriminationModel> {
        BatchEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default(),
            DisplayGeometry::quest2_like(dims),
        )
    }

    fn frames(dims: Dimensions, count: u32) -> Vec<LinearFrame> {
        let renderer = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims));
        (0..count).map(|t| renderer.render_linear(t)).collect()
    }

    #[test]
    fn batch_output_matches_one_shot_encoder() {
        let dims = Dimensions::new(96, 64);
        let display = DisplayGeometry::quest2_like(dims);
        let one_shot = PerceptualEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default(),
        );
        let mut batch = session(dims);
        let gazes = [
            GazePoint::center_of(dims),
            GazePoint::new(10.0, 12.0),
            GazePoint::center_of(dims),
        ];
        for (frame, gaze) in frames(dims, 3).iter().zip(gazes) {
            let expected = one_shot.encode_frame(frame, &display, gaze);
            let got = batch.encode(frame, gaze);
            assert_eq!(got.encoded, expected.encoded);
            assert_eq!(got.baseline(), expected.baseline());
            assert_eq!(got.adjusted, expected.adjusted);
            assert_eq!(got.stats, expected.stats);
        }
    }

    #[test]
    fn repeated_gaze_hits_the_cache() {
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims);
        let gaze = GazePoint::center_of(dims);
        for frame in frames(dims, 4) {
            let _ = batch.encode(&frame, gaze);
        }
        let stats = batch.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cache_evicts_least_recently_used_gaze() {
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims).with_cache_capacity(2);
        let frame = &frames(dims, 1)[0];
        let g1 = GazePoint::new(1.0, 1.0);
        let g2 = GazePoint::new(2.0, 2.0);
        let g3 = GazePoint::new(3.0, 3.0);
        let _ = batch.encode(frame, g1);
        let _ = batch.encode(frame, g2);
        let _ = batch.encode(frame, g3); // evicts g1
        let _ = batch.encode(frame, g2); // hit
        let _ = batch.encode(frame, g1); // rebuilt
        let stats = batch.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn touching_an_entry_refreshes_its_recency() {
        // MRU semantics: with capacity 2, re-touching g1 right before g3
        // arrives must make g2 — not g1 — the eviction victim.
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims).with_cache_capacity(2);
        let frame = &frames(dims, 1)[0];
        let g1 = GazePoint::new(1.0, 1.0);
        let g2 = GazePoint::new(2.0, 2.0);
        let g3 = GazePoint::new(3.0, 3.0);
        let _ = batch.encode(frame, g1); // miss: [g1]
        let _ = batch.encode(frame, g2); // miss: [g2, g1]
        let _ = batch.encode(frame, g1); // hit, refresh: [g1, g2]
        let _ = batch.encode(frame, g3); // miss, evicts LRU g2: [g3, g1]
        assert_eq!(
            batch.cache_stats(),
            BatchCacheStats {
                hits: 1,
                misses: 3,
                entries: 2
            }
        );
        let _ = batch.encode(frame, g1); // still cached
        assert_eq!(batch.cache_stats().hits, 2);
        let _ = batch.encode(frame, g2); // was evicted, rebuilt
        let stats = batch.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn eviction_at_capacity_removes_only_the_least_recently_used() {
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims).with_cache_capacity(3);
        let frame = &frames(dims, 1)[0];
        let gazes: Vec<GazePoint> = (0..3).map(|i| GazePoint::new(i as f64, 0.0)).collect();
        for &g in &gazes {
            let _ = batch.encode(frame, g); // fill: [g2, g1, g0]
        }
        let newcomer = GazePoint::new(99.0, 0.0);
        let _ = batch.encode(frame, newcomer); // evicts g0: [new, g2, g1]
                                               // g1 and g2 survived ...
        let _ = batch.encode(frame, gazes[1]);
        let _ = batch.encode(frame, gazes[2]);
        assert_eq!(batch.cache_stats().hits, 2);
        // ... and only g0 has to be rebuilt.
        let _ = batch.encode(frame, gazes[0]);
        assert_eq!(
            batch.cache_stats(),
            BatchCacheStats {
                hits: 2,
                misses: 5,
                entries: 3
            }
        );
    }

    #[test]
    fn stream_mode_encode_matches_the_full_session_encode() {
        let dims = Dimensions::new(96, 64);
        let mut full = session(dims);
        let mut stream = session(dims);
        let gazes = [
            GazePoint::center_of(dims),
            GazePoint::new(10.0, 12.0),
            GazePoint::center_of(dims),
        ];
        for (frame, gaze) in frames(dims, 3).iter().zip(gazes) {
            let expected = full.encode(frame, gaze);
            let got = stream.encode_frame_stream(frame, gaze);
            assert_eq!(got.encoded, expected.encoded);
            assert_eq!(got.adjusted, expected.adjusted);
            assert_eq!(got.stats, expected.stats);
        }
        // Both paths drive the same cache.
        assert_eq!(stream.cache_stats(), full.cache_stats());
        assert_eq!(stream.cache_stats().hits, 1);
    }

    #[test]
    fn scratch_session_stream_matches_the_allocating_session_stream() {
        let dims = Dimensions::new(96, 64);
        let mut allocating = session(dims);
        let mut scratch_session = session(dims);
        let mut scratch = StreamScratch::new();
        let mut bitstream = Vec::new();
        let gazes = [
            GazePoint::center_of(dims),
            GazePoint::new(10.0, 12.0),
            GazePoint::center_of(dims),
        ];
        for (frame, gaze) in frames(dims, 3).iter().zip(gazes) {
            let expected = allocating.encode_frame_stream(frame, gaze);
            let stats =
                scratch_session.encode_frame_stream_into(frame, gaze, &mut scratch, &mut bitstream);
            assert_eq!(bitstream, expected.encoded.to_bitstream());
            assert_eq!(stats.adjustment, expected.stats);
            assert_eq!(stats.compression, expected.our_stats());
        }
        // Both paths drive the same gaze cache.
        assert_eq!(scratch_session.cache_stats(), allocating.cache_stats());
        assert_eq!(scratch_session.cache_stats().hits, 1);
    }

    #[test]
    fn encode_stream_returns_one_result_per_frame() {
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims);
        let rendered = frames(dims, 3);
        let gaze = GazePoint::center_of(dims);
        let stream: Vec<_> = rendered.iter().map(|f| (f, gaze)).collect();
        let results = batch.encode_stream(stream);
        assert_eq!(results.len(), 3);
        for result in results {
            assert!(result.our_stats().compressed_bits <= result.bd_stats().compressed_bits);
        }
    }

    #[test]
    fn temporal_streams_decode_to_the_adjusted_frames() {
        use crate::config::TemporalConfig;
        use pvc_bdc::{BdDecoder, FrameKind};

        let dims = Dimensions::new(96, 64);
        let display = DisplayGeometry::quest2_like(dims);
        let config = EncoderConfig::default().with_temporal(TemporalConfig::every(3));
        let mut temporal =
            BatchEncoder::new(SyntheticDiscriminationModel::default(), config, display);
        let mut intra = session(dims);
        let mut scratch = StreamScratch::new();
        let mut payload = Vec::new();
        let mut decoder = BdDecoder::new();
        let mut decoded =
            pvc_frame::SrgbFrame::filled(Dimensions::new(1, 1), pvc_color::Srgb8::default());
        let gaze = GazePoint::new(10.0, 12.0);
        let mut saved = 0i64;
        for (index, frame) in frames(dims, 7).iter().enumerate() {
            let expected = intra.encode_frame_stream(frame, gaze);
            let stats = temporal.encode_frame_stream_into(frame, gaze, &mut scratch, &mut payload);
            let expected_key = index % 3 == 0;
            assert_eq!(stats.temporal.keyframe, expected_key, "frame {index}");
            if expected_key {
                // Keyframes are the exact intra bitstream.
                assert_eq!(payload, expected.encoded.to_bitstream(), "frame {index}");
                assert_eq!(stats.temporal.bits, stats.temporal.intra_bits);
            } else {
                assert!(pvc_bdc::is_temporal_bitstream(&payload), "frame {index}");
            }
            // The temporal stats account every tile and the whole payload.
            let tiles =
                stats.temporal.skip_tiles + stats.temporal.delta_tiles + stats.temporal.intra_tiles;
            assert_eq!(tiles, stats.adjustment.total_tiles as u64, "frame {index}");
            assert_eq!(
                stats.temporal.bits.div_ceil(8) as usize,
                payload.len(),
                "frame {index}"
            );
            saved += stats.temporal.intra_bits as i64 - stats.temporal.bits as i64;
            // Decoding reconstructs the adjusted frame bit-exactly.
            let kind = decoder.decode_frame_into(&payload, &mut decoded).unwrap();
            assert_eq!(
                kind,
                if expected_key {
                    FrameKind::Key
                } else {
                    FrameKind::Predicted
                }
            );
            assert_eq!(decoded, expected.adjusted, "frame {index}");
        }
        assert!(saved > 0, "an animated fixation must save bits");
    }

    #[test]
    fn keyframe_interval_one_is_byte_identical_to_intra_only() {
        use crate::config::TemporalConfig;
        let dims = Dimensions::new(64, 64);
        let display = DisplayGeometry::quest2_like(dims);
        let mut temporal = BatchEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default().with_temporal(TemporalConfig::every(1)),
            display,
        );
        let mut intra = session(dims);
        let mut scratch = StreamScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let gaze = GazePoint::center_of(dims);
        for frame in frames(dims, 4) {
            let t = temporal.encode_frame_stream_into(&frame, gaze, &mut scratch, &mut a);
            let i = intra.encode_frame_stream_into(&frame, gaze, &mut scratch, &mut b);
            assert_eq!(a, b);
            assert_eq!(t.compression, i.compression);
            assert!(t.temporal.keyframe);
        }
    }

    #[test]
    fn reseeded_session_realigns_with_the_solo_stream_at_the_next_keyframe() {
        use crate::config::TemporalConfig;
        let dims = Dimensions::new(64, 64);
        let display = DisplayGeometry::quest2_like(dims);
        let config = EncoderConfig::default().with_temporal(TemporalConfig::every(3));
        let make = || {
            BatchEncoder::new(
                SyntheticDiscriminationModel::default(),
                config.clone(),
                display,
            )
        };
        let gaze = GazePoint::center_of(dims);
        let rendered = frames(dims, 9);
        let mut scratch = StreamScratch::new();

        let mut solo = make();
        let solo_payloads: Vec<Vec<u8>> = rendered
            .iter()
            .map(|frame| {
                let mut out = Vec::new();
                solo.encode_frame_stream_into(frame, gaze, &mut scratch, &mut out);
                out
            })
            .collect();

        // A handoff at frame 4: the resumed encoder starts mid-GOP.
        let mut resumed = make().with_start_frame(4);
        assert_eq!(resumed.next_frame_index(), 4);
        for (index, frame) in rendered.iter().enumerate().skip(4) {
            let mut out = Vec::new();
            let stats = resumed.encode_frame_stream_into(frame, gaze, &mut scratch, &mut out);
            if index == 4 {
                // Forced refresh: the history is invalid after the seed.
                assert!(stats.temporal.keyframe);
            }
            if index >= 6 {
                // From the next interval multiple the stream is bit-equal
                // to the solo run again.
                assert_eq!(out, solo_payloads[index], "frame {index}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_frame_dimensions_panic() {
        let dims = Dimensions::new(64, 64);
        let mut batch = session(dims);
        let wrong = LinearFrame::filled(Dimensions::new(32, 32), pvc_color::LinearRgb::BLACK);
        let _ = batch.encode(&wrong, GazePoint::center_of(dims));
    }

    #[test]
    fn empty_session_has_zero_hit_rate() {
        let stats = BatchCacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn sessions_can_move_to_worker_threads() {
        // One session per stream on its own thread is the serving shape;
        // pin the Send bound so the cache never regresses to !Send.
        fn assert_send<T: Send>() {}
        assert_send::<BatchEncoder<SyntheticDiscriminationModel>>();

        let dims = Dimensions::new(32, 32);
        let mut moved = session(dims);
        let handle = std::thread::spawn(move || {
            let frame = LinearFrame::filled(dims, pvc_color::LinearRgb::BLACK);
            moved.encode(&frame, GazePoint::center_of(dims)).stats
        });
        let stats = handle.join().expect("worker thread");
        assert_eq!(stats.total_tiles, 64);
    }
}
