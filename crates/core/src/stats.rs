//! Per-frame adjustment statistics.

use crate::adjust::AdjustmentCase;
use serde::{Deserialize, Serialize};

/// Counters describing what the adjustment did to a frame.
///
/// The case counters feed Fig. 12 of the paper (distribution of tiles across
/// the two geometric cases); the foveal counter describes how many tiles
/// were bypassed because they overlap the protected central region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdjustmentStats {
    /// Total number of tiles in the frame.
    pub total_tiles: usize,
    /// Tiles left untouched because they overlap the foveal region.
    pub foveal_tiles: usize,
    /// Adjusted tiles that fell into case 1 (no common plane).
    pub case1_tiles: usize,
    /// Adjusted tiles that fell into case 2 (common plane, Δ collapses).
    pub case2_tiles: usize,
}

impl AdjustmentStats {
    /// Records the outcome of one adjusted (non-foveal) tile.
    pub fn record_case(&mut self, case: AdjustmentCase) {
        match case {
            AdjustmentCase::NoCommonPlane => self.case1_tiles += 1,
            AdjustmentCase::CommonPlane => self.case2_tiles += 1,
        }
    }

    /// Number of tiles that went through the adjustment.
    pub fn adjusted_tiles(&self) -> usize {
        self.case1_tiles + self.case2_tiles
    }

    /// Fraction of adjusted tiles in case 1, in percent (Fig. 12).
    pub fn case1_percent(&self) -> f64 {
        let adjusted = self.adjusted_tiles();
        if adjusted == 0 {
            return 0.0;
        }
        self.case1_tiles as f64 / adjusted as f64 * 100.0
    }

    /// Fraction of adjusted tiles in case 2, in percent (Fig. 12).
    pub fn case2_percent(&self) -> f64 {
        let adjusted = self.adjusted_tiles();
        if adjusted == 0 {
            return 0.0;
        }
        self.case2_tiles as f64 / adjusted as f64 * 100.0
    }

    /// Merges the counters of another frame or tile batch into this one.
    pub fn merge(&mut self, other: &AdjustmentStats) {
        self.total_tiles += other.total_tiles;
        self.foveal_tiles += other.foveal_tiles;
        self.case1_tiles += other.case1_tiles;
        self.case2_tiles += other.case2_tiles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_hundred() {
        let mut s = AdjustmentStats {
            total_tiles: 10,
            foveal_tiles: 2,
            ..Default::default()
        };
        for _ in 0..3 {
            s.record_case(AdjustmentCase::NoCommonPlane);
        }
        for _ in 0..5 {
            s.record_case(AdjustmentCase::CommonPlane);
        }
        assert_eq!(s.adjusted_tiles(), 8);
        assert!((s.case1_percent() + s.case2_percent() - 100.0).abs() < 1e-12);
        assert!((s.case1_percent() - 37.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_percentages() {
        let s = AdjustmentStats::default();
        assert_eq!(s.case1_percent(), 0.0);
        assert_eq!(s.case2_percent(), 0.0);
        assert_eq!(s.adjusted_tiles(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AdjustmentStats {
            total_tiles: 4,
            foveal_tiles: 1,
            case1_tiles: 1,
            case2_tiles: 2,
        };
        let b = AdjustmentStats {
            total_tiles: 6,
            foveal_tiles: 0,
            case1_tiles: 2,
            case2_tiles: 4,
        };
        a.merge(&b);
        assert_eq!(a.total_tiles, 10);
        assert_eq!(a.foveal_tiles, 1);
        assert_eq!(a.case1_tiles, 3);
        assert_eq!(a.case2_tiles, 6);
    }
}
