//! Color perception-aware framebuffer encoding — the paper's contribution.
//!
//! The encoder relaxes the numerically lossless constraint of Base+Delta
//! framebuffer compression to a *perceptually* lossless one: pixel colors
//! may be adjusted freely as long as each stays inside its eccentricity-
//! dependent discrimination ellipsoid (Sec. 3 of the paper). Within that
//! freedom the encoder minimizes the per-tile value range along the Red or
//! Blue axis, which directly minimizes the Δ bit-length of the downstream
//! BD codec.
//!
//! The crate provides:
//!
//! * [`adjust`] — the per-tile analytical color adjustment (extrema, HL/LH
//!   planes, case-1/case-2 moves of Fig. 6),
//! * [`encoder`] — the full-frame [`PerceptualEncoder`] that combines the
//!   gaze-dependent eccentricity map, the foveal bypass, the per-tile
//!   adjustment along both candidate axes, and the existing BD back-end
//!   (optionally fanned out over worker threads via
//!   [`EncoderConfig::threads`]),
//! * [`batch`] — the [`BatchEncoder`] session API that amortises
//!   eccentricity-map construction across a gaze-stream of frames,
//! * [`solver`] — an iterative reference solver for the relaxed optimization
//!   problem, used to validate that the analytical solution is optimal,
//! * [`stats`] — the per-frame statistics reported in the paper's
//!   evaluation (case distribution, adjusted-tile counts).
//!
//! # Examples
//!
//! ```
//! use pvc_color::SyntheticDiscriminationModel;
//! use pvc_core::{EncoderConfig, PerceptualEncoder};
//! use pvc_fovea::{DisplayGeometry, GazePoint};
//! use pvc_frame::{Dimensions, LinearFrame};
//! use pvc_color::LinearRgb;
//!
//! let dims = Dimensions::new(64, 64);
//! let frame = LinearFrame::filled(dims, LinearRgb::new(0.4, 0.5, 0.3));
//! let display = DisplayGeometry::quest2_like(dims);
//! let gaze = GazePoint::center_of(dims);
//!
//! let encoder = PerceptualEncoder::new(
//!     SyntheticDiscriminationModel::default(),
//!     EncoderConfig::default(),
//! );
//! let result = encoder.encode_frame(&frame, &display, gaze);
//! // The decoded frame is what the display controller would show.
//! let shown = result.encoded.decode();
//! assert_eq!(shown.dimensions(), dims);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adjust;
pub mod batch;
pub mod config;
pub mod encoder;
pub mod solver;
pub mod stats;

pub use ablation::{run_ablation, AblationResult, AblationVariant};
pub use adjust::{
    adjust_tile, adjust_tile_along_axis, adjust_tile_with, AdjustScratch, AdjustmentCase,
    AxisAdjustment, TileAdjustOutcome, TileAdjustment,
};
pub use batch::{BatchCacheStats, BatchEncoder, DEFAULT_GAZE_CACHE_CAPACITY};
pub use config::{EncoderConfig, TemporalConfig};
pub use encoder::{
    PerceptualEncodeResult, PerceptualEncoder, StageNanos, StreamEncodeResult, StreamFrameStats,
    StreamScratch, TemporalHistory,
};
pub use solver::IterativeSolver;
pub use stats::AdjustmentStats;
