//! Property-based pin: the SoA lane path through [`adjust_tile_with`] is
//! bit-identical to the scalar per-axis reference ([`adjust_tile_along_axis`]
//! composed with the first-minimal axis selection and the no-regress guard).
//!
//! The strategies deliberately cover the shapes the lane kernels treat
//! specially: full 4×4 and 8×8 tiles (whole lane groups), clipped edge tiles
//! whose pixel count is not a multiple of the lane width (scalar remainder
//! tail), single-pixel tiles, near-constant tiles (degenerate extrema spans,
//! where the speculative lane divide produces garbage that the select must
//! discard), and near-zero eccentricities (degenerate ellipsoids that leave
//! no room to move, exercising the no-regress fallback).

use proptest::prelude::*;
use pvc_bdc::tile_codec::bits_for_range;
use pvc_color::{
    linear_to_srgb8, DiscriminationModel, LinearRgb, RgbAxis, SyntheticDiscriminationModel,
};
use pvc_core::{adjust_tile_along_axis, adjust_tile_with, AdjustScratch, AxisAdjustment};

/// Independent scalar Δ bit cost: per-channel sRGB8 range via the scalar
/// quantizer, never the lane kernels under test.
fn scalar_delta_bit_cost(pixels: &[LinearRgb]) -> u64 {
    let mut total = 0u64;
    for channel in 0..3 {
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        for p in pixels {
            let v = linear_to_srgb8(p.channel(channel));
            min = min.min(v);
            max = max.max(v);
        }
        total += u64::from(bits_for_range(max - min)) * pixels.len() as u64;
    }
    total
}

/// Runs both paths on one tile and requires bit-identical outputs.
fn assert_lane_matches_scalar(pixels: &[LinearRgb], eccentricity: f64) {
    let model = SyntheticDiscriminationModel::default();
    let ellipsoids: Vec<_> = pixels
        .iter()
        .map(|&p| model.ellipsoid(p, eccentricity))
        .collect();

    let mut scratch = AdjustScratch::new();
    scratch.pixels.extend_from_slice(pixels);
    scratch.ellipsoids.extend_from_slice(&ellipsoids);
    let outcome = adjust_tile_with(&mut scratch, &RgbAxis::OPTIMIZED);

    // Scalar reference composition: first axis with strictly minimal cost.
    let mut expected: Option<AxisAdjustment> = None;
    for &axis in &RgbAxis::OPTIMIZED {
        let attempt = adjust_tile_along_axis(pixels, &ellipsoids, axis);
        if expected.as_ref().map_or(true, |best| {
            attempt.delta_bit_cost() < best.delta_bit_cost()
        }) {
            expected = Some(attempt);
        }
    }
    let expected = expected.expect("at least one axis");
    let original_cost = scalar_delta_bit_cost(pixels);

    prop_assert_eq!(outcome.axis, expected.axis);
    prop_assert_eq!(outcome.case, expected.case);
    prop_assert_eq!(outcome.hl.to_bits(), expected.hl.to_bits());
    prop_assert_eq!(outcome.lh.to_bits(), expected.lh.to_bits());
    prop_assert_eq!(outcome.original_cost, original_cost);
    let expected_cost = expected.delta_bit_cost();
    if expected_cost >= original_cost {
        // No-regress guard: the lane path must hand back the original bits.
        prop_assert_eq!(scratch.best(), pixels);
        prop_assert_eq!(outcome.adjusted_cost, original_cost);
    } else {
        prop_assert_eq!(outcome.adjusted_cost, expected_cost);
        prop_assert_eq!(scratch.best().len(), expected.adjusted.len());
        for (got, want) in scratch.best().iter().zip(expected.adjusted.iter()) {
            for channel in 0..3 {
                prop_assert_eq!(
                    got.channel(channel).to_bits(),
                    want.channel(channel).to_bits()
                );
            }
        }
    }
}

fn arb_pixel() -> impl Strategy<Value = LinearRgb> {
    (0.0..=1.0f64, 0.0..=1.0f64, 0.0..=1.0f64).prop_map(|(r, g, b)| LinearRgb::new(r, g, b))
}

/// Exactly `side * side` diverse pixels: a full (unclipped) tile.
fn arb_full_tile(side: usize) -> impl Strategy<Value = Vec<LinearRgb>> {
    let pixels = side * side;
    proptest::collection::vec(arb_pixel(), pixels..pixels + 1)
}

/// A clipped edge tile: any pixel count up to a full 8×8 tile, so the
/// length sweeps every remainder class modulo the lane width (including
/// single-pixel tiles).
fn arb_clipped_tile() -> impl Strategy<Value = Vec<LinearRgb>> {
    proptest::collection::vec(arb_pixel(), 1..65)
}

/// A smooth tile: one base color plus per-pixel jitter small enough that
/// common planes (case 2) and near-zero extrema spans actually occur.
fn arb_smooth_tile() -> impl Strategy<Value = Vec<LinearRgb>> {
    (
        arb_pixel(),
        proptest::collection::vec(-0.01..=0.01f64, 1..65),
    )
        .prop_map(|(base, jitter)| {
            jitter
                .into_iter()
                .map(|j| {
                    LinearRgb::new(
                        (base.channel(0) + j).clamp(0.0, 1.0),
                        (base.channel(1) + 0.5 * j).clamp(0.0, 1.0),
                        (base.channel(2) - j).clamp(0.0, 1.0),
                    )
                })
                .collect()
        })
}

proptest! {
    #[test]
    fn full_4x4_tiles_match(pixels in arb_full_tile(4), ecc in 0.5..40.0f64) {
        assert_lane_matches_scalar(&pixels, ecc);
    }

    #[test]
    fn full_8x8_tiles_match(pixels in arb_full_tile(8), ecc in 0.5..40.0f64) {
        assert_lane_matches_scalar(&pixels, ecc);
    }

    #[test]
    fn clipped_edge_tiles_match(pixels in arb_clipped_tile(), ecc in 0.5..40.0f64) {
        assert_lane_matches_scalar(&pixels, ecc);
    }

    #[test]
    fn smooth_tiles_match(pixels in arb_smooth_tile(), ecc in 0.5..40.0f64) {
        assert_lane_matches_scalar(&pixels, ecc);
    }

    #[test]
    fn degenerate_ellipsoids_match(pixels in arb_clipped_tile(), ecc in 0.001..0.1f64) {
        assert_lane_matches_scalar(&pixels, ecc);
    }
}
