//! End-to-end bitstream round-trip pin for the perceptual encoder:
//!
//! ```text
//! encode_frame_stream → to_bitstream → from_bitstream → decode
//!                                            == adjusted frame
//! ```
//!
//! BD is numerically lossless, so the bytes a streaming worker ships must
//! reconstruct the *adjusted* frame bit-for-bit — across arbitrary
//! dimensions (including non-tile-multiple edges), every resolution
//! tier's effective tile size (4 for the Quest-class tiers, 8 for the
//! Vision-class override), and both serial and 4-thread encoders. The
//! scratch-based `BdDecoder` path is pinned against the same reference.

use proptest::prelude::*;
use pvc_bdc::{BdDecoder, BdEncodedFrame};
use pvc_color::{Srgb8, SyntheticDiscriminationModel};
use pvc_core::{EncoderConfig, PerceptualEncoder};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::{Dimensions, SrgbFrame};
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

/// The effective per-tier encoder tile sizes: Quest2 and QuestPro use the
/// default (4), VisionClass overrides to 8 (`ResolutionTier::tile_size`).
const TIER_TILE_SIZES: [u32; 3] = [4, 4, 8];

fn roundtrip(width: u32, height: u32, tile_size: u32, threads: usize, seed: u64) {
    let dims = Dimensions::new(width, height);
    let renderer = SceneRenderer::new(SceneId::by_index(seed as usize), {
        SceneConfig::new(dims).with_seed(seed)
    });
    let frame = renderer.render_linear((seed % 7) as u32);
    let encoder = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default()
            .with_tile_size(tile_size)
            .with_threads(threads),
    );
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::new(
        (seed % u64::from(width)) as f64,
        (seed % u64::from(height)) as f64,
    );
    let result = encoder.encode_frame_stream(&frame, &display, gaze);

    let bytes = result.encoded.to_bitstream();
    let parsed = BdEncodedFrame::from_bitstream(&bytes).expect("the encoder's bytes are valid");
    assert_eq!(parsed, result.encoded, "parse must reproduce the encoding");
    assert_eq!(
        parsed.decode(),
        result.adjusted,
        "decoded pixels must equal the adjusted frame (BD is lossless)"
    );

    // The scratch decoder sees the same pixels without materializing the
    // tile structure.
    let mut scratch = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    BdDecoder::new()
        .decode_bitstream_into(&bytes, &mut scratch)
        .expect("the encoder's bytes are valid");
    assert_eq!(scratch, result.adjusted);
}

proptest! {
    /// Arbitrary frame geometry × tier tile sizes × serial/parallel.
    #[test]
    fn stream_bytes_reconstruct_the_adjusted_frame(
        width in 5u32..48,
        height in 5u32..48,
        tier in 0u32..3,
        threads in 0u32..2,
        seed in any::<u64>(),
    ) {
        roundtrip(
            width,
            height,
            TIER_TILE_SIZES[tier as usize],
            [1, 4][threads as usize],
            seed,
        );
    }
}

/// Deterministic edge pins: dimensions that are not multiples of the tile
/// size (ragged right/bottom tiles), single-pixel rows/columns, and a
/// tile larger than the frame — for every tier tile size and both thread
/// counts.
#[test]
fn non_tile_multiple_edges_roundtrip() {
    for &(width, height) in &[(13, 9), (9, 13), (1, 17), (17, 1), (5, 5), (33, 31)] {
        for &tile_size in &TIER_TILE_SIZES {
            for threads in [1, 4] {
                roundtrip(width, height, tile_size, threads, 11);
            }
        }
    }
}
