//! Tier-2 allocation-regression pin for the scratch stream-encode path.
//!
//! The whole point of the scratch refactor is that a streaming session's
//! steady state performs **zero** heap allocation per frame: tile gathers,
//! ellipsoids, axis candidates, the adjusted frame in both color spaces
//! and the packed bitstream all live in buffers that warm up once and are
//! reused for the rest of the session. This test pins that property with
//! a counting global allocator so it cannot silently rot.
//!
//! The test lives alone in its own integration-test binary: the counter
//! is process-global, and a concurrently running sibling test would
//! attribute its allocations to the measured window.

use pvc_color::SyntheticDiscriminationModel;
use pvc_core::{BatchEncoder, EncoderConfig, StreamScratch};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::Dimensions;
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};
use pvc_trace::{Marker, Recorder, Stage, TraceEpoch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation / reallocation events since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator with an event counter in front.
struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_stream_frames_do_not_allocate() {
    let dims = Dimensions::new(96, 64);
    let renderer = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims));
    let frames: Vec<_> = (0..4).map(|t| renderer.render_linear(t)).collect();
    // Two gazes so the warm-up also populates the eccentricity-map cache
    // for every gaze the measured pass will request.
    let gazes = [GazePoint::center_of(dims), GazePoint::new(10.0, 12.0)];

    let mut session = BatchEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default(),
        DisplayGeometry::quest2_like(dims),
    );
    let mut scratch = StreamScratch::new();
    let mut bitstream = Vec::new();

    // Tracing stays ON through the measured pass: the pin also covers the
    // pvc_trace recording path. The tiny ring capacity (4) forces the
    // overwrite-oldest wrap branch, the one that runs in steady state.
    let epoch = TraceEpoch::now();
    let mut recorder = Recorder::new(epoch, 4);
    recorder.mark(Marker::Admit, 0, 1);

    // Warm-up: builds the eccentricity maps and grows every scratch buffer
    // to its steady-state size.
    let mut warmup_bytes = 0usize;
    for frame in &frames {
        for &gaze in &gazes {
            session.encode_frame_stream_into(frame, gaze, &mut scratch, &mut bitstream);
            warmup_bytes += bitstream.len();
        }
    }
    assert!(warmup_bytes > 0, "the warm-up must produce real bitstreams");

    // Measured steady state: the exact same frame/gaze schedule again,
    // now recording the same spans a tracing shard worker records.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut measured_bytes = 0usize;
    let mut frame_index = 0u32;
    for frame in &frames {
        for &gaze in &gazes {
            let started = Instant::now();
            session.encode_frame_stream_into(frame, gaze, &mut scratch, &mut bitstream);
            let timing = scratch.last_timing();
            recorder.span_nanos(Stage::Adjust, 0, 1, frame_index, 0, timing.adjust);
            recorder.span_nanos(Stage::Gamma, 0, 1, frame_index, 0, timing.gamma);
            recorder.span_nanos(Stage::BdEncode, 0, 1, frame_index, 0, timing.bd_encode);
            recorder.span(Stage::WireEmit, 0, 1, frame_index, started);
            measured_bytes += bitstream.len();
            frame_index += 1;
        }
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(measured_bytes, warmup_bytes, "the workload must repeat");
    assert_eq!(
        allocations, 0,
        "steady-state stream frames must not allocate, tracing included \
         ({allocations} allocation events over 8 frames)"
    );
    assert_eq!(
        recorder.tables().total_count(),
        4 * u64::from(frame_index),
        "every measured span must have landed in the stage tables"
    );
    assert!(
        recorder.recorded() > 4,
        "the measured pass must have wrapped the 4-event ring"
    );
}
