//! Ignored-by-default throughput smoke benchmark.
//!
//! Asserts that the parallel adjustment fan-out actually beats the serial
//! path on a full 512×512 frame — and that it does so while producing
//! bit-identical output. Wall-clock assertions are inherently machine
//! dependent, so the test is `#[ignore]`d by default; run it explicitly on
//! a multi-core machine with:
//!
//! ```text
//! cargo test -p pvc_core --release --test throughput_smoke -- --ignored --nocapture
//! ```

use pvc_color::SyntheticDiscriminationModel;
use pvc_core::{EncoderConfig, PerceptualEncoder};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::Dimensions;
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};
use std::time::Instant;

fn best_of<T>(repetitions: u32, mut routine: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        std::hint::black_box(routine());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "wall-clock smoke benchmark; run with --ignored on a multi-core machine"]
fn parallel_encoder_beats_serial_on_512x512() {
    let threads = pvc_parallel::available_threads().min(8);
    if threads < 2 {
        // A speedup assertion is meaningless without a second core; skip
        // rather than fail so the suite stays usable on constrained boxes.
        eprintln!("skipping: single-core machine, no speedup to demonstrate");
        return;
    }

    let dims = Dimensions::new(512, 512);
    let frame = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims)).render_linear(0);
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::center_of(dims);

    let serial = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default().with_threads(1),
    );
    let parallel = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default().with_threads(threads),
    );

    // Warm up both paths and pin down bit-identical output while at it.
    let serial_result = serial.encode_frame(&frame, &display, gaze);
    let parallel_result = parallel.encode_frame(&frame, &display, gaze);
    assert_eq!(serial_result.encoded, parallel_result.encoded);
    assert_eq!(serial_result.stats, parallel_result.stats);

    let serial_secs = best_of(3, || serial.encode_frame(&frame, &display, gaze));
    let parallel_secs = best_of(3, || parallel.encode_frame(&frame, &display, gaze));
    let speedup = serial_secs / parallel_secs;
    println!(
        "512x512 encode: serial {:.1} ms, parallel({threads}) {:.1} ms, speedup {speedup:.2}x",
        serial_secs * 1e3,
        parallel_secs * 1e3,
    );
    assert!(
        parallel_secs < serial_secs,
        "parallel path ({parallel_secs:.4}s on {threads} threads) \
         should beat serial ({serial_secs:.4}s)"
    );
}
