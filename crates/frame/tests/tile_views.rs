//! Property tests pinning the borrowed tile views to the allocating API.
//!
//! The zero-allocation encode path reads tiles through
//! `tile_pixels_into` and recycles frames through `clone_from` /
//! `to_srgb_into`; each of those must be observationally identical to the
//! allocating original across arbitrary dimensions and tile sizes —
//! including the clipped edge tiles of non-multiple frames.

use proptest::prelude::*;
use pvc_color::{LinearRgb, Srgb8};
use pvc_frame::{Dimensions, LinearFrame, SrgbFrame, TileGrid};

fn arb_srgb_frame() -> impl Strategy<Value = SrgbFrame> {
    (1u32..40, 1u32..40, any::<u64>()).prop_map(|(width, height, seed)| {
        let dims = Dimensions::new(width, height);
        // A cheap deterministic pixel pattern; content just has to vary.
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let v = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(i as u64 * 0x85EB);
                Srgb8::new((v >> 16) as u8, (v >> 8) as u8, v as u8)
            })
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    })
}

fn arb_linear_frame() -> impl Strategy<Value = LinearFrame> {
    (1u32..24, 1u32..24, any::<u64>()).prop_map(|(width, height, seed)| {
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let v = seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D);
                let unit = |shift: u32| ((v >> shift) & 0xFFFF) as f64 / 65535.0;
                LinearRgb::new(unit(0), unit(16), unit(32))
            })
            .collect();
        LinearFrame::from_pixels(dims, pixels).expect("sized correctly")
    })
}

proptest! {
    #[test]
    fn borrowed_tile_views_match_tile_pixels(
        frame in arb_srgb_frame(),
        tile_size in 1u32..9,
    ) {
        let grid = TileGrid::new(frame.dimensions(), tile_size);
        let mut buffer = Vec::new();
        for tile in grid.tiles() {
            frame.tile_pixels_into(tile, &mut buffer);
            prop_assert_eq!(&buffer, &frame.tile_pixels(tile));
            prop_assert_eq!(buffer.len(), tile.pixel_count());
        }
    }

    #[test]
    fn borrowed_tile_views_match_on_linear_frames(
        frame in arb_linear_frame(),
        tile_size in 1u32..9,
    ) {
        let grid = TileGrid::new(frame.dimensions(), tile_size);
        let mut buffer = Vec::new();
        for tile in grid.tiles() {
            frame.tile_pixels_into(tile, &mut buffer);
            prop_assert_eq!(&buffer, &frame.tile_pixels(tile));
        }
    }

    #[test]
    fn clone_from_matches_clone_across_size_changes(
        first in arb_linear_frame(),
        second in arb_linear_frame(),
    ) {
        let mut recycled = first.clone();
        recycled.clone_from(&second);
        prop_assert_eq!(&recycled, &second);
        prop_assert_eq!(recycled.dimensions(), second.dimensions());
    }

    #[test]
    fn to_srgb_into_matches_to_srgb(frame in arb_linear_frame()) {
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        frame.to_srgb_into(&mut out);
        prop_assert_eq!(out, frame.to_srgb());
    }
}
