//! Tiling of frames into fixed-size blocks.

use crate::frame::Dimensions;
use serde::{Deserialize, Serialize};

/// The tile size used throughout the paper's main evaluation (4×4 pixels).
pub const DEFAULT_TILE_SIZE: u32 = 4;

/// A rectangular tile of a frame, in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileRect {
    /// Left edge (inclusive).
    pub x: u32,
    /// Top edge (inclusive).
    pub y: u32,
    /// Width in pixels (edge tiles may be narrower than the tile size).
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl TileRect {
    /// Number of pixels covered by the tile.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Center of the tile in (floating point) pixel coordinates.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (
            f64::from(self.x) + f64::from(self.width) * 0.5,
            f64::from(self.y) + f64::from(self.height) * 0.5,
        )
    }

    /// True if the tile covers the pixel at `(x, y)`.
    #[inline]
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x && x < self.x + self.width && y >= self.y && y < self.y + self.height
    }
}

/// A partition of a frame into square tiles of a given size.
///
/// # Examples
///
/// ```
/// use pvc_frame::{Dimensions, TileGrid};
/// let grid = TileGrid::new(Dimensions::new(10, 6), 4);
/// assert_eq!(grid.tiles_x(), 3);
/// assert_eq!(grid.tiles_y(), 2);
/// assert_eq!(grid.tile_count(), 6);
/// // Edge tiles are clipped to the frame.
/// let last = grid.tiles().last().unwrap();
/// assert_eq!((last.width, last.height), (2, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid {
    dimensions: Dimensions,
    tile_size: u32,
}

impl TileGrid {
    /// Creates a tile grid over a frame of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn new(dimensions: Dimensions, tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        TileGrid {
            dimensions,
            tile_size,
        }
    }

    /// The frame dimensions the grid covers.
    #[inline]
    pub fn dimensions(&self) -> Dimensions {
        self.dimensions
    }

    /// The nominal (unclipped) tile size.
    #[inline]
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.dimensions.width.div_ceil(self.tile_size)
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.dimensions.height.div_ceil(self.tile_size)
    }

    /// Total number of tiles.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles_x() as usize * self.tiles_y() as usize
    }

    /// Returns the tile at grid position `(tx, ty)`, clipped to the frame.
    ///
    /// # Panics
    ///
    /// Panics if the grid position is out of range.
    pub fn tile(&self, tx: u32, ty: u32) -> TileRect {
        assert!(
            tx < self.tiles_x() && ty < self.tiles_y(),
            "tile index out of range"
        );
        let x = tx * self.tile_size;
        let y = ty * self.tile_size;
        TileRect {
            x,
            y,
            width: self.tile_size.min(self.dimensions.width - x),
            height: self.tile_size.min(self.dimensions.height - y),
        }
    }

    /// Iterates over all tiles in row-major order.
    pub fn tiles(&self) -> Tiles {
        Tiles {
            grid: *self,
            next: 0,
        }
    }
}

/// Iterator over the tiles of a [`TileGrid`] in row-major order.
#[derive(Debug, Clone)]
pub struct Tiles {
    grid: TileGrid,
    next: usize,
}

impl Iterator for Tiles {
    type Item = TileRect;

    fn next(&mut self) -> Option<TileRect> {
        if self.next >= self.grid.tile_count() {
            return None;
        }
        let tx = (self.next % self.grid.tiles_x() as usize) as u32;
        let ty = (self.next / self.grid.tiles_x() as usize) as u32;
        self.next += 1;
        Some(self.grid.tile(tx, ty))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.grid.tile_count() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Tiles {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_pixel_exactly_once() {
        let d = Dimensions::new(13, 9);
        let grid = TileGrid::new(d, 4);
        let mut covered = vec![0u32; d.pixel_count()];
        for tile in grid.tiles() {
            for dy in 0..tile.height {
                for dx in 0..tile.width {
                    let idx = ((tile.y + dy) * d.width + (tile.x + dx)) as usize;
                    covered[idx] += 1;
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "every pixel must be covered exactly once"
        );
    }

    #[test]
    fn tile_counts_for_exact_and_partial_fits() {
        assert_eq!(TileGrid::new(Dimensions::new(16, 16), 4).tile_count(), 16);
        assert_eq!(TileGrid::new(Dimensions::new(17, 16), 4).tile_count(), 20);
        assert_eq!(TileGrid::new(Dimensions::new(1, 1), 4).tile_count(), 1);
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let grid = TileGrid::new(Dimensions::new(10, 10), 4);
        let tile = grid.tile(2, 2);
        assert_eq!((tile.width, tile.height), (2, 2));
        assert_eq!(tile.pixel_count(), 4);
    }

    #[test]
    fn iterator_is_exact_size_and_row_major() {
        let grid = TileGrid::new(Dimensions::new(8, 8), 4);
        let tiles: Vec<_> = grid.tiles().collect();
        assert_eq!(tiles.len(), grid.tile_count());
        assert_eq!(grid.tiles().len(), 4);
        assert_eq!(tiles[0].x, 0);
        assert_eq!(tiles[1].x, 4);
        assert_eq!(tiles[2].y, 4);
    }

    #[test]
    fn tile_center_and_contains() {
        let grid = TileGrid::new(Dimensions::new(8, 8), 4);
        let tile = grid.tile(1, 0);
        assert_eq!(tile.center(), (6.0, 2.0));
        assert!(tile.contains(5, 3));
        assert!(!tile.contains(3, 3));
    }

    #[test]
    #[should_panic]
    fn zero_tile_size_panics() {
        let _ = TileGrid::new(Dimensions::new(4, 4), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tile_panics() {
        let grid = TileGrid::new(Dimensions::new(8, 8), 4);
        let _ = grid.tile(2, 0);
    }
}
