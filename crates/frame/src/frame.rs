//! Owned frame buffers in sRGB and linear RGB.

use crate::tile::TileRect;
use pvc_color::{LinearRgb, Srgb8};
use serde::{Deserialize, Serialize};

/// Width and height of a frame in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dimensions {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Dimensions {
    /// The lowest rendering resolution of the Oculus Quest 2 referenced in
    /// the paper's power evaluation (Fig. 13).
    pub const QUEST2_LOW: Dimensions = Dimensions {
        width: 4128,
        height: 2096,
    };
    /// The highest rendering resolution of the Oculus Quest 2 (Fig. 13 and
    /// the CAU latency estimate of Sec. 6.1).
    pub const QUEST2_HIGH: Dimensions = Dimensions {
        width: 5408,
        height: 2736,
    };

    /// Creates a dimensions value.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Dimensions { width, height }
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of bytes of an uncompressed 24-bit frame of this size.
    #[inline]
    pub fn uncompressed_bytes(self) -> usize {
        self.pixel_count() * 3
    }

    /// True if the pixel coordinate lies inside the frame.
    #[inline]
    pub fn contains(self, x: u32, y: u32) -> bool {
        x < self.width && y < self.height
    }
}

impl std::fmt::Display for Dimensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Errors produced by frame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The supplied pixel buffer does not match the stated dimensions.
    SizeMismatch {
        /// Number of pixels implied by the dimensions.
        expected: usize,
        /// Number of pixels actually supplied.
        actual: usize,
    },
    /// Two frames that must have identical dimensions do not.
    DimensionMismatch {
        /// Dimensions of the first frame.
        left: Dimensions,
        /// Dimensions of the second frame.
        right: Dimensions,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "pixel buffer holds {actual} pixels but dimensions require {expected}"
                )
            }
            FrameError::DimensionMismatch { left, right } => {
                write!(f, "frame dimensions differ: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

macro_rules! impl_frame_common {
    ($name:ident, $pixel:ty, $doc_pixel:literal) => {
        impl $name {
            /// Creates a frame filled with a single pixel value.
            pub fn filled(dimensions: Dimensions, pixel: $pixel) -> Self {
                $name {
                    dimensions,
                    pixels: vec![pixel; dimensions.pixel_count()],
                }
            }

            /// Creates a frame from an existing pixel buffer in row-major order.
            ///
            /// # Errors
            ///
            /// Returns [`FrameError::SizeMismatch`] when the buffer length does
            /// not equal `width * height`.
            pub fn from_pixels(
                dimensions: Dimensions,
                pixels: Vec<$pixel>,
            ) -> Result<Self, FrameError> {
                if pixels.len() != dimensions.pixel_count() {
                    return Err(FrameError::SizeMismatch {
                        expected: dimensions.pixel_count(),
                        actual: pixels.len(),
                    });
                }
                Ok($name { dimensions, pixels })
            }

            /// Frame dimensions.
            #[inline]
            pub fn dimensions(&self) -> Dimensions {
                self.dimensions
            }

            /// Frame width in pixels.
            #[inline]
            pub fn width(&self) -> u32 {
                self.dimensions.width
            }

            /// Frame height in pixels.
            #[inline]
            pub fn height(&self) -> u32 {
                self.dimensions.height
            }

            /// The row-major pixel buffer.
            #[inline]
            pub fn pixels(&self) -> &[$pixel] {
                &self.pixels
            }

            /// Mutable access to the row-major pixel buffer.
            #[inline]
            pub fn pixels_mut(&mut self) -> &mut [$pixel] {
                &mut self.pixels
            }

            #[doc = concat!("Returns the ", $doc_pixel, " at `(x, y)`.")]
            ///
            /// # Panics
            ///
            /// Panics if the coordinate is outside the frame.
            #[inline]
            pub fn pixel(&self, x: u32, y: u32) -> $pixel {
                assert!(
                    self.dimensions.contains(x, y),
                    "pixel ({x}, {y}) out of bounds"
                );
                self.pixels[y as usize * self.dimensions.width as usize + x as usize]
            }

            #[doc = concat!("Sets the ", $doc_pixel, " at `(x, y)`.")]
            ///
            /// # Panics
            ///
            /// Panics if the coordinate is outside the frame.
            #[inline]
            pub fn set_pixel(&mut self, x: u32, y: u32, value: $pixel) {
                assert!(
                    self.dimensions.contains(x, y),
                    "pixel ({x}, {y}) out of bounds"
                );
                self.pixels[y as usize * self.dimensions.width as usize + x as usize] = value;
            }

            /// Extracts the pixels of a tile in row-major order.
            ///
            /// Allocates a fresh buffer per call; hot loops should prefer
            /// [`Self::tile_pixels_into`] with a reused buffer.
            ///
            /// # Panics
            ///
            /// Panics if the tile extends outside the frame.
            pub fn tile_pixels(&self, tile: TileRect) -> Vec<$pixel> {
                let mut out = Vec::new();
                self.tile_pixels_into(tile, &mut out);
                out
            }

            /// Extracts the pixels of a tile in row-major order into a
            /// caller-provided buffer, clearing it first.
            ///
            /// The buffer's capacity is reused across calls, so a tile loop
            /// that recycles one buffer performs no steady-state allocation
            /// — the hot-path twin of [`Self::tile_pixels`]. The contents
            /// are exactly what `tile_pixels` returns, including clipped
            /// edge tiles.
            ///
            /// # Panics
            ///
            /// Panics if the tile extends outside the frame.
            pub fn tile_pixels_into(&self, tile: TileRect, out: &mut Vec<$pixel>) {
                out.clear();
                out.reserve(tile.pixel_count());
                self.for_each_tile_row(tile, |row| out.extend_from_slice(row));
            }

            /// Visits each row of a tile as a contiguous pixel slice.
            ///
            /// Shared row-walk behind the AoS and SoA tile gathers, so both
            /// traverse pixels in the identical row-major order.
            pub(crate) fn for_each_tile_row(
                &self,
                tile: TileRect,
                mut visit: impl FnMut(&[$pixel]),
            ) {
                assert!(
                    tile.x + tile.width <= self.dimensions.width
                        && tile.y + tile.height <= self.dimensions.height,
                    "tile extends outside the frame"
                );
                let width = self.dimensions.width as usize;
                for dy in 0..tile.height as usize {
                    let row_start = (tile.y as usize + dy) * width + tile.x as usize;
                    visit(&self.pixels[row_start..row_start + tile.width as usize]);
                }
            }

            /// Resets the frame to the given dimensions with every pixel set
            /// to `fill`, reusing the existing pixel buffer's capacity.
            pub fn reset(&mut self, dimensions: Dimensions, fill: $pixel) {
                self.dimensions = dimensions;
                self.pixels.clear();
                self.pixels.resize(dimensions.pixel_count(), fill);
            }

            /// Writes a tile's pixels (row-major, as produced by
            /// [`Self::tile_pixels`]) back into the frame.
            ///
            /// # Panics
            ///
            /// Panics if the tile extends outside the frame or the pixel count
            /// does not match the tile area.
            pub fn write_tile(&mut self, tile: TileRect, pixels: &[$pixel]) {
                assert_eq!(
                    pixels.len(),
                    (tile.width * tile.height) as usize,
                    "tile pixel count mismatch"
                );
                let mut it = pixels.iter();
                for dy in 0..tile.height {
                    for dx in 0..tile.width {
                        self.set_pixel(tile.x + dx, tile.y + dy, *it.next().expect("sized above"));
                    }
                }
            }
        }
    };
}

/// A frame stored in the 8-bit sRGB encoding (what the framebuffer holds).
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrgbFrame {
    dimensions: Dimensions,
    pixels: Vec<Srgb8>,
}

/// `clone_from` reuses the destination's pixel buffer (no allocation once
/// its capacity covers the source), so per-frame outputs can be recycled
/// across a stream.
impl Clone for SrgbFrame {
    fn clone(&self) -> Self {
        SrgbFrame {
            dimensions: self.dimensions,
            pixels: self.pixels.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.dimensions = source.dimensions;
        self.pixels.clone_from(&source.pixels);
    }
}

impl_frame_common!(SrgbFrame, Srgb8, "sRGB pixel");

impl SrgbFrame {
    /// Expands the frame into the linear RGB working space (what the GPU
    /// produced before gamma encoding).
    pub fn to_linear(&self) -> LinearFrame {
        LinearFrame {
            dimensions: self.dimensions,
            pixels: self.pixels.iter().map(|p| p.to_linear()).collect(),
        }
    }

    /// Number of bytes of the frame when stored uncompressed (24 bpp).
    pub fn uncompressed_bytes(&self) -> usize {
        self.dimensions.uncompressed_bytes()
    }
}

/// A frame stored in linear RGB (the space where color adjustment happens).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearFrame {
    dimensions: Dimensions,
    pixels: Vec<LinearRgb>,
}

/// `clone_from` reuses the destination's pixel buffer (no allocation once
/// its capacity covers the source), so the encoder's adjusted-frame
/// scratch can be recycled across a stream.
impl Clone for LinearFrame {
    fn clone(&self) -> Self {
        LinearFrame {
            dimensions: self.dimensions,
            pixels: self.pixels.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.dimensions = source.dimensions;
        self.pixels.clone_from(&source.pixels);
    }
}

impl_frame_common!(LinearFrame, LinearRgb, "linear RGB pixel");

impl LinearFrame {
    /// Gamma-encodes and quantizes the frame into 8-bit sRGB.
    pub fn to_srgb(&self) -> SrgbFrame {
        SrgbFrame {
            dimensions: self.dimensions,
            pixels: self.pixels.iter().map(|p| p.to_srgb8()).collect(),
        }
    }

    /// Gamma-encodes into a caller-provided sRGB frame, reusing its pixel
    /// buffer. Produces exactly [`Self::to_srgb`]'s result without the
    /// per-frame allocation.
    ///
    /// The conversion transposes fixed-size pixel blocks into per-channel
    /// lanes on the stack and quantizes them with the vectorized
    /// [`pvc_color::linear_to_srgb8_slice`] kernel, which is bit-identical to the
    /// per-pixel [`LinearRgb::to_srgb8`] path.
    pub fn to_srgb_into(&self, out: &mut SrgbFrame) {
        use pvc_color::{lanes::LANE_WIDTH, linear_to_srgb8_slice};

        const BLOCK: usize = 4 * LANE_WIDTH;
        out.dimensions = self.dimensions;
        out.pixels.clear();
        out.pixels.resize(self.pixels.len(), Srgb8::default());
        let mut r = [0.0f64; BLOCK];
        let mut g = [0.0f64; BLOCK];
        let mut b = [0.0f64; BLOCK];
        let mut cr = [0u8; BLOCK];
        let mut cg = [0u8; BLOCK];
        let mut cb = [0u8; BLOCK];
        for (src, dst) in self.pixels.chunks(BLOCK).zip(out.pixels.chunks_mut(BLOCK)) {
            let n = src.len();
            for (i, p) in src.iter().enumerate() {
                r[i] = p.r;
                g[i] = p.g;
                b[i] = p.b;
            }
            linear_to_srgb8_slice(&r[..n], &mut cr[..n]);
            linear_to_srgb8_slice(&g[..n], &mut cg[..n]);
            linear_to_srgb8_slice(&b[..n], &mut cb[..n]);
            for (i, q) in dst.iter_mut().enumerate() {
                *q = Srgb8::new(cr[i], cg[i], cb[i]);
            }
        }
    }

    /// Clamps every pixel into the `[0, 1]` gamut.
    pub fn clamp_in_place(&mut self) {
        for p in &mut self.pixels {
            *p = p.clamped();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileGrid;

    #[test]
    fn dimensions_pixel_count_and_bytes() {
        let d = Dimensions::new(4, 3);
        assert_eq!(d.pixel_count(), 12);
        assert_eq!(d.uncompressed_bytes(), 36);
        assert_eq!(d.to_string(), "4x3");
    }

    #[test]
    #[should_panic]
    fn zero_dimensions_panic() {
        let _ = Dimensions::new(0, 7);
    }

    #[test]
    fn quest2_resolutions_match_paper() {
        assert_eq!(Dimensions::QUEST2_LOW.to_string(), "4128x2096");
        assert_eq!(Dimensions::QUEST2_HIGH.to_string(), "5408x2736");
    }

    #[test]
    fn from_pixels_validates_length() {
        let d = Dimensions::new(2, 2);
        let err = SrgbFrame::from_pixels(d, vec![Srgb8::default(); 3]).unwrap_err();
        assert_eq!(
            err,
            FrameError::SizeMismatch {
                expected: 4,
                actual: 3
            }
        );
        assert!(err.to_string().contains("pixels"));
        assert!(SrgbFrame::from_pixels(d, vec![Srgb8::default(); 4]).is_ok());
    }

    #[test]
    fn pixel_get_set_roundtrip() {
        let mut f = SrgbFrame::filled(Dimensions::new(3, 2), Srgb8::new(0, 0, 0));
        f.set_pixel(2, 1, Srgb8::new(9, 8, 7));
        assert_eq!(f.pixel(2, 1), Srgb8::new(9, 8, 7));
        assert_eq!(f.pixel(0, 0), Srgb8::new(0, 0, 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_pixel_panics() {
        let f = SrgbFrame::filled(Dimensions::new(3, 2), Srgb8::default());
        let _ = f.pixel(3, 0);
    }

    #[test]
    fn tile_extraction_and_write_back() {
        let d = Dimensions::new(8, 8);
        let mut f = SrgbFrame::filled(d, Srgb8::new(1, 1, 1));
        let grid = TileGrid::new(d, 4);
        let tile = grid.tiles().nth(3).unwrap();
        let mut pixels = f.tile_pixels(tile);
        assert_eq!(pixels.len(), 16);
        for p in &mut pixels {
            *p = Srgb8::new(200, 100, 50);
        }
        f.write_tile(tile, &pixels);
        assert_eq!(f.pixel(tile.x, tile.y), Srgb8::new(200, 100, 50));
        assert_eq!(f.pixel(0, 0), Srgb8::new(1, 1, 1));
    }

    #[test]
    fn linear_srgb_frame_roundtrip_via_codes() {
        let d = Dimensions::new(4, 4);
        let mut f = SrgbFrame::filled(d, Srgb8::new(0, 0, 0));
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            *p = Srgb8::new(
                (i * 13 % 256) as u8,
                (i * 29 % 256) as u8,
                (i * 7 % 256) as u8,
            );
        }
        let roundtrip = f.to_linear().to_srgb();
        assert_eq!(roundtrip, f);
    }

    #[test]
    fn tile_pixels_into_matches_tile_pixels_and_reuses_capacity() {
        let d = Dimensions::new(13, 9);
        let mut f = SrgbFrame::filled(d, Srgb8::default());
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            *p = Srgb8::new((i % 251) as u8, (i % 13) as u8, (i % 7) as u8);
        }
        let grid = TileGrid::new(d, 4);
        let mut buffer = Vec::new();
        for tile in grid.tiles() {
            f.tile_pixels_into(tile, &mut buffer);
            assert_eq!(buffer, f.tile_pixels(tile));
        }
        // The buffer has seen the largest tile; further extractions must
        // not grow it.
        let capacity = buffer.capacity();
        for tile in grid.tiles() {
            f.tile_pixels_into(tile, &mut buffer);
        }
        assert_eq!(buffer.capacity(), capacity);
    }

    #[test]
    #[should_panic(expected = "tile extends outside the frame")]
    fn tile_pixels_into_rejects_out_of_bounds_tiles() {
        let f = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::default());
        let mut buffer = Vec::new();
        f.tile_pixels_into(
            TileRect {
                x: 6,
                y: 0,
                width: 4,
                height: 4,
            },
            &mut buffer,
        );
    }

    #[test]
    fn clone_from_reuses_the_pixel_buffer() {
        let big = LinearFrame::filled(Dimensions::new(16, 16), LinearRgb::new(0.1, 0.2, 0.3));
        let small = LinearFrame::filled(Dimensions::new(4, 4), LinearRgb::new(0.9, 0.8, 0.7));
        let mut target = big.clone();
        let capacity = target.pixels.capacity();
        target.clone_from(&small);
        assert_eq!(target, small);
        assert_eq!(target.dimensions(), small.dimensions());
        // Shrinking keeps the old capacity; growing back needs none either.
        assert_eq!(target.pixels.capacity(), capacity);
        target.clone_from(&big);
        assert_eq!(target, big);
        assert_eq!(target.pixels.capacity(), capacity);
    }

    #[test]
    fn reset_resizes_and_fills() {
        let mut f = SrgbFrame::filled(Dimensions::new(2, 2), Srgb8::new(1, 2, 3));
        f.reset(Dimensions::new(3, 2), Srgb8::new(9, 9, 9));
        assert_eq!(f.dimensions(), Dimensions::new(3, 2));
        assert!(f.pixels().iter().all(|&p| p == Srgb8::new(9, 9, 9)));
    }

    #[test]
    fn to_srgb_into_matches_to_srgb() {
        let d = Dimensions::new(5, 3);
        let mut f = LinearFrame::filled(d, LinearRgb::BLACK);
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            let t = i as f64 / 14.0;
            *p = LinearRgb::new(t, 1.0 - t, 0.5 * t);
        }
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        f.to_srgb_into(&mut out);
        assert_eq!(out, f.to_srgb());
    }

    #[test]
    fn clamp_in_place_restores_gamut() {
        let d = Dimensions::new(2, 1);
        let mut f = LinearFrame::from_pixels(
            d,
            vec![
                LinearRgb::new(-0.2, 0.5, 1.4),
                LinearRgb::new(0.1, 0.2, 0.3),
            ],
        )
        .unwrap();
        f.clamp_in_place();
        assert!(f.pixel(0, 0).in_gamut(0.0));
        assert_eq!(f.pixel(1, 0), LinearRgb::new(0.1, 0.2, 0.3));
    }
}
