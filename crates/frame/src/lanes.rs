//! Structure-of-arrays tile buffers for the vectorized hot path.
//!
//! The tile kernels (perceptual adjust, gamma quantization, Base+Delta
//! packing) process one channel at a time, so gathering a tile as three
//! contiguous per-channel lanes lets the compiler autovectorize the inner
//! loops instead of chasing `(r, g, b)` structs. Lane buffers reuse their
//! capacity across tiles: a tile loop that recycles one buffer performs no
//! steady-state allocation.
//!
//! Pixel order inside each lane is exactly the row-major order of
//! [`tile_pixels_into`](crate::SrgbFrame::tile_pixels_into), so transposing
//! back yields the identical pixel sequence.

use crate::frame::{LinearFrame, SrgbFrame};
use crate::tile::TileRect;
use pvc_color::{LinearRgb, Srgb8};

/// A tile's pixels as three per-channel `u8` lanes (8-bit sRGB codes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SrgbTileLanes {
    /// Red code values, row-major tile order.
    pub r: Vec<u8>,
    /// Green code values, row-major tile order.
    pub g: Vec<u8>,
    /// Blue code values, row-major tile order.
    pub b: Vec<u8>,
}

impl SrgbTileLanes {
    /// Creates empty lanes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pixels currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True when no pixels are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Clears all three lanes, keeping their capacity.
    pub fn clear(&mut self) {
        self.r.clear();
        self.g.clear();
        self.b.clear();
    }

    /// The lane for channel `index` (0 → r, 1 → g, 2 → b).
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    pub fn channel(&self, index: usize) -> &[u8] {
        match index {
            0 => &self.r,
            1 => &self.g,
            2 => &self.b,
            _ => panic!("tile lane channel index out of range: {index}"),
        }
    }

    /// Transposes an AoS pixel slice into the three lanes, clearing them
    /// first.
    pub fn fill_from_pixels(&mut self, pixels: &[Srgb8]) {
        self.clear();
        self.reserve(pixels.len());
        for p in pixels {
            self.r.push(p.r);
            self.g.push(p.g);
            self.b.push(p.b);
        }
    }

    /// Transposes the lanes back into an AoS pixel buffer, clearing it first.
    pub fn scatter_into(&self, out: &mut Vec<Srgb8>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(Srgb8::new(self.r[i], self.g[i], self.b[i]));
        }
    }

    fn reserve(&mut self, additional: usize) {
        self.r.reserve(additional);
        self.g.reserve(additional);
        self.b.reserve(additional);
    }
}

/// A tile's pixels as three per-channel `f64` lanes (linear RGB).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearTileLanes {
    /// Red channel values, row-major tile order.
    pub r: Vec<f64>,
    /// Green channel values, row-major tile order.
    pub g: Vec<f64>,
    /// Blue channel values, row-major tile order.
    pub b: Vec<f64>,
}

impl LinearTileLanes {
    /// Creates empty lanes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pixels currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True when no pixels are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Clears all three lanes, keeping their capacity.
    pub fn clear(&mut self) {
        self.r.clear();
        self.g.clear();
        self.b.clear();
    }

    /// The lane for channel `index` (0 → r, 1 → g, 2 → b).
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    pub fn channel(&self, index: usize) -> &[f64] {
        match index {
            0 => &self.r,
            1 => &self.g,
            2 => &self.b,
            _ => panic!("tile lane channel index out of range: {index}"),
        }
    }

    /// Transposes an AoS pixel slice into the three lanes, clearing them
    /// first.
    pub fn fill_from_pixels(&mut self, pixels: &[LinearRgb]) {
        self.clear();
        self.reserve(pixels.len());
        for p in pixels {
            self.r.push(p.r);
            self.g.push(p.g);
            self.b.push(p.b);
        }
    }

    /// Transposes the lanes back into an AoS pixel buffer, clearing it first.
    pub fn scatter_into(&self, out: &mut Vec<LinearRgb>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(LinearRgb::new(self.r[i], self.g[i], self.b[i]));
        }
    }

    fn reserve(&mut self, additional: usize) {
        self.r.reserve(additional);
        self.g.reserve(additional);
        self.b.reserve(additional);
    }
}

impl SrgbFrame {
    /// Gathers a tile directly into per-channel lanes (SoA), clearing the
    /// lanes first. The pixel order matches
    /// [`tile_pixels_into`](Self::tile_pixels_into) exactly.
    ///
    /// # Panics
    ///
    /// Panics if the tile extends outside the frame.
    pub fn tile_lanes_into(&self, tile: TileRect, out: &mut SrgbTileLanes) {
        out.clear();
        out.reserve(tile.pixel_count());
        self.for_each_tile_row(tile, |row| {
            for p in row {
                out.r.push(p.r);
                out.g.push(p.g);
                out.b.push(p.b);
            }
        });
    }
}

impl LinearFrame {
    /// Gathers a tile directly into per-channel lanes (SoA), clearing the
    /// lanes first. The pixel order matches
    /// [`tile_pixels_into`](Self::tile_pixels_into) exactly.
    ///
    /// # Panics
    ///
    /// Panics if the tile extends outside the frame.
    pub fn tile_lanes_into(&self, tile: TileRect, out: &mut LinearTileLanes) {
        out.clear();
        out.reserve(tile.pixel_count());
        self.for_each_tile_row(tile, |row| {
            for p in row {
                out.r.push(p.r);
                out.g.push(p.g);
                out.b.push(p.b);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Dimensions;
    use crate::tile::TileGrid;

    fn checkerboard(d: Dimensions) -> SrgbFrame {
        let mut f = SrgbFrame::filled(d, Srgb8::default());
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            *p = Srgb8::new((i % 251) as u8, (i * 3 % 256) as u8, (i * 7 % 256) as u8);
        }
        f
    }

    #[test]
    fn srgb_lane_gather_matches_aos_gather() {
        let d = Dimensions::new(13, 9);
        let f = checkerboard(d);
        let grid = TileGrid::new(d, 4);
        let mut lanes = SrgbTileLanes::new();
        let mut aos = Vec::new();
        for tile in grid.tiles() {
            f.tile_lanes_into(tile, &mut lanes);
            f.tile_pixels_into(tile, &mut aos);
            assert_eq!(lanes.len(), aos.len());
            for (i, p) in aos.iter().enumerate() {
                assert_eq!((lanes.r[i], lanes.g[i], lanes.b[i]), (p.r, p.g, p.b));
            }
            let mut scattered = Vec::new();
            lanes.scatter_into(&mut scattered);
            assert_eq!(scattered, aos);
        }
    }

    #[test]
    fn linear_lane_gather_matches_aos_gather() {
        let d = Dimensions::new(7, 5);
        let mut f = LinearFrame::filled(d, LinearRgb::BLACK);
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            let t = i as f64 / 34.0;
            *p = LinearRgb::new(t, 1.0 - t, 0.5 * t);
        }
        let grid = TileGrid::new(d, 4);
        let mut lanes = LinearTileLanes::new();
        let mut aos = Vec::new();
        for tile in grid.tiles() {
            f.tile_lanes_into(tile, &mut lanes);
            f.tile_pixels_into(tile, &mut aos);
            let mut scattered = Vec::new();
            lanes.scatter_into(&mut scattered);
            assert_eq!(scattered, aos);
        }
    }

    #[test]
    fn fill_from_pixels_round_trips() {
        let pixels: Vec<Srgb8> = (0..19u8).map(|i| Srgb8::new(i, i + 1, i + 2)).collect();
        let mut lanes = SrgbTileLanes::new();
        lanes.fill_from_pixels(&pixels);
        assert_eq!(lanes.channel(1)[3], 4);
        let mut back = Vec::new();
        lanes.scatter_into(&mut back);
        assert_eq!(back, pixels);
    }

    #[test]
    fn lane_buffers_reuse_capacity() {
        let d = Dimensions::new(16, 16);
        let f = checkerboard(d);
        let grid = TileGrid::new(d, 4);
        let mut lanes = SrgbTileLanes::new();
        for tile in grid.tiles() {
            f.tile_lanes_into(tile, &mut lanes);
        }
        let capacity = lanes.r.capacity();
        for tile in grid.tiles() {
            f.tile_lanes_into(tile, &mut lanes);
        }
        assert_eq!(lanes.r.capacity(), capacity);
    }
}
