//! Frame and tile infrastructure for the perceptual VR encoder.
//!
//! A VR frame is a dense 2-D grid of pixels. The framebuffer compression
//! pipeline operates on small square *tiles* (4×4 by default), so this crate
//! provides:
//!
//! * [`SrgbFrame`] / [`LinearFrame`] — owned frame buffers in the 8-bit sRGB
//!   encoding and in the linear working space, with conversions in the
//!   direction the hardware performs them,
//! * [`Dimensions`] — frame sizes, including the Quest 2 resolutions used in
//!   the paper's power evaluation,
//! * [`TileGrid`] / [`TileRect`] — tiling of a frame into fixed-size tiles
//!   (edge tiles are clipped), plus extraction and write-back of tile pixel
//!   blocks.
//!
//! # Examples
//!
//! ```
//! use pvc_frame::{Dimensions, SrgbFrame, TileGrid};
//! use pvc_color::Srgb8;
//!
//! let frame = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(10, 20, 30));
//! let grid = TileGrid::new(frame.dimensions(), 4);
//! assert_eq!(grid.tile_count(), 4);
//! for tile in grid.tiles() {
//!     let pixels = frame.tile_pixels(tile);
//!     assert_eq!(pixels.len(), 16);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod lanes;
pub mod tile;

pub use frame::{Dimensions, FrameError, LinearFrame, SrgbFrame};
pub use lanes::{LinearTileLanes, SrgbTileLanes};
pub use tile::{TileGrid, TileRect, Tiles, DEFAULT_TILE_SIZE};
