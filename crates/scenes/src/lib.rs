//! Procedural VR scene generation.
//!
//! The paper evaluates its encoder on six Unity VR scenes (office, fortnite,
//! skyline, dumbo, thai, monkey) taken from a prior color-perception study.
//! Those assets are not redistributable, so this crate generates synthetic
//! frames with matching *qualitative* characteristics (DESIGN.md,
//! substitution S2): the bright, green-dominated "fortnite" scene; the dark
//! "dumbo" and "monkey" scenes where artifacts are easiest to notice; the
//! high-contrast "skyline"; the smooth indoor "office"; and the warm,
//! textured "thai".
//!
//! Frames are rendered deterministically from a seed, support an animation
//! parameter (frame index) so multi-frame sequences can be produced, and are
//! rendered as stereo pairs (two side-by-side sub-frames with a small
//! parallax offset) exactly like the paper's per-eye frames.
//!
//! # Examples
//!
//! ```
//! use pvc_scenes::{SceneId, SceneRenderer, SceneConfig};
//! use pvc_frame::Dimensions;
//!
//! let config = SceneConfig::new(Dimensions::new(128, 64));
//! let renderer = SceneRenderer::new(SceneId::Fortnite, config);
//! let frame = renderer.render_srgb(0);
//! assert_eq!(frame.dimensions(), Dimensions::new(128, 64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise;
pub mod renderer;
pub mod statistics;

pub use noise::FractalNoise;
pub use renderer::{SceneConfig, SceneId, SceneRenderer};
pub use statistics::SceneStatistics;
