//! Simple image statistics used to validate scene characteristics.

use pvc_frame::LinearFrame;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a rendered frame.
///
/// Used by tests and by the experiment harness to confirm that each
/// synthetic scene has the qualitative character of its namesake in the
/// paper (bright/green fortnite, dark dumbo and monkey, busy skyline, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneStatistics {
    /// Mean relative luminance of the frame (0–1).
    pub mean_luminance: f64,
    /// Fraction of pixels whose green channel is the strict per-pixel
    /// maximum.
    pub green_dominant_fraction: f64,
    /// Mean absolute luminance difference between horizontally adjacent
    /// pixels; a cheap proxy for spatial detail.
    pub mean_local_contrast: f64,
}

impl SceneStatistics {
    /// Computes statistics over a linear-RGB frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has no pixels (frames always have at least one).
    pub fn of_linear(frame: &LinearFrame) -> Self {
        let pixels = frame.pixels();
        assert!(!pixels.is_empty(), "frame must contain pixels");
        let n = pixels.len() as f64;
        let mean_luminance = pixels.iter().map(|p| p.luminance()).sum::<f64>() / n;
        let green_dominant = pixels.iter().filter(|p| p.g > p.r && p.g > p.b).count() as f64 / n;

        let mut contrast_sum = 0.0;
        let mut contrast_count = 0usize;
        for y in 0..frame.height() {
            for x in 1..frame.width() {
                let a = frame.pixel(x - 1, y).luminance();
                let b = frame.pixel(x, y).luminance();
                contrast_sum += (a - b).abs();
                contrast_count += 1;
            }
        }
        let mean_local_contrast = if contrast_count == 0 {
            0.0
        } else {
            contrast_sum / contrast_count as f64
        };

        SceneStatistics {
            mean_luminance,
            green_dominant_fraction: green_dominant,
            mean_local_contrast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::LinearRgb;
    use pvc_frame::Dimensions;

    #[test]
    fn flat_frame_statistics() {
        let frame = LinearFrame::filled(Dimensions::new(8, 8), LinearRgb::new(0.2, 0.6, 0.1));
        let stats = SceneStatistics::of_linear(&frame);
        assert!((stats.mean_luminance - LinearRgb::new(0.2, 0.6, 0.1).luminance()).abs() < 1e-12);
        assert_eq!(stats.green_dominant_fraction, 1.0);
        assert_eq!(stats.mean_local_contrast, 0.0);
    }

    #[test]
    fn checkerboard_has_high_contrast() {
        let dims = Dimensions::new(16, 16);
        let mut frame = LinearFrame::filled(dims, LinearRgb::BLACK);
        for y in 0..16 {
            for x in 0..16 {
                if (x + y) % 2 == 0 {
                    frame.set_pixel(x, y, LinearRgb::WHITE);
                }
            }
        }
        let stats = SceneStatistics::of_linear(&frame);
        assert!(stats.mean_local_contrast > 0.9);
        assert!((stats.mean_luminance - 0.5).abs() < 0.01);
        assert_eq!(stats.green_dominant_fraction, 0.0);
    }
}
