//! Deterministic value noise used by the scene generators.

use serde::{Deserialize, Serialize};

/// Fractal (multi-octave) value noise over a 2-D lattice.
///
/// Lattice values are derived from a seed with an integer hash, so the noise
/// field is fully deterministic and requires no stored tables.
///
/// # Examples
///
/// ```
/// use pvc_scenes::FractalNoise;
/// let noise = FractalNoise::new(42, 4, 0.5);
/// let v = noise.sample(1.5, 2.25, 8.0);
/// assert!((0.0..=1.0).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FractalNoise {
    seed: u64,
    octaves: u32,
    /// Per-octave amplitude falloff numerator of a rational persistence
    /// (stored ×1000 to keep the type `Eq`-friendly).
    persistence_milli: u32,
}

impl FractalNoise {
    /// Creates a noise field.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero or `persistence` is outside `(0, 1]`.
    pub fn new(seed: u64, octaves: u32, persistence: f64) -> Self {
        assert!(octaves > 0, "octave count must be non-zero");
        assert!(
            persistence > 0.0 && persistence <= 1.0,
            "persistence must be in (0, 1]"
        );
        FractalNoise {
            seed,
            octaves,
            persistence_milli: (persistence * 1000.0).round() as u32,
        }
    }

    /// Samples the fractal noise at `(x, y)`, where `scale` is the base
    /// lattice frequency (larger → finer detail). The result is in `[0, 1]`.
    pub fn sample(&self, x: f64, y: f64, scale: f64) -> f64 {
        let persistence = f64::from(self.persistence_milli) / 1000.0;
        let mut amplitude = 1.0;
        let mut frequency = scale;
        let mut total = 0.0;
        let mut max_total = 0.0;
        for octave in 0..self.octaves {
            total += amplitude * self.lattice_sample(x * frequency, y * frequency, octave);
            max_total += amplitude;
            amplitude *= persistence;
            frequency *= 2.0;
        }
        (total / max_total).clamp(0.0, 1.0)
    }

    fn lattice_sample(&self, x: f64, y: f64, octave: u32) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = smoothstep(x - x0);
        let fy = smoothstep(y - y0);
        let x0 = x0 as i64;
        let y0 = y0 as i64;
        let v00 = self.lattice_value(x0, y0, octave);
        let v10 = self.lattice_value(x0 + 1, y0, octave);
        let v01 = self.lattice_value(x0, y0 + 1, octave);
        let v11 = self.lattice_value(x0 + 1, y0 + 1, octave);
        let top = v00 + (v10 - v00) * fx;
        let bottom = v01 + (v11 - v01) * fx;
        top + (bottom - top) * fy
    }

    fn lattice_value(&self, x: i64, y: i64, octave: u32) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        h = splitmix(h ^ (x as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        h = splitmix(h ^ (y as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        h = splitmix(h ^ u64::from(octave).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_unit_range() {
        let noise = FractalNoise::new(7, 5, 0.5);
        for i in 0..200 {
            let x = f64::from(i) * 0.37;
            let y = f64::from(i) * 0.91;
            let v = noise.sample(x, y, 4.0);
            assert!((0.0..=1.0).contains(&v), "sample {v} out of range");
        }
    }

    #[test]
    fn noise_is_deterministic_for_a_seed() {
        let a = FractalNoise::new(123, 4, 0.6);
        let b = FractalNoise::new(123, 4, 0.6);
        assert_eq!(a.sample(3.2, 1.1, 8.0), b.sample(3.2, 1.1, 8.0));
    }

    #[test]
    fn different_seeds_give_different_fields() {
        let a = FractalNoise::new(1, 4, 0.5);
        let b = FractalNoise::new(2, 4, 0.5);
        let differing = (0..50)
            .filter(|&i| {
                let x = f64::from(i) * 0.71;
                (a.sample(x, x, 6.0) - b.sample(x, x, 6.0)).abs() > 1e-6
            })
            .count();
        assert!(differing > 40);
    }

    #[test]
    fn noise_is_smooth_at_fine_steps() {
        let noise = FractalNoise::new(9, 3, 0.5);
        let mut max_step: f64 = 0.0;
        let mut prev = noise.sample(0.0, 0.5, 2.0);
        for i in 1..500 {
            let v = noise.sample(f64::from(i) * 0.002, 0.5, 2.0);
            max_step = max_step.max((v - prev).abs());
            prev = v;
        }
        assert!(
            max_step < 0.05,
            "noise jumps by {max_step} between close samples"
        );
    }

    #[test]
    #[should_panic]
    fn zero_octaves_panics() {
        let _ = FractalNoise::new(1, 0, 0.5);
    }

    #[test]
    #[should_panic]
    fn invalid_persistence_panics() {
        let _ = FractalNoise::new(1, 3, 1.5);
    }
}
