//! The six synthetic VR scenes and their renderer.

use crate::noise::FractalNoise;
use pvc_color::LinearRgb;
use pvc_frame::{Dimensions, LinearFrame, SrgbFrame};
use serde::{Deserialize, Serialize};

/// Identifier of one of the six evaluation scenes.
///
/// The names follow the paper's Fig. 10–15 so results can be compared
/// side by side; the content is synthetic (DESIGN.md, substitution S2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneId {
    /// Smooth indoor office: mid luminance, large flat surfaces.
    Office,
    /// Bright, saturated outdoor scene dominated by greens.
    Fortnite,
    /// High-contrast city skyline with fine structure.
    Skyline,
    /// Dark night-time scene with sparse lights.
    Dumbo,
    /// Warm, textured temple interior.
    Thai,
    /// Dark, densely textured jungle scene.
    Monkey,
}

impl SceneId {
    /// All six scenes in the order the paper plots them.
    pub const ALL: [SceneId; 6] = [
        SceneId::Office,
        SceneId::Fortnite,
        SceneId::Skyline,
        SceneId::Dumbo,
        SceneId::Thai,
        SceneId::Monkey,
    ];

    /// The scene at `index` modulo the catalogue size, in [`Self::ALL`]
    /// order. Multi-session workloads use this to deal distinct scene
    /// content to an arbitrary number of concurrent sessions.
    pub fn by_index(index: usize) -> SceneId {
        SceneId::ALL[index % SceneId::ALL.len()]
    }

    /// Lower-case scene name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Office => "office",
            SceneId::Fortnite => "fortnite",
            SceneId::Skyline => "skyline",
            SceneId::Dumbo => "dumbo",
            SceneId::Thai => "thai",
            SceneId::Monkey => "monkey",
        }
    }

    /// True for the scenes the paper characterizes as dark (dumbo, monkey).
    pub fn is_dark(self) -> bool {
        matches!(self, SceneId::Dumbo | SceneId::Monkey)
    }

    /// Per-scene base RNG seed so every scene has distinct content.
    fn seed(self) -> u64 {
        match self {
            SceneId::Office => 0x0FF1CE,
            SceneId::Fortnite => 0xF047,
            SceneId::Skyline => 0x5C71,
            SceneId::Dumbo => 0xD0B0,
            SceneId::Thai => 0x7A41,
            SceneId::Monkey => 0x303C,
        }
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SceneId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SceneId::ALL
            .into_iter()
            .find(|id| id.name() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown scene '{s}'"))
    }
}

/// Configuration of a scene rendering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Full frame dimensions (both eyes when `stereo` is true).
    pub dimensions: Dimensions,
    /// Whether to render two side-by-side per-eye sub-frames.
    pub stereo: bool,
    /// Extra seed mixed into the scene's own seed, for generating
    /// independent sequences.
    pub seed: u64,
}

impl SceneConfig {
    /// Creates a monoscopic configuration of the given size.
    pub fn new(dimensions: Dimensions) -> Self {
        SceneConfig {
            dimensions,
            stereo: false,
            seed: 0,
        }
    }

    /// Creates a stereo configuration (two per-eye sub-frames side by side).
    ///
    /// # Panics
    ///
    /// Panics if the width is odd.
    pub fn stereo(dimensions: Dimensions) -> Self {
        assert!(
            dimensions.width % 2 == 0,
            "stereo frames need an even width"
        );
        SceneConfig {
            dimensions,
            stereo: true,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Renders frames of one synthetic scene.
///
/// # Examples
///
/// ```
/// use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};
/// use pvc_frame::Dimensions;
/// let renderer = SceneRenderer::new(SceneId::Office, SceneConfig::new(Dimensions::new(64, 32)));
/// let a = renderer.render_srgb(0);
/// let b = renderer.render_srgb(1);
/// assert_ne!(a, b, "animation must change the frame");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneRenderer {
    scene: SceneId,
    config: SceneConfig,
}

impl SceneRenderer {
    /// Creates a renderer for a scene.
    pub fn new(scene: SceneId, config: SceneConfig) -> Self {
        SceneRenderer { scene, config }
    }

    /// The scene being rendered.
    pub fn scene(&self) -> SceneId {
        self.scene
    }

    /// The rendering configuration.
    pub fn config(&self) -> SceneConfig {
        self.config
    }

    /// Renders frame `index` of the animation in linear RGB.
    pub fn render_linear(&self, index: u32) -> LinearFrame {
        let mut frame = LinearFrame::filled(self.config.dimensions, LinearRgb::BLACK);
        self.render_linear_into(index, &mut frame);
        frame
    }

    /// Renders frame `index` into a caller-provided frame, resizing it to
    /// the renderer's dimensions and overwriting every pixel.
    ///
    /// Bit-identical to [`Self::render_linear`]; the buffer's capacity is
    /// reused, so a producer recycling frames through a pool renders
    /// without per-frame allocation.
    pub fn render_linear_into(&self, index: u32, frame: &mut LinearFrame) {
        let dims = self.config.dimensions;
        // The loop below overwrites every pixel, so the fill only matters
        // when the buffer changes size — skipping it otherwise saves a
        // full-frame memset per recycled frame.
        if frame.dimensions() != dims {
            frame.reset(dims, LinearRgb::BLACK);
        }
        let noise = FractalNoise::new(self.scene.seed() ^ self.config.seed, 4, 0.55);
        let detail = FractalNoise::new(
            (self.scene.seed() ^ self.config.seed).wrapping_mul(0x2545_F491_4F6C_DD1D),
            5,
            0.5,
        );
        let time = f64::from(index) * 0.06;
        let eye_width = if self.config.stereo {
            dims.width / 2
        } else {
            dims.width
        };
        for y in 0..dims.height {
            for x in 0..dims.width {
                // Per-eye coordinates normalized to [0, 1]; the right eye is
                // shifted slightly to mimic stereo parallax.
                let (ex, parallax) = if self.config.stereo && x >= eye_width {
                    (x - eye_width, 0.012)
                } else {
                    (x, 0.0)
                };
                let u = (f64::from(ex) + 0.5) / f64::from(eye_width) + parallax + time * 0.05;
                let v = (f64::from(y) + 0.5) / f64::from(dims.height);
                let color = self.shade(u, v, time, &noise, &detail);
                frame.set_pixel(x, y, color.clamped());
            }
        }
    }

    /// Renders frame `index` and gamma-encodes it to 8-bit sRGB (what the
    /// framebuffer would hold).
    pub fn render_srgb(&self, index: u32) -> SrgbFrame {
        self.render_linear(index).to_srgb()
    }

    fn shade(
        &self,
        u: f64,
        v: f64,
        time: f64,
        noise: &FractalNoise,
        detail: &FractalNoise,
    ) -> LinearRgb {
        match self.scene {
            SceneId::Office => shade_office(u, v, noise, detail),
            SceneId::Fortnite => shade_fortnite(u, v, time, noise, detail),
            SceneId::Skyline => shade_skyline(u, v, noise, detail),
            SceneId::Dumbo => shade_dumbo(u, v, time, noise, detail),
            SceneId::Thai => shade_thai(u, v, noise, detail),
            SceneId::Monkey => shade_monkey(u, v, noise, detail),
        }
    }
}

fn mix(a: LinearRgb, b: LinearRgb, t: f64) -> LinearRgb {
    a.lerp(b, t.clamp(0.0, 1.0))
}

fn shade_office(u: f64, v: f64, noise: &FractalNoise, detail: &FractalNoise) -> LinearRgb {
    // Smooth beige walls with a darker floor, a window and a desk rectangle.
    let wall = LinearRgb::new(0.55, 0.5, 0.42);
    let floor = LinearRgb::new(0.28, 0.22, 0.18);
    let mut color = mix(wall, floor, ((v - 0.62) * 8.0).clamp(0.0, 1.0));
    // Window: a bright rectangle on the left wall.
    if (0.08..0.3).contains(&u) && (0.12..0.45).contains(&v) {
        let sky = LinearRgb::new(0.65, 0.75, 0.9);
        color = mix(color, sky, 0.9);
    }
    // Desk and monitor: darker rectangles with a slightly emissive screen.
    if (0.45..0.85).contains(&u) && (0.55..0.62).contains(&v) {
        color = LinearRgb::new(0.32, 0.2, 0.12);
    }
    if (0.55..0.72).contains(&u) && (0.35..0.52).contains(&v) {
        color = LinearRgb::new(0.12, 0.2, 0.3);
        color = mix(
            color,
            LinearRgb::new(0.3, 0.5, 0.7),
            detail.sample(u, v, 24.0) * 0.4,
        );
    }
    // Gentle ambient-occlusion-like shading and very mild texture.
    let shade = 0.92 + 0.08 * noise.sample(u, v, 3.0);
    LinearRgb::new(color.r * shade, color.g * shade, color.b * shade)
}

fn shade_fortnite(
    u: f64,
    v: f64,
    time: f64,
    noise: &FractalNoise,
    detail: &FractalNoise,
) -> LinearRgb {
    // Bright sky over rolling green terrain with saturated foliage.
    let sky_top = LinearRgb::new(0.35, 0.6, 0.95);
    let sky_bottom = LinearRgb::new(0.75, 0.85, 0.98);
    let horizon = 0.42 + 0.04 * noise.sample(u * 0.5 + time * 0.02, 0.3, 3.0);
    if v < horizon {
        let t = (v / horizon).clamp(0.0, 1.0);
        let mut sky = mix(sky_top, sky_bottom, t);
        // Puffy clouds.
        let cloud = noise.sample(u + time * 0.1, v * 2.0, 5.0);
        if cloud > 0.62 {
            sky = mix(sky, LinearRgb::new(0.95, 0.96, 0.98), (cloud - 0.62) * 2.2);
        }
        sky
    } else {
        let grass = LinearRgb::new(0.18, 0.62, 0.16);
        let meadow = LinearRgb::new(0.32, 0.72, 0.2);
        let blend = noise.sample(u * 2.0, v * 2.0, 6.0);
        let mut ground = mix(grass, meadow, blend);
        // Tree canopies: saturated dark green blobs.
        let canopy = detail.sample(u * 1.5, v * 1.5, 10.0);
        if canopy > 0.6 {
            ground = mix(ground, LinearRgb::new(0.08, 0.4, 0.1), (canopy - 0.6) * 2.0);
        }
        // Keep the scene bright overall.
        let sun = 0.9 + 0.1 * (1.0 - v);
        LinearRgb::new(ground.r * sun, ground.g * sun, ground.b * sun)
    }
}

fn shade_skyline(u: f64, v: f64, noise: &FractalNoise, detail: &FractalNoise) -> LinearRgb {
    // Dusk sky behind high-contrast building silhouettes with lit windows.
    let sky_top = LinearRgb::new(0.18, 0.2, 0.45);
    let sky_low = LinearRgb::new(0.85, 0.45, 0.25);
    let sky = mix(sky_top, sky_low, v.powf(1.5));
    // Building height field: blocky function of u.
    let column = (u * 14.0).floor();
    let building_height = 0.35 + 0.45 * noise.sample(column * 0.173 + 0.31, 0.5, 1.0);
    if v > building_height {
        // Facade: dark with bright window speckles (high-frequency detail).
        let mut facade = LinearRgb::new(0.05, 0.05, 0.08);
        let wx = (u * 140.0).floor();
        let wy = (v * 90.0).floor();
        let window = detail.sample(wx * 0.37, wy * 0.73, 1.0);
        if window > 0.78 {
            facade = LinearRgb::new(0.9, 0.8, 0.45);
        } else if window > 0.7 {
            facade = LinearRgb::new(0.35, 0.3, 0.2);
        }
        facade
    } else {
        sky
    }
}

fn shade_dumbo(
    u: f64,
    v: f64,
    time: f64,
    noise: &FractalNoise,
    detail: &FractalNoise,
) -> LinearRgb {
    // Dark night-time street under a bridge: low luminance, sparse lights.
    let night = LinearRgb::new(0.012, 0.015, 0.03);
    // Bridge deck: a very dark band across the top; street below with faint
    // reflections.
    let mut color = if v < 0.3 {
        let deck = LinearRgb::new(0.02, 0.018, 0.02);
        mix(
            deck,
            LinearRgb::new(0.05, 0.045, 0.05),
            noise.sample(u * 2.0, v * 4.0, 8.0),
        )
    } else {
        let street = LinearRgb::new(0.03, 0.03, 0.045);
        let base = mix(night, street, ((v - 0.3) * 2.0).clamp(0.0, 1.0));
        mix(
            base,
            LinearRgb::new(0.06, 0.05, 0.07),
            detail.sample(u * 3.0, v * 3.0, 12.0) * 0.5,
        )
    };
    // Street lamps: small warm glows that drift slightly over time.
    for lamp in 0..4 {
        let lx = 0.15 + 0.23 * f64::from(lamp) + 0.01 * (time + f64::from(lamp)).sin();
        let ly = 0.42;
        let d2 = (u - lx).powi(2) + (v - ly).powi(2);
        let glow = (-d2 * 800.0).exp();
        color = mix(color, LinearRgb::new(0.85, 0.6, 0.3), glow * 0.9);
    }
    color
}

fn shade_thai(u: f64, v: f64, noise: &FractalNoise, detail: &FractalNoise) -> LinearRgb {
    // Warm temple interior: gold and red ornamented surfaces, medium-high
    // spatial detail.
    let wall = LinearRgb::new(0.5, 0.22, 0.1);
    let gold = LinearRgb::new(0.75, 0.55, 0.18);
    let ornament = detail.sample(u * 3.0, v * 3.0, 18.0);
    let mut color = mix(wall, gold, (ornament - 0.35) * 1.6);
    // Pillars: vertical bright bands.
    let pillar = ((u * 6.0).fract() - 0.5).abs();
    if pillar < 0.12 {
        color = mix(color, LinearRgb::new(0.8, 0.62, 0.3), 0.7);
    }
    // Ceiling shadow gradient and candle-like warmth near the floor.
    let shade = 0.55 + 0.45 * noise.sample(u, v, 3.0);
    let warmth = 1.0 + 0.2 * (1.0 - v);
    LinearRgb::new(
        color.r * shade * warmth,
        color.g * shade,
        color.b * shade * 0.9,
    )
}

fn shade_monkey(u: f64, v: f64, noise: &FractalNoise, detail: &FractalNoise) -> LinearRgb {
    // Dark jungle: dense foliage texture at low luminance.
    let canopy_dark = LinearRgb::new(0.01, 0.03, 0.012);
    let canopy_mid = LinearRgb::new(0.03, 0.09, 0.03);
    let leaves = detail.sample(u * 2.5, v * 2.5, 16.0);
    let mut color = mix(canopy_dark, canopy_mid, leaves);
    // Occasional shafts of moonlight.
    let shaft = noise.sample(u * 1.2, 0.4, 2.0);
    if shaft > 0.72 {
        let strength = (shaft - 0.72) * 1.5 * (1.0 - v);
        color = mix(color, LinearRgb::new(0.12, 0.18, 0.14), strength);
    }
    // Ground mist near the bottom.
    if v > 0.8 {
        color = mix(color, LinearRgb::new(0.05, 0.07, 0.06), (v - 0.8) * 2.0);
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statistics::SceneStatistics;

    fn small_config() -> SceneConfig {
        SceneConfig::new(Dimensions::new(96, 64))
    }

    #[test]
    fn scene_names_roundtrip_through_fromstr() {
        for scene in SceneId::ALL {
            let parsed: SceneId = scene.name().parse().expect("parse scene name");
            assert_eq!(parsed, scene);
        }
        assert!("nonexistent".parse::<SceneId>().is_err());
    }

    #[test]
    fn by_index_cycles_through_the_catalogue() {
        assert_eq!(SceneId::by_index(0), SceneId::Office);
        assert_eq!(SceneId::by_index(5), SceneId::Monkey);
        assert_eq!(SceneId::by_index(6), SceneId::Office);
        for i in 0..SceneId::ALL.len() {
            assert_eq!(SceneId::by_index(i), SceneId::ALL[i]);
            assert_eq!(SceneId::by_index(i + SceneId::ALL.len()), SceneId::ALL[i]);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = SceneRenderer::new(SceneId::Skyline, small_config());
        assert_eq!(r.render_srgb(3), r.render_srgb(3));
    }

    #[test]
    fn render_into_a_recycled_buffer_matches_a_fresh_render() {
        // The frame pool hands producers buffers of arbitrary prior size
        // and content; rendering into them must be bit-identical to a
        // fresh render.
        let r = SceneRenderer::new(SceneId::Thai, small_config());
        let mut recycled =
            LinearFrame::filled(Dimensions::new(7, 3), LinearRgb::new(0.9, 0.1, 0.5));
        for index in [0, 4] {
            r.render_linear_into(index, &mut recycled);
            assert_eq!(recycled, r.render_linear(index));
        }
    }

    #[test]
    fn different_scenes_produce_different_frames() {
        let a = SceneRenderer::new(SceneId::Office, small_config()).render_srgb(0);
        let b = SceneRenderer::new(SceneId::Thai, small_config()).render_srgb(0);
        assert_ne!(a, b);
    }

    #[test]
    fn animation_changes_the_frame() {
        let r = SceneRenderer::new(SceneId::Dumbo, small_config());
        assert_ne!(r.render_srgb(0), r.render_srgb(5));
    }

    #[test]
    fn fortnite_is_bright_and_green() {
        let frame = SceneRenderer::new(SceneId::Fortnite, small_config()).render_linear(0);
        let stats = SceneStatistics::of_linear(&frame);
        assert!(
            stats.mean_luminance > 0.25,
            "luminance {}",
            stats.mean_luminance
        );
        assert!(
            stats.green_dominant_fraction > 0.4,
            "green {}",
            stats.green_dominant_fraction
        );
    }

    #[test]
    fn dark_scenes_are_dark() {
        for scene in [SceneId::Dumbo, SceneId::Monkey] {
            let frame = SceneRenderer::new(scene, small_config()).render_linear(0);
            let stats = SceneStatistics::of_linear(&frame);
            assert!(
                stats.mean_luminance < 0.1,
                "{scene}: {}",
                stats.mean_luminance
            );
            assert!(scene.is_dark());
        }
        assert!(!SceneId::Office.is_dark());
    }

    #[test]
    fn office_is_smoother_than_skyline() {
        let office = SceneRenderer::new(SceneId::Office, small_config()).render_linear(0);
        let skyline = SceneRenderer::new(SceneId::Skyline, small_config()).render_linear(0);
        let o = SceneStatistics::of_linear(&office);
        let s = SceneStatistics::of_linear(&skyline);
        assert!(o.mean_local_contrast < s.mean_local_contrast);
    }

    #[test]
    fn stereo_halves_differ_only_slightly() {
        let dims = Dimensions::new(128, 64);
        let frame = SceneRenderer::new(SceneId::Office, SceneConfig::stereo(dims)).render_linear(0);
        // Compare a pixel in the left half with its partner in the right half:
        // the parallax shift keeps them close but not identical everywhere.
        let mut identical = 0;
        let mut total = 0;
        for y in (0..64).step_by(8) {
            for x in (0..64).step_by(8) {
                let l = frame.pixel(x, y);
                let r = frame.pixel(x + 64, y);
                if l.max_channel_distance(r) < 1e-9 {
                    identical += 1;
                }
                total += 1;
            }
        }
        assert!(
            identical < total,
            "stereo halves must not be pixel-identical"
        );
    }

    #[test]
    fn all_scenes_render_in_gamut() {
        for scene in SceneId::ALL {
            let frame = SceneRenderer::new(scene, small_config()).render_linear(0);
            assert!(
                frame.pixels().iter().all(|p| p.in_gamut(1e-9)),
                "{scene} out of gamut"
            );
        }
    }

    #[test]
    fn seeded_configs_differ() {
        let base = SceneRenderer::new(SceneId::Monkey, small_config()).render_srgb(0);
        let seeded =
            SceneRenderer::new(SceneId::Monkey, small_config().with_seed(99)).render_srgb(0);
        assert_ne!(base, seeded);
    }
}
