//! Trace export shared by the stream binaries: the per-stage latency
//! table printed after a run, the `trace` section of `--json`, and the
//! Chrome trace-event document written under `--trace PATH`.
//!
//! The Chrome document follows the trace-event JSON format (load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>): one *process* per
//! shard (producer thread `tid 0`, worker thread `tid 1`), one process
//! for the runtime's control plane, and one for the decode-side clients.
//! Pipeline stages are `ph: "X"` complete events; admit/retire/cancel
//! are global `ph: "i"` instants. Timestamps are microseconds since the
//! run's trace epoch.

use crate::json::{object, Json};
use pvc_stream::ResolutionTier;
use pvc_trace::{
    EventKind, Lane, LatencyHistogram, Stage, ThreadTrace, TraceReport, TIER_CLASS_COUNT,
};

/// Stable label for a tier-class row: the [`ResolutionTier::ALL`] tier
/// names for the leading classes, `"other"` for the catch-all.
pub fn class_label(class: u8) -> &'static str {
    ResolutionTier::ALL
        .get(class as usize)
        .map_or("other", |tier| tier.name())
}

fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1000.0
}

/// Shards with producer/worker threads in the report; the control and
/// client processes get the pids just above.
fn worker_shards(report: &TraceReport) -> usize {
    report
        .threads
        .iter()
        .filter(|thread| matches!(thread.lane, Lane::Producer | Lane::Worker))
        .map(|thread| thread.shard + 1)
        .max()
        .unwrap_or(0)
}

/// The Chrome `(pid, tid)` lane a thread renders into.
fn pid_tid(thread: &ThreadTrace, shards: usize) -> (u64, u64) {
    match thread.lane {
        Lane::Producer => (thread.shard as u64, 0),
        Lane::Worker => (thread.shard as u64, 1),
        Lane::Control => (shards as u64, 0),
        // Clients carry their replay index in `shard`; it becomes the
        // tid inside one shared "clients" process.
        Lane::Client => (shards as u64 + 1, thread.shard as u64),
    }
}

fn metadata_event(name: &str, pid: u64, tid: u64, value: &str) -> Json {
    object([
        ("ph", "M".into()),
        ("name", name.into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("args", object([("name", value.into())])),
    ])
}

/// Builds the Chrome trace-event JSON document for a run's trace.
pub fn chrome_trace_json(report: &TraceReport) -> Json {
    let shards = worker_shards(report);
    let mut events: Vec<Json> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for thread in &report.threads {
        let (pid, tid) = pid_tid(thread, shards);
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let process = match thread.lane {
                Lane::Producer | Lane::Worker => format!("shard {}", thread.shard),
                Lane::Control => "control".to_string(),
                Lane::Client => "clients".to_string(),
            };
            events.push(metadata_event("process_name", pid, 0, &process));
        }
        let label = match thread.lane {
            Lane::Client => format!("client {}", thread.shard),
            lane => lane.name().to_string(),
        };
        events.push(metadata_event("thread_name", pid, tid, &label));
        for event in &thread.events {
            events.push(match event.kind {
                EventKind::Span(stage) => object([
                    ("name", stage.name().into()),
                    ("cat", thread.lane.name().into()),
                    ("ph", "X".into()),
                    ("pid", pid.into()),
                    ("tid", tid.into()),
                    ("ts", micros(event.start_nanos).into()),
                    ("dur", micros(event.duration_nanos).into()),
                    (
                        "args",
                        object([
                            ("session", event.session.into()),
                            ("tier", class_label(event.class).into()),
                            ("frame", u64::from(event.frame).into()),
                        ]),
                    ),
                ]),
                EventKind::Mark(marker) => object([
                    ("name", marker.name().into()),
                    ("cat", thread.lane.name().into()),
                    ("ph", "i".into()),
                    ("s", "g".into()),
                    ("pid", pid.into()),
                    ("tid", tid.into()),
                    ("ts", micros(event.start_nanos).into()),
                    (
                        "args",
                        object([
                            ("session", event.session.into()),
                            ("tier", class_label(event.class).into()),
                        ]),
                    ),
                ]),
            });
        }
    }
    object([("traceEvents", Json::Array(events))])
}

fn stage_cell_json(stage: Stage, tier: &str, histogram: &LatencyHistogram) -> Json {
    object([
        ("stage", stage.name().into()),
        ("tier", tier.into()),
        ("count", histogram.count().into()),
        ("p50_us", micros(histogram.p50().unwrap_or(0)).into()),
        ("p90_us", micros(histogram.p90().unwrap_or(0)).into()),
        ("p99_us", micros(histogram.p99().unwrap_or(0)).into()),
        ("max_us", micros(histogram.max_nanos().unwrap_or(0)).into()),
        (
            "mean_us",
            (histogram.mean_nanos().unwrap_or(0.0) / 1000.0).into(),
        ),
    ])
}

/// The `trace` section of the benches' `--json` document: event totals
/// plus one row per non-empty `(stage, tier)` histogram cell.
pub fn trace_section_json(report: &TraceReport) -> Json {
    let mut stages: Vec<Json> = Vec::new();
    for &stage in Stage::ALL.iter() {
        for class in 0..TIER_CLASS_COUNT as u8 {
            let histogram = report.class_stage_histogram(class, stage);
            if histogram.is_empty() {
                continue;
            }
            stages.push(stage_cell_json(stage, class_label(class), &histogram));
        }
    }
    object([
        ("events", report.total_events().into()),
        ("dropped", report.dropped_events().into()),
        ("threads", report.threads.len().into()),
        ("stages", Json::Array(stages)),
    ])
}

/// Prints the human-readable per-stage latency table (one row per stage,
/// merged over every tier class and thread; empty stages are skipped).
pub fn print_stage_table(report: &TraceReport) {
    println!(
        "\nstage latency (us): {} events traced, {} scrolled out of the rings",
        report.total_events(),
        report.dropped_events(),
    );
    println!("stage         count      p50      p90      p99      max     mean");
    for &stage in Stage::ALL.iter() {
        let histogram = report.stage_histogram(stage);
        if histogram.is_empty() {
            continue;
        }
        println!(
            "{:<12} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            stage.name(),
            histogram.count(),
            micros(histogram.p50().unwrap_or(0)),
            micros(histogram.p90().unwrap_or(0)),
            micros(histogram.p99().unwrap_or(0)),
            micros(histogram.max_nanos().unwrap_or(0)),
            histogram.mean_nanos().unwrap_or(0.0) / 1000.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_trace::{Marker, Recorder, TraceEpoch};

    fn sample_report() -> TraceReport {
        let epoch = TraceEpoch::now();
        let mut report = TraceReport::new(epoch);
        let mut producer = Recorder::new(epoch, 8);
        producer.span_nanos(Stage::Render, 0, 1, 0, 0, 2_000);
        report.threads.push(producer.into_thread(0, Lane::Producer));
        let mut worker = Recorder::new(epoch, 8);
        worker.span_nanos(Stage::BdEncode, 2, 1, 0, 2_500, 1_500);
        report.threads.push(worker.into_thread(0, Lane::Worker));
        let mut control = Recorder::new(epoch, 8);
        control.mark(Marker::Admit, 0, 1);
        report.threads.push(control.into_thread(1, Lane::Control));
        let mut client = Recorder::new(epoch, 8);
        client.span_nanos(Stage::Decode, 2, 1, 0, 5_000, 700);
        report.threads.push(client.into_thread(0, Lane::Client));
        report
    }

    #[test]
    fn class_labels_follow_the_tier_order() {
        assert_eq!(class_label(0), ResolutionTier::ALL[0].name());
        assert_eq!(class_label(pvc_trace::CLASS_OTHER), "other");
        assert_eq!(class_label(200), "other");
    }

    #[test]
    fn chrome_trace_covers_every_lane() {
        let rendered = chrome_trace_json(&sample_report()).render();
        for needle in [
            r#""traceEvents":["#,
            r#""name":"process_name""#,
            r#""name":"shard 0""#,
            r#""name":"control""#,
            r#""name":"clients""#,
            r#""name":"client 0""#,
            r#""name":"render","cat":"render","ph":"X","pid":0,"tid":0,"ts":0,"dur":2"#,
            r#""name":"bd_encode","cat":"encode","ph":"X","pid":0,"tid":1,"ts":2.5,"dur":1.5"#,
            r#""name":"decode","cat":"client","ph":"X","pid":2,"tid":0"#,
            r#""name":"admit","cat":"control","ph":"i","s":"g","pid":1,"tid":0"#,
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }

    #[test]
    fn trace_section_lists_only_non_empty_cells() {
        let report = sample_report();
        let rendered = trace_section_json(&report).render();
        assert!(rendered.contains(r#""events":4"#));
        assert!(rendered.contains(r#""dropped":0"#));
        assert!(rendered.contains(r#""threads":4"#));
        // Three span cells recorded: render (class 0), bd_encode and
        // decode (class 2). The marker is not a stage sample.
        assert!(rendered.contains(r#""stage":"render""#));
        assert!(rendered.contains(r#""stage":"bd_encode""#));
        assert!(rendered.contains(r#""stage":"decode""#));
        assert!(
            !rendered.contains(r#""stage":"gamma""#),
            "empty cells stay out"
        );
        assert!(rendered.contains(&format!(r#""tier":"{}""#, ResolutionTier::ALL[2].name())));
        assert!(
            rendered.contains(r#""p50_us":2"#),
            "render p50 in {rendered}"
        );
    }
}
