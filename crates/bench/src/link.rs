//! Decode-side replay shared by the stream binaries: run every session's
//! wire stream through a [`SessionClient`] and aggregate the delivery
//! quality per tier.
//!
//! When a `--link` scenario is active, the binaries collect each
//! session's framed wire stream, replay it here over the simulated link,
//! and report what the headsets actually displayed: on-time / late /
//! dropped frames, delivered FPS, goodput, and the PSNR of the shown
//! pixels against the (lossless) decoded reference. On a lossless link
//! every frame arrives on time and the PSNR is infinite — rendered as
//! `null` in the JSON, `inf` in the tables.

use crate::json::{object, Json};
use pvc_client::{ClientReport, LinkModel, SessionClient};
use pvc_metrics::DeliveryReport;
use pvc_stream::SessionReport;
use pvc_trace::{Lane, Recorder, ThreadTrace, TraceEpoch};

/// The decode-side view of a whole fleet: one [`ClientReport`] per
/// session plus per-tier and fleet-wide delivery aggregates.
pub struct LinkReplay {
    /// The link model the replay ran over.
    pub link: LinkModel,
    /// Per-session client reports, in the order the sessions were given.
    pub sessions: Vec<ClientReport>,
    /// Per-tier merged delivery accounting, `(tier name, sessions, merged)`.
    pub tiers: Vec<(String, usize, DeliveryReport)>,
    /// The whole fleet's merged delivery accounting.
    pub totals: DeliveryReport,
}

/// Replays every session's wire stream through a fresh [`SessionClient`]
/// on `link`.
///
/// # Panics
///
/// Panics when a session is missing its wire stream (the binary forgot
/// `with_collect_wire`) or ships a malformed stream — both are bugs, not
/// user errors.
pub fn replay_sessions(link: LinkModel, sessions: &[&SessionReport]) -> LinkReplay {
    run_replay(SessionClient::new(link), sessions).0
}

/// Like [`replay_sessions`], with the client recording decode spans (wall
/// time) and link-transit spans (the stream's virtual timeline) into a
/// trace sealed as one client thread (`shard` = replay index 0). Push the
/// returned [`ThreadTrace`] onto the run's `TraceReport` so the export
/// shows the decode side next to the serving threads.
///
/// # Panics
///
/// Same contract as [`replay_sessions`].
pub fn replay_sessions_traced(
    link: LinkModel,
    sessions: &[&SessionReport],
    epoch: TraceEpoch,
    ring_capacity: usize,
) -> (LinkReplay, ThreadTrace) {
    let client = SessionClient::new(link).with_trace(Recorder::new(epoch, ring_capacity));
    let (replay, mut client) = run_replay(client, sessions);
    let recorder = client.take_recorder().expect("recorder installed above");
    (replay, recorder.into_thread(0, Lane::Client))
}

fn run_replay(
    mut client: SessionClient,
    sessions: &[&SessionReport],
) -> (LinkReplay, SessionClient) {
    let link = *client.link();
    let mut reports = Vec::with_capacity(sessions.len());
    let mut tiers: Vec<(String, usize, DeliveryReport)> = Vec::new();
    let mut totals = DeliveryReport::default();
    for session in sessions {
        let wire = session
            .wire_stream
            .as_ref()
            .expect("link replay needs with_collect_wire(true)");
        let seen = client
            .consume(wire)
            .expect("worker-emitted wire streams are well-formed");
        totals.merge(&seen.delivery);
        let label = session.tier.name();
        match tiers.iter_mut().find(|(name, _, _)| name == label) {
            Some((_, count, merged)) => {
                *count += 1;
                merged.merge(&seen.delivery);
            }
            None => tiers.push((label.to_string(), 1, seen.delivery)),
        }
        reports.push(seen);
    }
    (
        LinkReplay {
            link,
            sessions: reports,
            tiers,
            totals,
        },
        client,
    )
}

/// Prints the human-readable link tables: per-session delivery, per-tier
/// aggregates, and the fleet-wide summary line.
pub fn print_replay(replay: &LinkReplay) {
    let link = &replay.link;
    println!(
        "\nlink replay: bandwidth {}, latency {} ms, drop probability {}",
        match link.bandwidth_mbits {
            Some(mbits) => format!("{mbits} Mbit/s"),
            None => "unlimited".to_string(),
        },
        link.latency_ms,
        link.drop_probability,
    );
    println!("session  tier       sent  on-time  late  dropped  fps   Mbit/s  PSNR dB");
    for seen in &replay.sessions {
        let d = &seen.delivery;
        println!(
            "{:>7}  {:<9} {:>5} {:>8} {:>5} {:>8} {:>5.1} {:>8.2} {:>8.1}",
            seen.header.session,
            seen.header.tier.name(),
            d.frames_sent,
            d.frames_delivered,
            d.frames_late,
            d.frames_dropped,
            d.delivered_fps(),
            d.goodput_mbits(),
            d.psnr_db(),
        );
    }
    println!("\ntier       sessions  sent  on-time  late  dropped  delivery  PSNR dB");
    for (label, count, merged) in &replay.tiers {
        println!(
            "{:<9} {:>9} {:>5} {:>8} {:>5} {:>8} {:>8.0}% {:>8.1}",
            label,
            count,
            merged.frames_sent,
            merged.frames_delivered,
            merged.frames_late,
            merged.frames_dropped,
            merged.delivery_rate() * 100.0,
            merged.psnr_db(),
        );
    }
    let totals = &replay.totals;
    println!(
        "\nfleet delivery: {}/{} frames on time ({:.0}%), {} late, {} dropped, \
         {:.2} Mbit/s goodput, displayed PSNR {:.1} dB",
        totals.frames_delivered,
        totals.frames_sent,
        totals.delivery_rate() * 100.0,
        totals.frames_late,
        totals.frames_dropped,
        totals.goodput_mbits(),
        totals.psnr_db(),
    );
}

fn delivery_json(delivery: &DeliveryReport) -> Json {
    object([
        ("frames_sent", delivery.frames_sent.into()),
        ("frames_delivered", delivery.frames_delivered.into()),
        ("frames_late", delivery.frames_late.into()),
        ("frames_dropped", delivery.frames_dropped.into()),
        ("bytes_sent", delivery.bytes_sent.into()),
        ("bytes_delivered", delivery.bytes_delivered.into()),
        ("blank_slots", delivery.blank_slots.into()),
        ("delivery_rate", delivery.delivery_rate().into()),
        ("delivered_fps", delivery.delivered_fps().into()),
        ("goodput_mbits", delivery.goodput_mbits().into()),
        // Infinite on a lossless link; the renderer turns that into null.
        ("psnr_db", delivery.psnr_db().into()),
    ])
}

/// The `link` section of the benches' `--json` document: the model
/// parameters plus fleet / per-tier / per-session delivery reports.
pub fn replay_json(replay: &LinkReplay) -> Json {
    let link = &replay.link;
    object([
        (
            "model",
            object([
                (
                    "bandwidth_mbits",
                    link.bandwidth_mbits.map_or(Json::Null, Json::F64),
                ),
                ("latency_ms", link.latency_ms.into()),
                ("drop_probability", link.drop_probability.into()),
                ("seed", link.seed.into()),
            ]),
        ),
        ("totals", delivery_json(&replay.totals)),
        (
            "tiers",
            Json::Array(
                replay
                    .tiers
                    .iter()
                    .map(|(label, count, merged)| {
                        object([
                            ("tier", label.as_str().into()),
                            ("sessions", (*count).into()),
                            ("delivery", delivery_json(merged)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sessions",
            Json::Array(
                replay
                    .sessions
                    .iter()
                    .map(|seen| {
                        object([
                            ("session", seen.header.session.into()),
                            ("tier", seen.header.tier.name().into()),
                            ("cancelled", seen.cancelled.into()),
                            ("delivery", delivery_json(&seen.delivery)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_frame::Dimensions;
    use pvc_stream::{ServiceConfig, StreamService, WorkloadMix};

    fn fleet() -> Vec<SessionReport> {
        let mut service = StreamService::new(ServiceConfig::default().with_collect_wire(true));
        service.admit_mixed(4, WorkloadMix::Bimodal, Dimensions::new(16, 16), 2);
        service.run().sessions
    }

    #[test]
    fn lossless_replay_delivers_everything() {
        let sessions = fleet();
        let refs: Vec<&SessionReport> = sessions.iter().collect();
        let replay = replay_sessions(LinkModel::lossless(), &refs);
        assert_eq!(replay.sessions.len(), 4);
        assert_eq!(replay.totals.frames_delivered, replay.totals.frames_sent);
        assert!(replay.totals.psnr_db().is_infinite());
        // Bimodal = alternating Quest-2 / Vision-class.
        assert_eq!(replay.tiers.len(), 2);
        let rendered = replay_json(&replay).render();
        assert!(
            rendered.contains(r#""psnr_db":null"#),
            "infinite PSNR renders as null"
        );
        assert!(rendered.contains(r#""bandwidth_mbits":null"#));
    }

    #[test]
    fn traced_replay_seals_a_client_thread_and_changes_nothing() {
        use pvc_trace::Stage;

        let sessions = fleet();
        let refs: Vec<&SessionReport> = sessions.iter().collect();
        let plain = replay_sessions(LinkModel::lossless(), &refs);
        let (replay, thread) =
            replay_sessions_traced(LinkModel::lossless(), &refs, TraceEpoch::now(), 64);
        assert_eq!(replay.totals, plain.totals, "tracing is observation only");
        assert_eq!(thread.lane, Lane::Client);
        assert_eq!(thread.shard, 0);
        assert_eq!(thread.dropped, 0);
        // Every consumed frame records one decode and one transit span.
        let frames = replay.totals.frames_sent;
        assert_eq!(thread.stages.stage_merged(Stage::Decode).count(), frames);
        assert_eq!(
            thread.stages.stage_merged(Stage::LinkTransit).count(),
            frames
        );
        assert_eq!(thread.events.len() as u64, 2 * frames);
    }

    #[test]
    fn starved_link_reports_misses() {
        let sessions = fleet();
        let refs: Vec<&SessionReport> = sessions.iter().collect();
        // A link so slow nothing meets its deadline.
        let replay = replay_sessions(
            LinkModel::lossless().with_bandwidth_mbits(Some(0.001)),
            &refs,
        );
        assert_eq!(replay.totals.frames_delivered, 0);
        assert_eq!(
            replay.totals.frames_late + replay.totals.frames_dropped,
            replay.totals.frames_sent
        );
        assert!(replay.totals.psnr_db().is_finite());
    }
}
