//! Experiment harness for the paper's evaluation section.
//!
//! Every table and figure of the paper has a corresponding generator here
//! (see DESIGN.md for the experiment index). The binaries under `src/bin/`
//! print the regenerated series and write CSV files under
//! `target/figures/`; the Criterion benches under `benches/` measure the
//! throughput of the underlying computations.
//!
//! The harness renders the six synthetic scenes at a configurable (per-eye)
//! resolution, runs the perceptual encoder and all baselines on the same
//! frames, and aggregates the results into the quantities the paper plots.
//!
//! # Examples
//!
//! ```
//! use pvc_bench::{measure_scene, ExperimentConfig};
//! use pvc_scenes::SceneId;
//!
//! let config = ExperimentConfig::quick();
//! let measurement = measure_scene(SceneId::Office, &config);
//! // The perceptual encoder always beats the plain BD baseline.
//! assert!(measurement.reduction_over_bd() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod harness;
pub mod json;
pub mod link;
pub mod report;
pub mod trace_export;

pub use figures::{
    fig10_bandwidth, fig11_bits_per_pixel, fig12_case_distribution, fig13_power_saving,
    fig14_user_study, fig15_tile_size, fig2_ellipsoids, tab_ablation, tab_area_power, tab_psnr,
    tab_scc, Figure,
};
pub use harness::{measure_all_scenes, measure_scene, ExperimentConfig, SceneMeasurement};
pub use report::{assert_session_rates, format_table, write_csv};
