//! Shared measurement harness: render a scene, run every codec on it.

use pvc_baselines::{nocom_stats, PngLikeCodec, SccCodec, SccConfig};
use pvc_bdc::CompressionStats;
use pvc_color::SyntheticDiscriminationModel;
use pvc_core::{AdjustmentStats, EncoderConfig, PerceptualEncoder};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::Dimensions;
use pvc_metrics::QualityReport;
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};
use serde::{Deserialize, Serialize};

/// Configuration shared by all experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Per-eye frame resolution the scenes are rendered at. The paper runs
    /// at headset resolution; the default here keeps the harness fast while
    /// preserving tile statistics (results are reported in bits per pixel,
    /// which is resolution-independent to first order).
    pub dimensions: Dimensions,
    /// Number of animation frames averaged per scene.
    pub frames: u32,
    /// Encoder configuration (tile size, foveal bypass, axes).
    pub encoder: EncoderConfig,
    /// Lattice resolution of the SCC baseline (bits per channel).
    pub scc_bits_per_channel: u8,
    /// Whether to run the (slow) SCC and PNG baselines.
    pub include_offline_baselines: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            dimensions: Dimensions::new(384, 384),
            frames: 2,
            encoder: EncoderConfig::default(),
            scc_bits_per_channel: 5,
            include_offline_baselines: true,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick runs and Criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            dimensions: Dimensions::new(128, 128),
            frames: 1,
            encoder: EncoderConfig::default(),
            scc_bits_per_channel: 4,
            include_offline_baselines: false,
        }
    }

    /// Returns a copy using a different tile size for both the encoder and
    /// the BD baseline (Fig. 15).
    pub fn with_tile_size(mut self, tile_size: u32) -> Self {
        self.encoder = self.encoder.with_tile_size(tile_size);
        self
    }
}

/// Everything measured for one scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneMeasurement {
    /// The scene.
    pub scene: SceneId,
    /// Uncompressed baseline.
    pub nocom: CompressionStats,
    /// Base+Delta baseline on the unadjusted frames.
    pub bd: CompressionStats,
    /// Our perceptual encoding (adjustment + BD).
    pub ours: CompressionStats,
    /// PNG-style lossless baseline (absent in quick configurations).
    pub png: Option<CompressionStats>,
    /// SCC baseline (absent in quick configurations).
    pub scc: Option<CompressionStats>,
    /// Per-tile adjustment statistics summed over the measured frames.
    pub cases: AdjustmentStats,
    /// Objective quality of the adjusted frames against the originals.
    pub quality: QualityReport,
}

impl SceneMeasurement {
    /// Bandwidth reduction of our scheme over the uncompressed frames, %.
    pub fn reduction_over_nocom(&self) -> f64 {
        self.ours.bandwidth_reduction_percent()
    }

    /// Bandwidth reduction of our scheme over the BD baseline, %.
    pub fn reduction_over_bd(&self) -> f64 {
        self.ours.reduction_over(&self.bd)
    }
}

fn merge_stats(total: &mut Option<CompressionStats>, new: CompressionStats) {
    *total = Some(match total.take() {
        None => new,
        Some(acc) => CompressionStats {
            pixel_count: acc.pixel_count + new.pixel_count,
            uncompressed_bits: acc.uncompressed_bits + new.uncompressed_bits,
            compressed_bits: acc.compressed_bits + new.compressed_bits,
            breakdown: acc.breakdown + new.breakdown,
        },
    });
}

/// Measures one scene under the given configuration.
pub fn measure_scene(scene: SceneId, config: &ExperimentConfig) -> SceneMeasurement {
    let renderer = SceneRenderer::new(scene, SceneConfig::new(config.dimensions));
    let display = DisplayGeometry::quest2_like(config.dimensions);
    let gaze = GazePoint::center_of(config.dimensions);
    let model = SyntheticDiscriminationModel::default();
    let encoder = PerceptualEncoder::new(model, config.encoder.clone());
    let scc = if config.include_offline_baselines {
        Some(SccCodec::build(
            &model,
            SccConfig::new(config.scc_bits_per_channel, 30.0),
        ))
    } else {
        None
    };
    let png = PngLikeCodec::new();

    let mut nocom_acc = None;
    let mut bd_acc = None;
    let mut ours_acc = None;
    let mut png_acc: Option<CompressionStats> = None;
    let mut scc_acc: Option<CompressionStats> = None;
    let mut cases = AdjustmentStats::default();
    let mut mse_sum = 0.0;
    let mut quality = None;

    for frame_index in 0..config.frames.max(1) {
        let linear = renderer.render_linear(frame_index);
        let result = encoder.encode_frame(&linear, &display, gaze);
        merge_stats(&mut nocom_acc, nocom_stats(config.dimensions));
        merge_stats(&mut bd_acc, result.bd_stats());
        merge_stats(&mut ours_acc, result.our_stats());
        if config.include_offline_baselines {
            merge_stats(&mut png_acc, png.encode(&result.original).stats());
            if let Some(scc) = &scc {
                merge_stats(&mut scc_acc, scc.frame_stats(&result.original));
            }
        }
        cases.merge(&result.stats);
        let q = QualityReport::compare(&result.original, &result.adjusted)
            .expect("frames share dimensions");
        mse_sum += q.mse;
        quality = Some(q);
    }

    let mut quality = quality.expect("at least one frame");
    // Report the mean MSE/PSNR across frames rather than the last frame's.
    quality.mse = mse_sum / f64::from(config.frames.max(1));
    quality.psnr_db = if quality.mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / quality.mse).log10()
    };

    SceneMeasurement {
        scene,
        nocom: nocom_acc.expect("measured"),
        bd: bd_acc.expect("measured"),
        ours: ours_acc.expect("measured"),
        png: png_acc,
        scc: scc_acc,
        cases,
        quality,
    }
}

/// Measures all six scenes.
pub fn measure_all_scenes(config: &ExperimentConfig) -> Vec<SceneMeasurement> {
    SceneId::ALL
        .iter()
        .map(|&scene| measure_scene(scene, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_consistent_numbers() {
        let config = ExperimentConfig::quick();
        let m = measure_scene(SceneId::Office, &config);
        assert_eq!(m.nocom.bandwidth_reduction_percent(), 0.0);
        assert!(m.reduction_over_nocom() > 0.0);
        assert!(m.reduction_over_bd() > 0.0);
        assert!(m.bd.bandwidth_reduction_percent() > 0.0);
        assert!(m.png.is_none());
        assert!(m.scc.is_none());
        assert_eq!(
            m.cases.total_tiles,
            (config.dimensions.pixel_count() / 16) * config.frames as usize
        );
        assert!(m.quality.psnr_db.is_finite());
    }

    #[test]
    fn offline_baselines_are_included_when_requested() {
        let config = ExperimentConfig {
            dimensions: Dimensions::new(96, 96),
            frames: 1,
            include_offline_baselines: true,
            scc_bits_per_channel: 4,
            ..ExperimentConfig::default()
        };
        let m = measure_scene(SceneId::Fortnite, &config);
        let png = m.png.expect("png baseline requested");
        let scc = m.scc.expect("scc baseline requested");
        assert!(png.compressed_bits > 0);
        // SCC uses a fixed number of bits per pixel, strictly fewer than 24.
        assert!(scc.bits_per_pixel() < 24.0);
        assert!(scc.bits_per_pixel() >= 1.0);
    }

    #[test]
    fn multiple_frames_accumulate_pixels() {
        let config = ExperimentConfig {
            frames: 2,
            ..ExperimentConfig::quick()
        };
        let m = measure_scene(SceneId::Dumbo, &config);
        assert_eq!(m.ours.pixel_count, config.dimensions.pixel_count() * 2);
    }
}
