//! Plain-text tables and CSV output for the figure binaries.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Formats a table with a header row and aligned columns.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header width");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Writes a CSV file under `target/figures/<name>.csv` (creating the
/// directory if needed) and returns the path written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = Path::new("target").join("figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Asserts the per-session telemetry contract the streaming binaries
/// print: any session that encoded frames must report real elapsed time
/// and therefore a non-zero frame rate. This is the regression guard for
/// the bug where `SessionReport.throughput.wall_seconds` was never
/// assigned and every per-session rate silently read 0.
///
/// # Panics
///
/// Panics when a session with frames reports zero wall-clock or FPS.
pub fn assert_session_rates(report: &pvc_stream::SessionReport) {
    assert!(
        report.throughput.frames == 0 || report.throughput.wall_seconds > 0.0,
        "session {} encoded {} frames in zero wall-clock seconds",
        report.session,
        report.throughput.frames,
    );
    assert!(
        report.throughput.frames == 0 || report.throughput.frames_per_second() > 0.0,
        "session {} reports zero frames/s",
        report.session,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = format_table(
            &["scene", "value"],
            &[
                vec!["office".to_string(), "1.0".to_string()],
                vec!["fortnite".to_string(), "2.5".to_string()],
            ],
        );
        assert!(table.contains("office"));
        assert!(table.contains("fortnite"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["only one".to_string()]]);
    }

    #[test]
    fn csv_files_are_written() {
        let path = write_csv(
            "unit_test_output",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()]],
        )
        .expect("csv written");
        let contents = std::fs::read_to_string(path).expect("read back");
        assert_eq!(contents, "a,b\n1,2\n");
    }
}
