//! Strict command-line parsing shared by the figure and stream binaries.
//!
//! Every binary accepts an optional `--quick` flag that switches to the
//! reduced experiment configuration (smaller frames, no offline
//! baselines). Parsing is *strict*: an unknown argument aborts with a
//! non-zero exit instead of being silently ignored, so a typo'd `--quikc`
//! can no longer launch a multi-minute full-scale run — the error comes
//! with a "did you mean" hint when a known argument is close.

use crate::figures::Figure;
use crate::harness::ExperimentConfig;

/// A parse failure, rendered to the user before a non-zero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The argument matches no known flag or option.
    Unknown {
        /// The offending argument as typed.
        arg: String,
        /// The closest known argument, when one is plausibly close.
        suggestion: Option<String>,
    },
    /// An option that takes a value appeared last with no value after it.
    MissingValue {
        /// The option missing its value.
        option: String,
    },
    /// An option's value failed to parse.
    InvalidValue {
        /// The option whose value is malformed.
        option: String,
        /// The value as typed.
        value: String,
    },
    /// Two given arguments contradict each other (e.g. pinning a shard
    /// count while also asking for autoscaling).
    Conflicting {
        /// The first argument as typed.
        first: String,
        /// The argument it cannot be combined with.
        second: String,
        /// Why the combination is contradictory.
        reason: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Unknown { arg, suggestion } => {
                write!(f, "unknown argument '{arg}'")?;
                if let Some(known) = suggestion {
                    write!(f, " (did you mean '{known}'?)")?;
                }
                Ok(())
            }
            CliError::MissingValue { option } => {
                write!(f, "option '{option}' requires a value")
            }
            CliError::InvalidValue { option, value } => {
                write!(f, "invalid value '{value}' for option '{option}'")
            }
            CliError::Conflicting {
                first,
                second,
                reason,
            } => {
                write!(f, "'{first}' conflicts with '{second}': {reason}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The arguments a binary understands: boolean `flags` and single-value
/// `options` (`--option VALUE`).
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Flags that take no value, e.g. `--quick`.
    pub flags: &'static [&'static str],
    /// Options that consume the following argument as their value.
    pub options: &'static [&'static str],
}

impl ArgSpec {
    /// Parses `args` (without the program name) against this spec.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] on the first unknown argument, option with a
    /// missing value, or malformed value.
    pub fn parse<I>(&self, args: I) -> Result<ParsedArgs, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if self.flags.contains(&arg.as_str()) {
                parsed.flags.push(arg);
            } else if self.options.contains(&arg.as_str()) {
                match iter.next() {
                    Some(value) => parsed.options.push((arg, value)),
                    None => return Err(CliError::MissingValue { option: arg }),
                }
            } else {
                let suggestion = self.did_you_mean(&arg);
                return Err(CliError::Unknown { arg, suggestion });
            }
        }
        Ok(parsed)
    }

    /// The known argument closest to `arg`, if close enough to plausibly
    /// be a typo (edit distance at most 3, ignoring dashes).
    fn did_you_mean(&self, arg: &str) -> Option<String> {
        let normalize = |s: &str| s.trim_start_matches('-').to_ascii_lowercase();
        let typed = normalize(arg);
        self.flags
            .iter()
            .chain(self.options)
            .map(|known| (levenshtein(&typed, &normalize(known)), *known))
            .filter(|(distance, _)| *distance <= 3)
            .min_by_key(|(distance, _)| *distance)
            .map(|(_, known)| known.to_string())
    }
}

/// Successfully parsed arguments.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    flags: Vec<String>,
    options: Vec<(String, String)>,
}

impl ParsedArgs {
    /// True when `flag` was given at least once.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The (last) value given for `option`, verbatim.
    pub fn value(&self, option: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(name, _)| name == option)
            .map(|(_, value)| value.as_str())
    }

    /// The (last) value given for `option`, parsed as a positive integer of
    /// the target width; parse failures — including values overflowing the
    /// target type — are errors, never silent truncations.
    fn positive<T>(&self, option: &str) -> Result<Option<T>, CliError>
    where
        T: std::str::FromStr + Default + PartialEq,
    {
        match self.value(option) {
            None => Ok(None),
            Some(raw) => match raw.parse::<T>() {
                Ok(n) if n != T::default() => Ok(Some(n)),
                _ => Err(CliError::InvalidValue {
                    option: option.to_string(),
                    value: raw.to_string(),
                }),
            },
        }
    }

    /// The (last) value given for `option`, parsed as a positive integer.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when the value is not a positive
    /// integer.
    pub fn positive_usize(&self, option: &str) -> Result<Option<usize>, CliError> {
        self.positive::<usize>(option)
    }

    /// Like [`Self::positive_usize`], but range-checked for `u32`-typed
    /// knobs (frame counts, pixel dimensions).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when the value is not a positive
    /// integer that fits in a `u32`.
    pub fn positive_u32(&self, option: &str) -> Result<Option<u32>, CliError> {
        self.positive::<u32>(option)
    }

    /// The (last) value given for `option`, parsed as a non-negative
    /// integer — for count knobs where `0` is a meaningful "off" value
    /// (e.g. `--hard-cancel 0`).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when the value is not a
    /// non-negative integer.
    pub fn non_negative_usize(&self, option: &str) -> Result<Option<usize>, CliError> {
        match self.value(option) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<usize>()
                .map(Some)
                .map_err(|_| CliError::InvalidValue {
                    option: option.to_string(),
                    value: raw.to_string(),
                }),
        }
    }

    /// The (last) value given for `option`, parsed as a finite
    /// non-negative float — for rate/time knobs such as `--latency-ms`
    /// or `--drop-prob`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when the value is not a finite
    /// non-negative number.
    pub fn non_negative_f64(&self, option: &str) -> Result<Option<f64>, CliError> {
        match self.value(option) {
            None => Ok(None),
            Some(raw) => match raw.parse::<f64>() {
                Ok(value) if value.is_finite() && value >= 0.0 => Ok(Some(value)),
                _ => Err(CliError::InvalidValue {
                    option: option.to_string(),
                    value: raw.to_string(),
                }),
            },
        }
    }

    /// The (last) value given for `option`, parsed as a `u64` (any value,
    /// including zero — used for seeds).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when the value is not an
    /// unsigned integer.
    pub fn u64_value(&self, option: &str) -> Result<Option<u64>, CliError> {
        match self.value(option) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::InvalidValue {
                    option: option.to_string(),
                    value: raw.to_string(),
                }),
        }
    }
}

/// Parses a `--placement` option into a session→shard policy: `static`
/// (modulo routing), `p2c` / `power-of-two-choices` (depth-aware),
/// `least-loaded` / `ll` (pixel-cost-aware — the right choice for
/// heterogeneous `--mix` workloads), or `predictive` (remaining-work-
/// aware — what the elastic controller's rebalancer assumes). `default`
/// applies when the option is absent.
///
/// # Errors
///
/// Returns [`CliError::InvalidValue`] for any other policy name.
pub fn placement_option(
    parsed: &ParsedArgs,
    default: &str,
) -> Result<Box<dyn pvc_stream::Placement>, CliError> {
    match parsed.value("--placement").unwrap_or(default) {
        "static" => Ok(Box::new(pvc_stream::Static)),
        "p2c" | "power-of-two-choices" => Ok(Box::new(pvc_stream::PowerOfTwoChoices::default())),
        "least-loaded" | "ll" => Ok(Box::new(pvc_stream::LeastLoaded)),
        "predictive" => Ok(Box::new(pvc_stream::Predictive)),
        other => Err(CliError::InvalidValue {
            option: "--placement".to_string(),
            value: other.to_string(),
        }),
    }
}

/// Parses a `--mix` option into a synthetic workload mix: `uniform`
/// (homogeneous Quest-2 fleet), `bimodal` (alternating Quest-2 /
/// Vision-class) or `heavy-tail` (mostly Quest-2 with Quest-Pro sessions
/// and a Vision-class whale per eight). `default` applies when the option
/// is absent.
///
/// # Errors
///
/// Returns [`CliError::InvalidValue`] for any other mix name.
pub fn mix_option(parsed: &ParsedArgs, default: &str) -> Result<pvc_stream::WorkloadMix, CliError> {
    let name = parsed.value("--mix").unwrap_or(default);
    pvc_stream::WorkloadMix::from_name(name).ok_or_else(|| CliError::InvalidValue {
        option: "--mix".to_string(),
        value: name.to_string(),
    })
}

/// Parses the link-simulation options into a [`pvc_client::LinkModel`],
/// or `None` when decode-side replay is off.
///
/// `--link none|lossless|capped` picks the preset (`none`, the default,
/// disables the replay entirely); `--bandwidth-mbits`, `--latency-ms`,
/// `--drop-prob` and `--link-seed` override individual parameters. Any
/// override given without `--link` turns the replay on, starting from the
/// lossless preset.
///
/// # Errors
///
/// Returns [`CliError::InvalidValue`] for an unknown preset name, a
/// non-finite/negative number, or a drop probability above 1.
pub fn link_option(parsed: &ParsedArgs) -> Result<Option<pvc_client::LinkModel>, CliError> {
    use pvc_client::LinkModel;
    let bandwidth = parsed.non_negative_f64("--bandwidth-mbits")?;
    let latency = parsed.non_negative_f64("--latency-ms")?;
    let drop = parsed.non_negative_f64("--drop-prob")?;
    if let Some(p) = drop {
        if p > 1.0 {
            return Err(CliError::InvalidValue {
                option: "--drop-prob".to_string(),
                value: p.to_string(),
            });
        }
    }
    let seed = parsed.u64_value("--link-seed")?;
    let has_override = bandwidth.is_some() || latency.is_some() || drop.is_some() || seed.is_some();
    let mut link = match parsed.value("--link") {
        Some("lossless") => LinkModel::lossless(),
        Some("capped") => LinkModel::capped(),
        Some("none") | None if !has_override => return Ok(None),
        Some("none") | None => LinkModel::lossless(),
        Some(other) => {
            return Err(CliError::InvalidValue {
                option: "--link".to_string(),
                value: other.to_string(),
            })
        }
    };
    if let Some(mbits) = bandwidth {
        // 0 would divide away every deadline; treat it as "no cap off".
        link = link.with_bandwidth_mbits((mbits > 0.0).then_some(mbits));
    }
    if let Some(ms) = latency {
        link = link.with_latency_ms(ms);
    }
    if let Some(p) = drop {
        link = link.with_drop_probability(p);
    }
    if let Some(seed) = seed {
        link = link.with_seed(seed);
    }
    Ok(Some(link))
}

/// Edit distance between two short ASCII strings (classic two-row DP).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitution
                .min(previous[j + 1] + 1) // deletion
                .min(current[j] + 1); // insertion
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// The command line understood by the figure binaries.
const FIGURE_SPEC: ArgSpec = ArgSpec {
    flags: &["--quick"],
    options: &[],
};

/// Parses the figure-binary command line: `--quick` selects
/// [`ExperimentConfig::quick`], no arguments keeps the default.
///
/// # Errors
///
/// Returns a [`CliError`] for anything else — unknown flags abort instead
/// of silently running the full-scale configuration.
pub fn parse_experiment_config<I>(args: I) -> Result<ExperimentConfig, CliError>
where
    I: IntoIterator<Item = String>,
{
    let parsed = FIGURE_SPEC.parse(args)?;
    Ok(if parsed.has("--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    })
}

/// Parses the process's command line for a figure binary, exiting with
/// status 2 (and a "did you mean" hint when applicable) on any unknown
/// argument.
pub fn experiment_config_from_args() -> ExperimentConfig {
    match parse_experiment_config(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(err) => exit_with_usage(&err, "[--quick]"),
    }
}

/// Prints a [`CliError`] plus a usage line and exits with status 2.
pub fn exit_with_usage(err: &CliError, usage: &str) -> ! {
    let binary = std::env::args()
        .next()
        .unwrap_or_else(|| "binary".to_string());
    eprintln!("error: {err}");
    eprintln!("usage: {binary} {usage}");
    std::process::exit(2);
}

/// Prints a figure and stores its CSV under `target/figures/`.
pub fn emit(figure: &Figure) {
    println!("{}", figure.to_table());
    match figure.write_csv() {
        Ok(path) => println!("(csv written to {})\n", path.display()),
        Err(err) => eprintln!("warning: could not write csv: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_arguments_keeps_the_default_config() {
        let config = parse_experiment_config(args(&[])).unwrap();
        assert_eq!(config, ExperimentConfig::default());
    }

    #[test]
    fn quick_flag_selects_the_quick_config() {
        let config = parse_experiment_config(args(&["--quick"])).unwrap();
        assert_eq!(config, ExperimentConfig::quick());
    }

    #[test]
    fn a_typoed_quick_flag_is_rejected_with_a_hint() {
        let err = parse_experiment_config(args(&["--quikc"])).unwrap_err();
        assert_eq!(
            err,
            CliError::Unknown {
                arg: "--quikc".to_string(),
                suggestion: Some("--quick".to_string()),
            }
        );
        let message = err.to_string();
        assert!(message.contains("unknown argument '--quikc'"));
        assert!(message.contains("did you mean '--quick'?"));
    }

    #[test]
    fn a_wildly_wrong_argument_gets_no_suggestion() {
        let err = parse_experiment_config(args(&["--frobnicate-everything"])).unwrap_err();
        assert_eq!(
            err,
            CliError::Unknown {
                arg: "--frobnicate-everything".to_string(),
                suggestion: None,
            }
        );
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn options_consume_the_following_value() {
        let spec = ArgSpec {
            flags: &["--quick"],
            options: &["--sessions", "--frames"],
        };
        let parsed = spec
            .parse(args(&["--sessions", "12", "--quick", "--frames", "30"]))
            .unwrap();
        assert!(parsed.has("--quick"));
        assert_eq!(parsed.value("--sessions"), Some("12"));
        assert_eq!(parsed.positive_usize("--frames").unwrap(), Some(30));
        assert_eq!(parsed.positive_usize("--shards").unwrap(), None);
    }

    #[test]
    fn the_last_repeated_option_wins() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--sessions"],
        };
        let parsed = spec
            .parse(args(&["--sessions", "4", "--sessions", "9"]))
            .unwrap();
        assert_eq!(parsed.positive_usize("--sessions").unwrap(), Some(9));
    }

    #[test]
    fn a_trailing_option_without_a_value_is_rejected() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--sessions"],
        };
        let err = spec.parse(args(&["--sessions"])).unwrap_err();
        assert_eq!(
            err,
            CliError::MissingValue {
                option: "--sessions".to_string()
            }
        );
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn non_numeric_and_zero_values_are_rejected() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--sessions"],
        };
        for bad in ["abc", "0", "-3", "1.5"] {
            let parsed = spec.parse(args(&["--sessions", bad])).unwrap();
            let err = parsed.positive_usize("--sessions").unwrap_err();
            assert_eq!(
                err,
                CliError::InvalidValue {
                    option: "--sessions".to_string(),
                    value: bad.to_string(),
                }
            );
        }
    }

    #[test]
    fn non_negative_values_accept_zero_but_reject_junk() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--hard-cancel"],
        };
        let parsed = spec.parse(args(&["--hard-cancel", "0"])).unwrap();
        assert_eq!(
            parsed.non_negative_usize("--hard-cancel").unwrap(),
            Some(0),
            "zero is a meaningful 'off' value for count knobs"
        );
        let parsed = spec.parse(args(&["--hard-cancel", "3"])).unwrap();
        assert_eq!(parsed.non_negative_usize("--hard-cancel").unwrap(), Some(3));
        let parsed = spec.parse(args(&[])).unwrap();
        assert_eq!(parsed.non_negative_usize("--hard-cancel").unwrap(), None);
        for bad in ["abc", "-3", "1.5"] {
            let parsed = spec.parse(args(&["--hard-cancel", bad])).unwrap();
            assert!(parsed.non_negative_usize("--hard-cancel").is_err());
        }
    }

    #[test]
    fn u32_values_reject_overflow_instead_of_truncating() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--frames"],
        };
        let parsed = spec.parse(args(&["--frames", "4294967296"])).unwrap();
        let err = parsed.positive_u32("--frames").unwrap_err();
        assert_eq!(
            err,
            CliError::InvalidValue {
                option: "--frames".to_string(),
                value: "4294967296".to_string(),
            }
        );
        let parsed = spec.parse(args(&["--frames", "60"])).unwrap();
        assert_eq!(parsed.positive_u32("--frames").unwrap(), Some(60));
    }

    #[test]
    fn typoed_options_suggest_the_nearest_known_one() {
        let spec = ArgSpec {
            flags: &["--quick"],
            options: &["--sessions", "--shards"],
        };
        let err = spec.parse(args(&["--sesions", "4"])).unwrap_err();
        assert_eq!(
            err,
            CliError::Unknown {
                arg: "--sesions".to_string(),
                suggestion: Some("--sessions".to_string()),
            }
        );
    }

    #[test]
    fn placement_option_maps_names_and_defaults() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--placement"],
        };
        let parsed = spec.parse(args(&["--placement", "p2c"])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").unwrap().name(),
            "power-of-two-choices"
        );
        let parsed = spec.parse(args(&["--placement", "least-loaded"])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").unwrap().name(),
            "least-loaded"
        );
        let parsed = spec.parse(args(&["--placement", "ll"])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").unwrap().name(),
            "least-loaded"
        );
        let parsed = spec.parse(args(&["--placement", "predictive"])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").unwrap().name(),
            "predictive"
        );
        let parsed = spec.parse(args(&[])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").unwrap().name(),
            "static"
        );
        assert_eq!(
            placement_option(&parsed, "p2c").unwrap().name(),
            "power-of-two-choices"
        );
        let parsed = spec.parse(args(&["--placement", "rondom"])).unwrap();
        assert_eq!(
            placement_option(&parsed, "static").map(|policy| policy.name()),
            Err(CliError::InvalidValue {
                option: "--placement".to_string(),
                value: "rondom".to_string(),
            })
        );
    }

    #[test]
    fn mix_option_maps_names_and_defaults() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--mix"],
        };
        let parsed = spec.parse(args(&["--mix", "bimodal"])).unwrap();
        assert_eq!(
            mix_option(&parsed, "uniform").unwrap(),
            pvc_stream::WorkloadMix::Bimodal
        );
        let parsed = spec.parse(args(&["--mix", "heavy-tail"])).unwrap();
        assert_eq!(
            mix_option(&parsed, "uniform").unwrap(),
            pvc_stream::WorkloadMix::HeavyTail
        );
        let parsed = spec.parse(args(&[])).unwrap();
        assert_eq!(
            mix_option(&parsed, "uniform").unwrap(),
            pvc_stream::WorkloadMix::Uniform
        );
        let parsed = spec.parse(args(&["--mix", "gaussian"])).unwrap();
        assert_eq!(
            mix_option(&parsed, "uniform"),
            Err(CliError::InvalidValue {
                option: "--mix".to_string(),
                value: "gaussian".to_string(),
            })
        );
    }

    #[test]
    fn conflicting_arguments_render_both_sides_and_the_reason() {
        let err = CliError::Conflicting {
            first: "--shards".to_string(),
            second: "--scale-up".to_string(),
            reason: "a fixed shard count cannot autoscale".to_string(),
        };
        let message = err.to_string();
        assert!(message.contains("'--shards' conflicts with '--scale-up'"));
        assert!(message.contains("a fixed shard count cannot autoscale"));
    }

    #[test]
    fn elastic_flags_get_did_you_mean_hints() {
        let spec = ArgSpec {
            flags: &[],
            options: &["--fleet-budget", "--scale-up", "--scale-down"],
        };
        for (typo, expected) in [
            ("--fleet-budgt", "--fleet-budget"),
            ("--scale-upp", "--scale-up"),
            ("--scaledown", "--scale-down"),
        ] {
            let err = spec.parse(args(&[typo, "1"])).unwrap_err();
            assert_eq!(
                err,
                CliError::Unknown {
                    arg: typo.to_string(),
                    suggestion: Some(expected.to_string()),
                },
                "{typo} should suggest {expected}"
            );
        }
    }

    #[test]
    fn levenshtein_matches_known_distances() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("quikc", "quick"), 2);
    }
}
