//! Shared helpers for the figure binaries.
//!
//! Each binary accepts an optional `--quick` flag that switches to the
//! reduced experiment configuration (smaller frames, no offline baselines).

use crate::figures::Figure;
use crate::harness::ExperimentConfig;

/// Parses the command line shared by all figure binaries: `--quick` selects
/// [`ExperimentConfig::quick`], anything else keeps the default.
pub fn experiment_config_from_args() -> ExperimentConfig {
    if std::env::args().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    }
}

/// Prints a figure and stores its CSV under `target/figures/`.
pub fn emit(figure: &Figure) {
    println!("{}", figure.to_table());
    match figure.write_csv() {
        Ok(path) => println!("(csv written to {})\n", path.display()),
        Err(err) => eprintln!("warning: could not write csv: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_returned_without_flags() {
        // The test binary's argv has no --quick flag.
        let config = experiment_config_from_args();
        assert_eq!(config, ExperimentConfig::default());
    }
}
