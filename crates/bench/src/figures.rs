//! Generators for every table and figure of the paper's evaluation.

use crate::harness::{measure_all_scenes, ExperimentConfig, SceneMeasurement};
use crate::report::{format_table, write_csv};
use pvc_baselines::{SccCodec, SccConfig};
use pvc_color::{DiscriminationModel, LinearRgb, RgbAxis, SyntheticDiscriminationModel};
use pvc_core::PerceptualEncoder;
use pvc_fovea::{DisplayGeometry, EccentricityMap, GazePoint};
use pvc_frame::TileGrid;
use pvc_hw::{CauModel, GpuConfig, PowerModel};
use pvc_metrics::SampleSummary;
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};
use pvc_study::{SceneTrial, StudyConfig, UserStudy};
use serde::{Deserialize, Serialize};

/// A regenerated table or figure: a name, a column header and data rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier used for the CSV file name (e.g. `fig10_bandwidth`).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Figure {
    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        format!("{}\n{}", self.title, format_table(&header, &self.rows))
    }

    /// Writes the figure as CSV under `target/figures/` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        write_csv(&self.name, &header, &self.rows)
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.2}")
}

/// Fig. 10: bandwidth reduction of our scheme over each baseline, per scene.
pub fn fig10_bandwidth(measurements: &[SceneMeasurement]) -> Figure {
    let rows = measurements
        .iter()
        .map(|m| {
            let vs = |other: Option<&pvc_bdc::CompressionStats>| match other {
                Some(o) => fmt(m.ours.reduction_over(o)),
                None => "n/a".to_string(),
            };
            vec![
                m.scene.name().to_string(),
                fmt(m.reduction_over_nocom()),
                vs(m.scc.as_ref()),
                fmt(m.reduction_over_bd()),
                vs(m.png.as_ref()),
            ]
        })
        .collect();
    Figure {
        name: "fig10_bandwidth".to_string(),
        title: "Fig. 10 — bandwidth reduction of our encoding over each baseline (%)".to_string(),
        header: vec!["scene", "vs NoCom", "vs SCC", "vs BD", "vs PNG"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Fig. 11: bits per pixel split into base / metadata / delta, BD vs ours.
pub fn fig11_bits_per_pixel(measurements: &[SceneMeasurement]) -> Figure {
    let rows = measurements
        .iter()
        .map(|m| {
            let (bd_base, bd_meta, bd_delta) =
                m.bd.breakdown.bits_per_pixel_split(m.bd.pixel_count);
            let (our_base, our_meta, our_delta) =
                m.ours.breakdown.bits_per_pixel_split(m.ours.pixel_count);
            vec![
                m.scene.name().to_string(),
                fmt(bd_base),
                fmt(bd_meta),
                fmt(bd_delta),
                fmt(m.bd.bits_per_pixel()),
                fmt(our_base),
                fmt(our_meta),
                fmt(our_delta),
                fmt(m.ours.bits_per_pixel()),
            ]
        })
        .collect();
    Figure {
        name: "fig11_bits_per_pixel".to_string(),
        title: "Fig. 11 — bits per pixel split into base/metadata/delta (BD vs ours)".to_string(),
        header: vec![
            "scene",
            "bd_base",
            "bd_meta",
            "bd_delta",
            "bd_total",
            "ours_base",
            "ours_meta",
            "ours_delta",
            "ours_total",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
        rows,
    }
}

/// Fig. 12: distribution of adjusted tiles across the two geometric cases.
pub fn fig12_case_distribution(measurements: &[SceneMeasurement]) -> Figure {
    let mut rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.scene.name().to_string(),
                fmt(m.cases.case1_percent()),
                fmt(m.cases.case2_percent()),
            ]
        })
        .collect();
    let total_c1: usize = measurements.iter().map(|m| m.cases.case1_tiles).sum();
    let total_c2: usize = measurements.iter().map(|m| m.cases.case2_tiles).sum();
    let total = (total_c1 + total_c2).max(1);
    rows.push(vec![
        "average".to_string(),
        fmt(total_c1 as f64 / total as f64 * 100.0),
        fmt(total_c2 as f64 / total as f64 * 100.0),
    ]);
    Figure {
        name: "fig12_case_distribution".to_string(),
        title: "Fig. 12 — distribution of tiles across case c1 / c2 (%)".to_string(),
        header: vec!["scene", "c1", "c2"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Fig. 13: power saving over BD across Quest 2 resolutions and rates.
pub fn fig13_power_saving(measurements: &[SceneMeasurement]) -> Figure {
    // Average the per-scene bits-per-pixel, as the paper aggregates scenes.
    let avg = |f: &dyn Fn(&SceneMeasurement) -> f64| {
        measurements.iter().map(f).sum::<f64>() / measurements.len().max(1) as f64
    };
    let bd_bpp = avg(&|m| m.bd.bits_per_pixel());
    let ours_bpp = avg(&|m| m.ours.bits_per_pixel());
    let to_stats = |bpp: f64| {
        pvc_bdc::CompressionStats::from_breakdown(
            1_000_000,
            pvc_bdc::SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: (bpp * 1_000_000.0) as u64,
            },
        )
    };
    let model = PowerModel::default();
    let rows = model
        .quest2_sweep(&to_stats(bd_bpp), &to_stats(ours_bpp))
        .into_iter()
        .map(|b| {
            vec![
                b.dimensions.to_string(),
                format!("{}", b.fps),
                fmt(b.baseline_dram_mw),
                fmt(b.ours_dram_mw),
                fmt(b.cau_overhead_mw),
                format!("{:.3}", b.net_saving_w()),
            ]
        })
        .collect();
    Figure {
        name: "fig13_power_saving".to_string(),
        title: format!(
            "Fig. 13 — power saving over BD (avg BD {bd_bpp:.2} bpp, ours {ours_bpp:.2} bpp)"
        ),
        header: vec![
            "resolution",
            "fps",
            "bd_dram_mw",
            "ours_dram_mw",
            "cau_mw",
            "saving_w",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
        rows,
    }
}

/// Fig. 14: number of simulated participants who did not notice artifacts.
pub fn fig14_user_study(config: &ExperimentConfig, study_config: StudyConfig) -> Figure {
    let model = SyntheticDiscriminationModel::default();
    let encoder = PerceptualEncoder::new(model, config.encoder.clone());
    let display = DisplayGeometry::quest2_like(config.dimensions);
    let gaze = GazePoint::center_of(config.dimensions);
    let grid = TileGrid::new(config.dimensions, config.encoder.tile_size);
    let map = EccentricityMap::per_tile(&display, &grid, gaze, config.encoder.fovea);

    let trials: Vec<SceneTrial> = SceneId::ALL
        .iter()
        .map(|&scene| {
            let frame =
                SceneRenderer::new(scene, SceneConfig::new(config.dimensions)).render_linear(0);
            let (adjusted, _) = encoder.adjust_frame(&frame, &display, gaze);
            SceneTrial::from_frames(scene.name(), &frame, &adjusted, &map, &model)
        })
        .collect();
    let study = UserStudy::new(study_config);
    let outcome = study.run(&trials);
    let mut rows: Vec<Vec<String>> = outcome
        .scenes
        .iter()
        .map(|s| {
            vec![
                s.scene_name.clone(),
                s.did_not_notice.to_string(),
                s.noticed.to_string(),
                format!("{:.4}", s.mean_visible_fraction),
            ]
        })
        .collect();
    rows.push(vec![
        "mean noticed".to_string(),
        String::new(),
        fmt(outcome.mean_noticed()),
        fmt(outcome.std_dev_noticed()),
    ]);
    Figure {
        name: "fig14_user_study".to_string(),
        title: format!(
            "Fig. 14 — simulated study: participants (of {}) not noticing artifacts",
            outcome.observers
        ),
        header: vec!["scene", "did_not_notice", "noticed", "visible_fraction"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Fig. 15: bandwidth reduction over NoCom for BD and for our scheme at
/// different tile sizes.
pub fn fig15_tile_size(config: &ExperimentConfig, tile_sizes: &[u32]) -> Figure {
    let bd_reference = measure_all_scenes(config);
    let mut per_scene: Vec<Vec<String>> = SceneId::ALL
        .iter()
        .zip(&bd_reference)
        .map(|(scene, m)| {
            vec![
                scene.name().to_string(),
                fmt(m.bd.bandwidth_reduction_percent()),
            ]
        })
        .collect();
    for &tile in tile_sizes {
        let sweep_config = ExperimentConfig {
            include_offline_baselines: false,
            ..config.clone()
        }
        .with_tile_size(tile);
        let measurements = measure_all_scenes(&sweep_config);
        for (row, m) in per_scene.iter_mut().zip(&measurements) {
            row.push(fmt(m.reduction_over_nocom()));
        }
    }
    let mut header = vec!["scene".to_string(), "BD(T4)".to_string()];
    header.extend(tile_sizes.iter().map(|t| format!("T{t}")));
    Figure {
        name: "fig15_tile_size".to_string(),
        title: "Fig. 15 — bandwidth reduction over NoCom vs tile size (%)".to_string(),
        header,
        rows: per_scene,
    }
}

/// Fig. 2: discrimination ellipsoid growth between 5° and 25° eccentricity
/// for 27 colors uniformly sampled in [0.2, 0.8]³.
pub fn fig2_ellipsoids() -> Figure {
    let model = SyntheticDiscriminationModel::default();
    let mut rows = Vec::new();
    for &r in &[0.2, 0.5, 0.8] {
        for &g in &[0.2, 0.5, 0.8] {
            for &b in &[0.2, 0.5, 0.8] {
                let color = LinearRgb::new(r, g, b);
                for &ecc in &[5.0, 25.0] {
                    let e = model.ellipsoid(color, ecc);
                    let axes = e.axes();
                    rows.push(vec![
                        format!("({r:.1},{g:.1},{b:.1})"),
                        format!("{ecc}"),
                        format!("{:.5}", axes.a),
                        format!("{:.5}", axes.b),
                        format!("{:.5}", axes.c),
                        format!("{:.4}", e.half_extent_along_axis(RgbAxis::Red)),
                        format!("{:.4}", e.half_extent_along_axis(RgbAxis::Green)),
                        format!("{:.4}", e.half_extent_along_axis(RgbAxis::Blue)),
                    ]);
                }
            }
        }
    }
    Figure {
        name: "fig2_ellipsoids".to_string(),
        title:
            "Fig. 2 — discrimination ellipsoids at 5° and 25° (DKL semi-axes and RGB half-extents)"
                .to_string(),
        header: vec!["color", "ecc", "a", "b", "c", "ext_r", "ext_g", "ext_b"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Sec. 6.1 numbers: CAU latency, area and power.
pub fn tab_area_power() -> Figure {
    let cau = CauModel::default();
    let gpu = GpuConfig::default();
    let rows = vec![
        vec!["CAU frequency (MHz)".to_string(), fmt(cau.frequency_mhz())],
        vec![
            "PEs required to match GPU".to_string(),
            cau.required_pe_count(&gpu).to_string(),
        ],
        vec![
            "Frame latency @5408x2736 (us)".to_string(),
            fmt(cau.frame_latency_us(pvc_frame::Dimensions::QUEST2_HIGH)),
        ],
        vec![
            "Frame latency @4128x2096 (us)".to_string(),
            fmt(cau.frame_latency_us(pvc_frame::Dimensions::QUEST2_LOW)),
        ],
        vec![
            "Total area (mm^2)".to_string(),
            format!("{:.3}", cau.total_area_mm2()),
        ],
        vec![
            "Area fraction of Snapdragon 865".to_string(),
            format!("{:.4}", cau.area_fraction_of_soc(83.54)),
        ],
        vec![
            "Total power (mW)".to_string(),
            format!("{:.4}", cau.total_power_mw()),
        ],
    ];
    Figure {
        name: "tab_area_power".to_string(),
        title: "Sec. 6.1 — CAU performance, area and power".to_string(),
        header: vec!["quantity", "value"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Sec. 6.3 objective quality: PSNR of the adjusted frames per scene.
pub fn tab_psnr(measurements: &[SceneMeasurement]) -> Figure {
    let mut rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.scene.name().to_string(),
                fmt(m.quality.psnr_db),
                fmt(m.quality.mse),
                m.quality.max_abs_error.to_string(),
                format!("{:.4}", m.quality.changed_pixel_fraction),
            ]
        })
        .collect();
    let psnrs: Vec<f64> = measurements.iter().map(|m| m.quality.psnr_db).collect();
    let summary = SampleSummary::of(&psnrs);
    rows.push(vec![
        "mean/std".to_string(),
        fmt(summary.mean),
        fmt(summary.std_dev),
        String::new(),
        String::new(),
    ]);
    Figure {
        name: "tab_psnr".to_string(),
        title: "Sec. 6.3 — objective quality (PSNR in dB) of adjusted frames".to_string(),
        header: vec!["scene", "psnr_db", "mse", "max_err", "changed_frac"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

/// Ablation table (DESIGN.md): contribution of the axis choice, the foveal
/// bypass and the model scale, averaged over all six scenes.
pub fn tab_ablation(config: &ExperimentConfig) -> Figure {
    use pvc_core::{run_ablation, AblationVariant};
    let variants = AblationVariant::standard_set();
    let display = DisplayGeometry::quest2_like(config.dimensions);
    let gaze = GazePoint::center_of(config.dimensions);
    let mut bpp_sums = vec![0.0; variants.len()];
    let mut bd_red_sums = vec![0.0; variants.len()];
    let mut foveal_sums = vec![0.0; variants.len()];
    for scene in SceneId::ALL {
        let frame = SceneRenderer::new(scene, SceneConfig::new(config.dimensions)).render_linear(0);
        let results = run_ablation(&frame, &display, gaze, &config.encoder, &variants);
        for (i, r) in results.iter().enumerate() {
            bpp_sums[i] += r.bits_per_pixel;
            bd_red_sums[i] += r.reduction_over_bd;
            foveal_sums[i] += r.foveal_tile_fraction;
        }
    }
    let n = SceneId::ALL.len() as f64;
    let rows = variants
        .iter()
        .enumerate()
        .map(|(i, v)| {
            vec![
                v.label(),
                fmt(bpp_sums[i] / n),
                fmt(bd_red_sums[i] / n),
                format!("{:.3}", foveal_sums[i] / n),
            ]
        })
        .collect();
    Figure {
        name: "tab_ablation".to_string(),
        title: "Ablation — encoder variants averaged over the six scenes".to_string(),
        header: vec![
            "variant",
            "bits_per_pixel",
            "reduction_vs_bd_%",
            "foveal_tile_frac",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
        rows,
    }
}

/// Sec. 6.2 SCC details: codebook size and table costs.
pub fn tab_scc(bits_per_channel: u8) -> Figure {
    let model = SyntheticDiscriminationModel::default();
    let codec = SccCodec::build(&model, SccConfig::new(bits_per_channel, 30.0));
    let rows = vec![
        vec![
            "lattice bits per channel".to_string(),
            bits_per_channel.to_string(),
        ],
        vec![
            "lattice colors".to_string(),
            (1usize << (3 * bits_per_channel)).to_string(),
        ],
        vec![
            "codebook colors".to_string(),
            codec.codebook_size().to_string(),
        ],
        vec![
            "bits per color".to_string(),
            codec.bits_per_color().to_string(),
        ],
        vec![
            "encode table (bytes)".to_string(),
            codec.encode_table_bytes().to_string(),
        ],
        vec![
            "decode table (bytes)".to_string(),
            codec.decode_table_bytes().to_string(),
        ],
        vec![
            "full-resolution encode table (bytes)".to_string(),
            codec.full_resolution_encode_table_bytes().to_string(),
        ],
    ];
    Figure {
        name: "tab_scc_codebook".to_string(),
        title: "Sec. 6.2 — SCC codebook and table sizes".to_string(),
        header: vec!["quantity", "value"]
            .into_iter()
            .map(String::from)
            .collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_measurements() -> Vec<SceneMeasurement> {
        measure_all_scenes(&ExperimentConfig::quick())
    }

    #[test]
    fn fig10_has_one_row_per_scene() {
        let fig = fig10_bandwidth(&quick_measurements());
        assert_eq!(fig.rows.len(), 6);
        assert!(fig.to_table().contains("office"));
        // Our reduction over NoCom is positive for every scene.
        for row in &fig.rows {
            assert!(row[1].parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn fig11_totals_are_consistent() {
        let fig = fig11_bits_per_pixel(&quick_measurements());
        for row in &fig.rows {
            let parts: Vec<f64> = row[1..].iter().map(|v| v.parse().unwrap()).collect();
            assert!((parts[0] + parts[1] + parts[2] - parts[3]).abs() < 0.05);
            assert!((parts[4] + parts[5] + parts[6] - parts[7]).abs() < 0.05);
            // Ours spends no more bits than BD.
            assert!(parts[7] <= parts[3] + 1e-9);
        }
    }

    #[test]
    fn fig12_percentages_sum_to_hundred() {
        let fig = fig12_case_distribution(&quick_measurements());
        for row in &fig.rows {
            let c1: f64 = row[1].parse().unwrap();
            let c2: f64 = row[2].parse().unwrap();
            assert!((c1 + c2 - 100.0).abs() < 0.1, "{row:?}");
        }
    }

    #[test]
    fn fig13_savings_are_positive_and_monotone() {
        let fig = fig13_power_saving(&quick_measurements());
        assert_eq!(fig.rows.len(), 8);
        let savings: Vec<f64> = fig.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(savings.iter().all(|&s| s > 0.0));
        // Higher resolution and refresh rate saves more.
        assert!(savings[7] > savings[0]);
    }

    #[test]
    fn fig2_has_54_rows() {
        let fig = fig2_ellipsoids();
        assert_eq!(fig.rows.len(), 27 * 2);
        assert!(fig.write_csv().is_ok());
    }

    #[test]
    fn area_power_table_mentions_paper_numbers() {
        let table = tab_area_power().to_table();
        assert!(table.contains("166.67"));
        assert!(table.contains("96"));
    }

    #[test]
    fn psnr_table_has_summary_row() {
        let fig = tab_psnr(&quick_measurements());
        assert_eq!(fig.rows.len(), 7);
        assert_eq!(fig.rows.last().unwrap()[0], "mean/std");
    }
}
