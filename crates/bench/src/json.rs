//! Minimal JSON emission for machine-readable bench reports.
//!
//! The stream binaries (`stream_throughput`, `session_churn`) print
//! human-readable tables; CI and cross-PR trend tracking want the same
//! numbers as structured data (`--json <path>`, captured as
//! `BENCH_*.json` artifacts). The environment has no `serde_json`, so
//! this module provides the few pieces actually needed: a [`Json`] value
//! tree, a strict renderer (escaped strings, non-finite floats as
//! `null`), and [`service_report_json`], the shared report builder.

use pvc_metrics::{SampleSummary, TemporalTotals, ThroughputReport, TierAggregates};
use pvc_stream::{ServiceReport, SessionReport, ShardReport};

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter the benches emit).
    U64(u64),
    /// A floating-point number; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(value: &str) -> Json {
        Json::Str(value.to_string())
    }
}

impl From<u64> for Json {
    fn from(value: u64) -> Json {
        Json::U64(value)
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Json {
        Json::U64(value as u64)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Json {
        Json::F64(value)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Json {
        Json::Bool(value)
    }
}

/// Builds a [`Json::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(entries: [(&str, Json); N]) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

impl Json {
    /// Renders the value as a compact JSON document (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            Json::U64(value) => out.push_str(&value.to_string()),
            Json::F64(value) => {
                if value.is_finite() {
                    out.push_str(&value.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(value) => write_escaped(value, out),
            Json::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (index, (key, value)) in entries.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(value: &str, out: &mut String) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn throughput_json(throughput: &ThroughputReport) -> Json {
    object([
        ("frames", throughput.frames.into()),
        ("pixels", throughput.pixels.into()),
        ("bytes_in", throughput.bytes_in.into()),
        ("bytes_out", throughput.bytes_out.into()),
        ("wall_seconds", throughput.wall_seconds.into()),
        ("frames_per_second", throughput.frames_per_second().into()),
        (
            "megapixels_per_second",
            throughput.megapixels_per_second().into(),
        ),
        (
            "output_megabits_per_second",
            throughput.output_megabits_per_second().into(),
        ),
        (
            "bandwidth_reduction_percent",
            throughput.bandwidth_reduction_percent().into(),
        ),
    ])
}

/// Renders a [`TemporalTotals`] as the `temporal` JSON section: frame and
/// per-mode tile counts plus the emitted-vs-intra bit accounting.
pub fn temporal_json(totals: &TemporalTotals) -> Json {
    object([
        ("keyframes", totals.keyframes.into()),
        ("predicted_frames", totals.predicted_frames.into()),
        ("skip_tiles", totals.skip_tiles.into()),
        ("delta_tiles", totals.delta_tiles.into()),
        ("intra_tiles", totals.intra_tiles.into()),
        ("bits", totals.bits.into()),
        ("intra_bits", totals.intra_bits.into()),
        ("bits_saved", totals.bits_saved().into()),
        (
            "reduction_over_intra_percent",
            totals.reduction_over_intra_percent().into(),
        ),
    ])
}

fn summary_json(summary: Option<SampleSummary>) -> Json {
    match summary {
        None => Json::Null,
        Some(summary) => object([
            ("mean", summary.mean.into()),
            ("min", summary.min.into()),
            ("max", summary.max.into()),
            ("spread", (summary.max - summary.min).into()),
        ]),
    }
}

fn shard_json(shard: &ShardReport) -> Json {
    object([
        ("shard", shard.shard.into()),
        ("sessions", shard.sessions.into()),
        ("frames", shard.frames.into()),
        ("pixels", shard.pixels.into()),
        ("utilization", shard.utilization().into()),
        (
            "megapixels_per_second",
            shard.megapixels_per_second().into(),
        ),
        ("render_seconds", shard.render_seconds.into()),
        ("render_utilization", shard.render_utilization().into()),
        ("queue_stalls", shard.queue_stalls.into()),
        ("queue_enqueued", shard.queue_enqueued.into()),
        ("queue_peak_depth", shard.queue_peak_depth.into()),
    ])
}

fn session_json(session: &SessionReport) -> Json {
    object([
        ("session", session.session.into()),
        ("scene", session.scene.name().into()),
        ("tier", session.tier.name().into()),
        ("shard", session.shard.into()),
        ("cancelled", session.cancelled.into()),
        (
            "downgraded_from",
            session
                .downgraded_from
                .map_or(Json::Null, |tier| tier.name().into()),
        ),
        ("frames", session.throughput.frames.into()),
        ("bytes_out", session.throughput.bytes_out.into()),
        (
            "frames_per_second",
            session.throughput.frames_per_second().into(),
        ),
        (
            "megapixels_per_second",
            session.throughput.megapixels_per_second().into(),
        ),
        ("cache_hit_rate", session.cache.hit_rate().into()),
    ])
}

/// Builds the machine-readable report both stream binaries emit under
/// `--json`: aggregate rates, eccentricity-map cache counters, per-tier /
/// per-session / per-shard breakdowns, the shard utilization and
/// pixel-rate spreads, and the churn counters.
///
/// `sessions` must cover the whole fleet — including reports already
/// handed out by `StreamRuntime::retire` — since the [`ServiceReport`]
/// only retains the sessions nobody retired individually.
pub fn service_report_json(
    bench: &str,
    parameters: Vec<(String, Json)>,
    sessions: &[&SessionReport],
    report: &ServiceReport,
) -> Json {
    let mut tiers = TierAggregates::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut fleet_temporal = TemporalTotals::default();
    let mut tier_temporal: Vec<(&str, TemporalTotals)> = Vec::new();
    for session in sessions {
        tiers.record(session.tier.name(), session.cancelled, &session.throughput);
        hits += session.cache.hits;
        misses += session.cache.misses;
        fleet_temporal.merge(&session.temporal);
        let label = session.tier.name();
        match tier_temporal.iter_mut().find(|(l, _)| *l == label) {
            Some((_, totals)) => totals.merge(&session.temporal),
            None => tier_temporal.push((label, session.temporal)),
        }
    }
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let tier_entries: Vec<Json> = tiers
        .entries()
        .iter()
        .map(|tier| {
            object([
                ("tier", tier.label.as_str().into()),
                ("sessions", tier.sessions.into()),
                ("cancelled", tier.cancelled.into()),
                ("throughput", throughput_json(&tier.throughput)),
                (
                    "temporal",
                    tier_temporal
                        .iter()
                        .find(|(label, _)| *label == tier.label)
                        .map_or(Json::Null, |(_, totals)| temporal_json(totals)),
                ),
            ])
        })
        .collect();
    object([
        ("bench", bench.into()),
        ("parameters", Json::Object(parameters)),
        ("totals", throughput_json(&report.totals)),
        ("temporal", temporal_json(&fleet_temporal)),
        (
            "cache",
            object([
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("hit_rate", hit_rate.into()),
            ]),
        ),
        ("tiers", Json::Array(tier_entries)),
        (
            "sessions",
            Json::Array(sessions.iter().map(|s| session_json(s)).collect()),
        ),
        (
            "shards",
            Json::Array(report.shards.iter().map(shard_json).collect()),
        ),
        (
            "shard_spread",
            object([
                ("utilization", summary_json(report.utilization_summary())),
                (
                    "megapixels_per_second",
                    summary_json(report.pixel_throughput_summary()),
                ),
            ]),
        ),
        (
            "churn",
            object([
                ("admitted", report.churn.admitted.into()),
                ("retired", report.churn.retired.into()),
                ("completed", report.churn.completed.into()),
                ("cancelled", report.churn.cancelled.into()),
                ("peak_concurrent", report.churn.peak_concurrent.into()),
            ]),
        ),
        (
            "elasticity",
            object([
                ("rejected", report.elasticity.rejected.into()),
                ("queued", report.elasticity.queued.into()),
                ("shed", report.elasticity.shed.into()),
                ("migrated", report.elasticity.migrated.into()),
                ("shards_spawned", report.elasticity.shards_spawned.into()),
                ("shards_drained", report.elasticity.shards_drained.into()),
            ]),
        ),
    ])
}

/// Appends a field to a [`Json::Object`] document (e.g. the optional
/// `link` section the stream binaries add under `--link`).
///
/// # Panics
///
/// Panics when `json` is not an object.
pub fn with_field(mut json: Json, key: &str, value: Json) -> Json {
    match &mut json {
        Json::Object(entries) => entries.push((key.to_string(), value)),
        other => panic!("with_field needs an object, got {other:?}"),
    }
    json
}

/// Writes a rendered JSON document (with a trailing newline) to `path`,
/// creating parent directories as needed.
///
/// # Errors
///
/// Returns the underlying I/O error if a directory or the file cannot be
/// written.
pub fn write_json(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, value.render() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json_literals() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_string()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn arrays_and_objects_nest() {
        let value = object([
            ("name", "stream".into()),
            (
                "values",
                Json::Array(vec![1u64.into(), 2u64.into(), Json::Null]),
            ),
            ("nested", object([("ok", true.into())])),
        ]);
        assert_eq!(
            value.render(),
            r#"{"name":"stream","values":[1,2,null],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn service_report_json_covers_the_headline_numbers() {
        use pvc_frame::Dimensions;
        use pvc_stream::{ServiceConfig, StreamService};

        let mut service = StreamService::new(ServiceConfig::default().with_shards(2));
        service.admit_synthetic(3, Dimensions::new(32, 32), 2);
        let report = service.run();
        let sessions: Vec<&SessionReport> = report.sessions.iter().collect();
        let json = service_report_json(
            "test_bench",
            vec![("sessions".to_string(), 3usize.into())],
            &sessions,
            &report,
        );
        let rendered = json.render();
        for needle in [
            r#""bench":"test_bench""#,
            r#""frames":6"#,
            r#""hit_rate":"#,
            r#""shards":[{"shard":0"#,
            r#""queue_enqueued":"#,
            r#""render_utilization":"#,
            r#""churn":{"admitted":3"#,
            r#""elasticity":{"rejected":0"#,
            r#""downgraded_from":null"#,
            r#""tiers":[{"tier":"quest2""#,
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }

    #[test]
    fn write_json_creates_parent_directories() {
        let dir = std::env::temp_dir().join("pvc_json_test");
        let path = dir.join("nested").join("report.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_json(&path, &object([("ok", true.into())])).expect("write succeeds");
        let written = std::fs::read_to_string(&path).expect("file exists");
        assert_eq!(written, "{\"ok\":true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
