//! Regenerates the Sec. 6.1 hardware numbers (latency, area, power).

use pvc_bench::cli as common;

use pvc_bench::tab_area_power;

fn main() {
    common::emit(&tab_area_power());
}
