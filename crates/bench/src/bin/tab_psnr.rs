//! Regenerates tab_psnr from the paper's evaluation.

use pvc_bench::cli as common;

use pvc_bench::{measure_all_scenes, tab_psnr};

fn main() {
    let config = common::experiment_config_from_args();
    let measurements = measure_all_scenes(&config);
    common::emit(&tab_psnr(&measurements));
}
