//! Regenerates the Sec. 6.2 SCC codebook statistics.

use pvc_bench::cli as common;

use pvc_bench::tab_scc;

fn main() {
    let bits = if std::env::args().any(|a| a == "--quick") {
        4
    } else {
        6
    };
    common::emit(&tab_scc(bits));
}
