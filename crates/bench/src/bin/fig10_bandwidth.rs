//! Regenerates fig10_bandwidth from the paper's evaluation.

use pvc_bench::cli as common;

use pvc_bench::{fig10_bandwidth, measure_all_scenes};

fn main() {
    let config = common::experiment_config_from_args();
    let measurements = measure_all_scenes(&config);
    common::emit(&fig10_bandwidth(&measurements));
}
