//! Regenerates fig11_bits_per_pixel from the paper's evaluation.

use pvc_bench::cli as common;

use pvc_bench::{fig11_bits_per_pixel, measure_all_scenes};

fn main() {
    let config = common::experiment_config_from_args();
    let measurements = measure_all_scenes(&config);
    common::emit(&fig11_bits_per_pixel(&measurements));
}
