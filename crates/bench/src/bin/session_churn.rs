//! Long-lived runtime benchmark: session churn under load-aware placement
//! and heterogeneous workload mixes.
//!
//! Starts a [`StreamRuntime`], admits an initial fleet of synthetic
//! headset sessions (optionally a heterogeneous `--mix` of resolution
//! tiers), then runs admission/retirement *waves*: each wave retires the
//! oldest live sessions — gracefully by default, hard-cancelled with
//! `--hard-cancel` — and admits fresh replacements while the rest of the
//! fleet keeps streaming. Reports per-session FPS for every stream,
//! per-tier FPS and pixel throughput, per-shard load distribution, churn
//! counters and steady-state aggregate rates.
//!
//! `--quick` runs a small configuration suitable for CI; the knobs below
//! override either preset.
//!
//! ```text
//! cargo run --release -p pvc_bench --bin session_churn -- --quick --mix bimodal
//! cargo run --release -p pvc_bench --bin session_churn -- \
//!     --sessions 16 --frames 30 --shards 8 --waves 4 --churn 4 \
//!     --mix heavy-tail --placement least-loaded --hard-cancel 1
//! ```

use pvc_bench::assert_session_rates;
use pvc_bench::cli::{
    exit_with_usage, link_option, mix_option, placement_option, ArgSpec, CliError, ParsedArgs,
};
use pvc_bench::json::{self, Json};
use pvc_bench::link;
use pvc_bench::trace_export;
use pvc_frame::Dimensions;
use pvc_metrics::TierAggregates;
use pvc_stream::{
    ServiceConfig, SessionConfig, SessionReport, StreamRuntime, TraceConfig, WorkloadMix,
};
use std::collections::VecDeque;

const SPEC: ArgSpec = ArgSpec {
    flags: &["--quick"],
    options: &[
        "--sessions",
        "--frames",
        "--shards",
        "--queue-depth",
        "--width",
        "--height",
        "--waves",
        "--churn",
        "--placement",
        "--mix",
        "--hard-cancel",
        "--link",
        "--bandwidth-mbits",
        "--latency-ms",
        "--drop-prob",
        "--link-seed",
        "--json",
        "--trace",
    ],
};

const USAGE: &str = "[--quick] [--sessions N] [--frames N] [--shards N] \
                     [--queue-depth N] [--width PX] [--height PX] \
                     [--waves N] [--churn N] \
                     [--placement static|p2c|least-loaded] \
                     [--mix uniform|bimodal|heavy-tail] [--hard-cancel N] \
                     [--link none|lossless|capped] [--bandwidth-mbits MBITS] \
                     [--latency-ms MS] [--drop-prob P] [--link-seed N] \
                     [--json PATH] [--trace PATH]";

/// The workload, after applying the preset and any explicit overrides.
struct RunConfig {
    sessions: usize,
    frames: u32,
    shards: usize,
    queue_depth: usize,
    dimensions: Dimensions,
    waves: usize,
    churn: usize,
    mix: WorkloadMix,
    /// Of each wave's retirements, how many are hard-cancels.
    hard_cancels: usize,
}

fn run_config(parsed: &ParsedArgs) -> Result<RunConfig, CliError> {
    let quick = parsed.has("--quick");
    let default_shards = pvc_parallel::available_threads().min(if quick { 4 } else { 8 });
    let mut config = if quick {
        RunConfig {
            sessions: 8,
            frames: 10,
            shards: default_shards,
            queue_depth: 4,
            dimensions: Dimensions::new(96, 96),
            waves: 2,
            churn: 2,
            mix: WorkloadMix::Uniform,
            hard_cancels: 0,
        }
    } else {
        RunConfig {
            sessions: 16,
            frames: 30,
            shards: default_shards,
            queue_depth: 4,
            dimensions: Dimensions::new(256, 256),
            waves: 3,
            churn: 4,
            mix: WorkloadMix::Uniform,
            hard_cancels: 0,
        }
    };
    if let Some(sessions) = parsed.positive_usize("--sessions")? {
        config.sessions = sessions;
    }
    if let Some(frames) = parsed.positive_u32("--frames")? {
        config.frames = frames;
    }
    if let Some(shards) = parsed.positive_usize("--shards")? {
        config.shards = shards;
    }
    if let Some(depth) = parsed.positive_usize("--queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(width) = parsed.positive_u32("--width")? {
        config.dimensions.width = width;
    }
    if let Some(height) = parsed.positive_u32("--height")? {
        config.dimensions.height = height;
    }
    if let Some(waves) = parsed.positive_usize("--waves")? {
        config.waves = waves;
    }
    if let Some(churn) = parsed.positive_usize("--churn")? {
        config.churn = churn.min(config.sessions);
    }
    config.mix = mix_option(parsed, config.mix.name())?;
    if let Some(cancels) = parsed.non_negative_usize("--hard-cancel")? {
        config.hard_cancels = cancels.min(config.churn);
    }
    Ok(config)
}

fn main() {
    let parsed = SPEC
        .parse(std::env::args().skip(1))
        .unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let config = run_config(&parsed).unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    // Load-aware placement is the default here: churn is exactly the
    // workload where modulo routing starts leaving shards lopsided.
    let placement =
        placement_option(&parsed, "p2c").unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let link_model = link_option(&parsed).unwrap_or_else(|err| exit_with_usage(&err, USAGE));

    println!(
        "session_churn: {} initial sessions x {} base frames at {}x{} base, {} mix, \
         {} shards (queue depth {}, {} placement), {} waves retiring {} sessions each \
         ({} hard-cancelled)\n",
        config.sessions,
        config.frames,
        config.dimensions.width,
        config.dimensions.height,
        config.mix.name(),
        config.shards,
        config.queue_depth,
        placement.name(),
        config.waves,
        config.churn,
        config.hard_cancels,
    );

    let mut runtime = StreamRuntime::start(
        ServiceConfig::default()
            .with_shards(config.shards)
            .with_queue_depth(config.queue_depth)
            // The link replay consumes each session's framed wire stream
            // — including the partial streams of hard-cancelled sessions.
            .with_collect_wire(link_model.is_some())
            // Tracing is always on — it is allocation-free on the hot
            // path; `--trace` only controls the Chrome export.
            .with_trace(TraceConfig::default()),
        placement,
    );

    let mut next_index = 0usize;
    let mut admit = |runtime: &mut StreamRuntime, live: &mut VecDeque<usize>| {
        let session = SessionConfig::synthetic_mixed(
            next_index,
            config.mix,
            config.dimensions,
            config.frames,
        );
        next_index += 1;
        live.push_back(runtime.admit(session));
    };

    let mut live: VecDeque<usize> = VecDeque::new();
    for _ in 0..config.sessions {
        admit(&mut runtime, &mut live);
    }

    // retire() hands each report over for good; keep them so the final
    // table can cover the whole fleet, not just the survivors.
    let mut retired_reports: Vec<SessionReport> = Vec::new();
    for wave in 1..=config.waves {
        let mut retired_fps = Vec::new();
        for slot in 0..config.churn.min(live.len()) {
            let id = live.pop_front().expect("live fleet is non-empty");
            // The first `hard_cancels` retirements of each wave model a
            // user yanking the headset: remaining frames are dropped.
            let report = if slot < config.hard_cancels {
                runtime.retire_now(id)
            } else {
                runtime.retire(id)
            };
            assert_session_rates(&report);
            retired_fps.push(format!(
                "#{} {:.1} fps{}",
                report.session,
                report.throughput.frames_per_second(),
                if report.cancelled { " (cancelled)" } else { "" },
            ));
            retired_reports.push(report);
            admit(&mut runtime, &mut live);
        }
        let loads = runtime.shard_loads();
        let spread: Vec<String> = loads
            .iter()
            .map(|l| format!("{}:{:.2}Mpx", l.sessions, l.session_pixels as f64 / 1e6))
            .collect();
        println!(
            "wave {wave}: retired [{}], shard sessions:pixels [{}]",
            retired_fps.join(", "),
            spread.join(" "),
        );
    }

    let placement_name = runtime.placement_name();
    let mut report = runtime.shutdown();

    let mut all_sessions: Vec<&SessionReport> =
        retired_reports.iter().chain(&report.sessions).collect();
    all_sessions.sort_by_key(|session| session.session);
    println!("\nsession  scene      tier       shard  frames     kB out    fps   hit-rate");
    let mut tiers = TierAggregates::new();
    for session in &all_sessions {
        assert_session_rates(session);
        tiers.record(session.tier.name(), session.cancelled, &session.throughput);
        println!(
            "{:>7}  {:<9} {:<9} {:>5} {:>7}{} {:>9.1} {:>6.1} {:>9.0}%",
            session.session,
            session.scene.name(),
            session.tier.name(),
            session.shard,
            session.throughput.frames,
            if session.cancelled { "!" } else { " " },
            session.throughput.bytes_out as f64 / 1e3,
            session.throughput.frames_per_second(),
            session.cache.hit_rate() * 100.0,
        );
    }

    println!("\ntier       sessions  cancelled  frames      Mpx    fps   Mpx/s");
    for tier in tiers.entries() {
        println!(
            "{:<9} {:>9} {:>10} {:>7} {:>8.2} {:>6.1} {:>7.2}",
            tier.label,
            tier.sessions,
            tier.cancelled,
            tier.throughput.frames,
            tier.throughput.pixels as f64 / 1e6,
            tier.throughput.frames_per_second(),
            tier.throughput.megapixels_per_second(),
        );
    }

    println!("\nshard  sessions  frames  utilization   Mpx/s  queue-stalls");
    for shard in &report.shards {
        println!(
            "{:>5} {:>9} {:>7} {:>11.0}% {:>7.2} {:>13}",
            shard.shard,
            shard.sessions,
            shard.frames,
            shard.utilization() * 100.0,
            shard.megapixels_per_second(),
            shard.queue_stalls,
        );
    }

    let totals = &report.totals;
    let churn = &report.churn;
    println!("\naggregate:");
    println!("  frames encoded      {}", totals.frames);
    println!(
        "  pixels encoded      {:.2} Mpx",
        totals.pixels as f64 / 1e6
    );
    println!("  wall time           {:.3} s", totals.wall_seconds);
    println!(
        "  steady-state        {:.1} frames/s ({:.2} Mpx/s)",
        totals.frames_per_second(),
        totals.megapixels_per_second(),
    );
    println!(
        "  bytes in / out      {:.2} MB / {:.2} MB ({:.1}% reduction)",
        totals.bytes_in as f64 / 1e6,
        totals.bytes_out as f64 / 1e6,
        totals.bandwidth_reduction_percent(),
    );
    println!(
        "  churn               {} admitted / {} retired / {} completed / {} cancelled \
         (peak {} concurrent)",
        churn.admitted, churn.retired, churn.completed, churn.cancelled, churn.peak_concurrent,
    );
    if let Some(utilization) = report.utilization_summary() {
        println!(
            "  shard utilization   mean {:.0}% (min {:.0}%, max {:.0}%, spread {:.0}pp)",
            utilization.mean * 100.0,
            utilization.min * 100.0,
            utilization.max * 100.0,
            (utilization.max - utilization.min) * 100.0,
        );
    }
    if let Some(pixel_rate) = report.pixel_throughput_summary() {
        println!(
            "  shard pixel rate    mean {:.2} Mpx/s (min {:.2}, max {:.2}, spread {:.2})",
            pixel_rate.mean,
            pixel_rate.min,
            pixel_rate.max,
            pixel_rate.max - pixel_rate.min,
        );
    }
    assert_eq!(churn.completed, churn.admitted, "every stream must finish");
    assert_eq!(
        churn.cancelled,
        retired_reports.iter().filter(|r| r.cancelled).count() as u64,
        "cancellation telemetry must match the reports handed out"
    );
    assert!(totals.frames_per_second() > 0.0);

    let replay = link_model.map(|model| {
        // The traced replay seals the decode side as one more trace
        // thread, so the Chrome export shows clients next to the shards.
        let replay = if let Some(trace) = report.trace.as_mut() {
            let (replay, thread) = link::replay_sessions_traced(
                model,
                &all_sessions,
                trace.epoch,
                TraceConfig::default().ring_capacity,
            );
            trace.threads.push(thread);
            replay
        } else {
            link::replay_sessions(model, &all_sessions)
        };
        link::print_replay(&replay);
        replay
    });

    if let Some(trace) = report.trace.as_ref() {
        trace_export::print_stage_table(trace);
    }

    if let Some(path) = parsed.value("--json") {
        // Unlike the service report, the JSON covers the whole fleet:
        // retire()/retire_now() handed those reports over for good.
        let document = json::service_report_json(
            "session_churn",
            vec![
                ("sessions".to_string(), config.sessions.into()),
                ("frames".to_string(), u64::from(config.frames).into()),
                ("shards".to_string(), config.shards.into()),
                ("queue_depth".to_string(), config.queue_depth.into()),
                (
                    "width".to_string(),
                    u64::from(config.dimensions.width).into(),
                ),
                (
                    "height".to_string(),
                    u64::from(config.dimensions.height).into(),
                ),
                ("waves".to_string(), config.waves.into()),
                ("churn".to_string(), config.churn.into()),
                ("hard_cancels".to_string(), config.hard_cancels.into()),
                ("placement".to_string(), placement_name.into()),
                ("mix".to_string(), config.mix.name().into()),
                ("quick".to_string(), Json::Bool(parsed.has("--quick"))),
            ],
            &all_sessions,
            &report,
        );
        let document = match &replay {
            Some(replay) => json::with_field(document, "link", link::replay_json(replay)),
            None => document,
        };
        let document = match report.trace.as_ref() {
            Some(trace) => {
                json::with_field(document, "trace", trace_export::trace_section_json(trace))
            }
            None => document,
        };
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("\n(json written to {path})"),
            Err(err) => {
                eprintln!("error: could not write json to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = parsed.value("--trace") {
        let trace = report.trace.as_ref().expect("tracing is always enabled");
        let document = trace_export::chrome_trace_json(trace);
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("(chrome trace written to {path})"),
            Err(err) => {
                eprintln!("error: could not write trace to {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
