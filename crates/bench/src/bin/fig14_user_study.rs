//! Regenerates Fig. 14: the simulated psychophysical user study.

use pvc_bench::cli as common;

use pvc_bench::fig14_user_study;
use pvc_study::StudyConfig;

fn main() {
    let config = common::experiment_config_from_args();
    common::emit(&fig14_user_study(&config, StudyConfig::default()));
}
