//! Regenerates every table and figure in one run (used to fill
//! EXPERIMENTS.md). Pass `--quick` for a fast, reduced-scale run.

use pvc_bench::cli as common;

use pvc_bench::{
    fig10_bandwidth, fig11_bits_per_pixel, fig12_case_distribution, fig13_power_saving,
    fig14_user_study, fig15_tile_size, fig2_ellipsoids, measure_all_scenes, tab_ablation,
    tab_area_power, tab_psnr, tab_scc,
};
use pvc_study::StudyConfig;

fn main() {
    let config = common::experiment_config_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let measurements = measure_all_scenes(&config);
    common::emit(&fig2_ellipsoids());
    common::emit(&fig10_bandwidth(&measurements));
    common::emit(&fig11_bits_per_pixel(&measurements));
    common::emit(&fig12_case_distribution(&measurements));
    common::emit(&fig13_power_saving(&measurements));
    common::emit(&fig14_user_study(&config, StudyConfig::default()));
    let tile_sizes: &[u32] = if quick {
        &[4, 8, 16]
    } else {
        &[4, 6, 8, 10, 12, 16]
    };
    common::emit(&fig15_tile_size(&config, tile_sizes));
    common::emit(&tab_area_power());
    common::emit(&tab_psnr(&measurements));
    common::emit(&tab_ablation(&config));
    common::emit(&tab_scc(if quick { 4 } else { 6 }));
}
