//! Multi-session streaming throughput benchmark.
//!
//! Spins up N synthetic headset sessions on a sharded [`StreamService`]
//! and reports aggregate frames/sec, bytes in/out, cache hit-rates and
//! per-shard utilization / pixel throughput. `--mix` selects a
//! heterogeneous population (resolution tiers with different pixel costs
//! and frame budgets); the report then adds a per-tier table. `--quick`
//! runs a small configuration suitable for CI; the knobs below override
//! either preset.
//!
//! ```text
//! cargo run --release -p pvc_bench --bin stream_throughput -- --quick
//! cargo run --release -p pvc_bench --bin stream_throughput -- \
//!     --sessions 32 --frames 60 --shards 8 --mix bimodal --placement least-loaded
//! ```

use pvc_bench::cli::{
    exit_with_usage, link_option, mix_option, placement_option, ArgSpec, CliError, ParsedArgs,
};
use pvc_bench::json::{self, Json};
use pvc_bench::link;
use pvc_bench::trace_export;
use pvc_core::{EncoderConfig, TemporalConfig};
use pvc_frame::Dimensions;
use pvc_metrics::{TemporalTotals, TierAggregates};
use pvc_stream::{
    GazeModel, ServiceConfig, SessionConfig, SessionReport, StreamService, TraceConfig,
};

const SPEC: ArgSpec = ArgSpec {
    flags: &["--quick", "--temporal"],
    options: &[
        "--keyframe-interval",
        "--sessions",
        "--frames",
        "--shards",
        "--queue-depth",
        "--width",
        "--height",
        "--placement",
        "--mix",
        "--link",
        "--bandwidth-mbits",
        "--latency-ms",
        "--drop-prob",
        "--link-seed",
        "--json",
        "--trace",
    ],
};

const USAGE: &str = "[--quick] [--temporal] [--keyframe-interval N] \
                     [--sessions N] [--frames N] [--shards N] \
                     [--queue-depth N] [--width PX] [--height PX] \
                     [--placement static|p2c|least-loaded] \
                     [--mix uniform|bimodal|heavy-tail] \
                     [--link none|lossless|capped] [--bandwidth-mbits MBITS] \
                     [--latency-ms MS] [--drop-prob P] [--link-seed N] \
                     [--json PATH] [--trace PATH]";

/// Overriding any of these changes the encode workload and lifts the
/// temporal-savings bar: the ≥ 30% guarantee only holds for the
/// built-in `--quick` preset.
const TEMPORAL_BAR_KNOBS: &[&str] = &[
    "--sessions",
    "--frames",
    "--width",
    "--height",
    "--keyframe-interval",
    "--mix",
];

/// The workload, after applying the preset and any explicit overrides.
struct RunConfig {
    sessions: usize,
    frames: u32,
    shards: usize,
    queue_depth: usize,
    dimensions: Dimensions,
}

fn run_config(parsed: &ParsedArgs) -> Result<RunConfig, CliError> {
    let quick = parsed.has("--quick");
    let default_shards = pvc_parallel::available_threads().min(if quick { 4 } else { 8 });
    let mut config = if quick {
        RunConfig {
            sessions: 8,
            frames: 12,
            shards: default_shards,
            queue_depth: 4,
            dimensions: Dimensions::new(96, 96),
        }
    } else {
        RunConfig {
            sessions: 16,
            frames: 30,
            shards: default_shards,
            queue_depth: 4,
            dimensions: Dimensions::new(256, 256),
        }
    };
    if let Some(sessions) = parsed.positive_usize("--sessions")? {
        config.sessions = sessions;
    }
    if let Some(frames) = parsed.positive_u32("--frames")? {
        config.frames = frames;
    }
    if let Some(shards) = parsed.positive_usize("--shards")? {
        config.shards = shards;
    }
    if let Some(depth) = parsed.positive_usize("--queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(width) = parsed.positive_u32("--width")? {
        config.dimensions.width = width;
    }
    if let Some(height) = parsed.positive_u32("--height")? {
        config.dimensions.height = height;
    }
    Ok(config)
}

fn main() {
    let parsed = SPEC
        .parse(std::env::args().skip(1))
        .unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let config = run_config(&parsed).unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let placement =
        placement_option(&parsed, "static").unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let mix = mix_option(&parsed, "uniform").unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let link_model = link_option(&parsed).unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let temporal_on = parsed.has("--temporal");
    let keyframe_interval = parsed
        .positive_u32("--keyframe-interval")
        .unwrap_or_else(|err| exit_with_usage(&err, USAGE))
        .unwrap_or(TemporalConfig::default().keyframe_interval);

    println!(
        "stream_throughput: {} sessions x {} base frames at {}x{} base, {} mix, \
         {} shards (queue depth {}, {} placement), {}\n",
        config.sessions,
        config.frames,
        config.dimensions.width,
        config.dimensions.height,
        mix.name(),
        config.shards,
        config.queue_depth,
        placement.name(),
        if temporal_on {
            format!("temporal coding every {keyframe_interval} frames")
        } else {
            "intra-only coding".to_string()
        },
    );

    let mut encoder_config = EncoderConfig::default();
    if temporal_on {
        encoder_config = encoder_config.with_temporal(TemporalConfig::every(keyframe_interval));
    }
    let mut service = StreamService::new(
        ServiceConfig::default()
            .with_shards(config.shards)
            .with_queue_depth(config.queue_depth)
            .with_encoder(encoder_config)
            // The link replay consumes each session's framed wire stream.
            .with_collect_wire(link_model.is_some())
            // Tracing is always on — it is allocation-free on the hot
            // path; `--trace` only controls the Chrome export.
            .with_trace(TraceConfig::default()),
    );
    for index in 0..config.sessions {
        let mut session =
            SessionConfig::synthetic_mixed(index, mix, config.dimensions, config.frames);
        // Temporal runs use the fixation/smooth-pursuit workload: the
        // default fixation-saccade model on even sessions, smooth pursuit
        // on odd ones — the two dominant gaze behaviors whose inter-frame
        // coherence temporal coding exists to exploit. Intra-only runs
        // keep the historical all-fixation-saccade population so their
        // numbers stay comparable across PRs.
        if temporal_on && index % 2 == 1 {
            session = session.with_gaze_model(GazeModel::pursuit(1.5));
        }
        service.admit(session);
    }
    let placement_name = placement.name();
    let mut report = service.run_with_placement(placement);

    println!("session  scene      tier       frames     kB out    fps   hit-rate");
    for session in &report.sessions {
        pvc_bench::assert_session_rates(session);
        println!(
            "{:>7}  {:<9} {:<9} {:>7} {:>10.1} {:>6.1} {:>9.0}%",
            session.session,
            session.scene.name(),
            session.tier.name(),
            session.throughput.frames,
            session.throughput.bytes_out as f64 / 1e3,
            session.throughput.frames_per_second(),
            session.cache.hit_rate() * 100.0,
        );
    }

    let tiers: TierAggregates = report.tier_summary();
    println!("\ntier       sessions  frames      Mpx    fps   Mpx/s");
    for tier in tiers.entries() {
        println!(
            "{:<9} {:>9} {:>7} {:>8.2} {:>6.1} {:>7.2}",
            tier.label,
            tier.sessions,
            tier.throughput.frames,
            tier.throughput.pixels as f64 / 1e6,
            tier.throughput.frames_per_second(),
            tier.throughput.megapixels_per_second(),
        );
    }

    println!("\nshard  sessions  frames  utilization   Mpx/s  queue-stalls");
    for shard in &report.shards {
        println!(
            "{:>5} {:>9} {:>7} {:>11.0}% {:>7.2} {:>13}",
            shard.shard,
            shard.sessions,
            shard.frames,
            shard.utilization() * 100.0,
            shard.megapixels_per_second(),
            shard.queue_stalls,
        );
    }

    let totals = &report.totals;
    let cache = report.aggregate_cache();
    println!("\naggregate:");
    println!("  frames encoded      {}", totals.frames);
    println!(
        "  pixels encoded      {:.2} Mpx",
        totals.pixels as f64 / 1e6
    );
    println!("  wall time           {:.3} s", totals.wall_seconds);
    println!(
        "  throughput          {:.1} frames/s ({:.2} Mpx/s)",
        totals.frames_per_second(),
        totals.megapixels_per_second(),
    );
    println!(
        "  bytes in / out      {:.2} MB / {:.2} MB",
        totals.bytes_in as f64 / 1e6,
        totals.bytes_out as f64 / 1e6,
    );
    println!(
        "  traffic reduction   {:.1}% ({:.1} Mbit/s on the wire)",
        totals.bandwidth_reduction_percent(),
        totals.output_megabits_per_second(),
    );
    println!(
        "  map-cache hit rate  {:.0}% ({} hits / {} misses)",
        cache.hit_rate() * 100.0,
        cache.hits,
        cache.misses,
    );
    if let Some(utilization) = report.utilization_summary() {
        println!(
            "  shard utilization   mean {:.0}% (min {:.0}%, max {:.0}%, spread {:.0}pp)",
            utilization.mean * 100.0,
            utilization.min * 100.0,
            utilization.max * 100.0,
            (utilization.max - utilization.min) * 100.0,
        );
    }
    if let Some(pixel_rate) = report.pixel_throughput_summary() {
        println!(
            "  shard pixel rate    mean {:.2} Mpx/s (min {:.2}, max {:.2}, spread {:.2})",
            pixel_rate.mean,
            pixel_rate.min,
            pixel_rate.max,
            pixel_rate.max - pixel_rate.min,
        );
    }

    let mut temporal = TemporalTotals::default();
    for session in &report.sessions {
        temporal.merge(&session.temporal);
    }
    println!("\ntemporal coding:");
    println!(
        "  frames              {} key / {} predicted",
        temporal.keyframes, temporal.predicted_frames,
    );
    println!(
        "  tiles               {} skip / {} delta / {} intra",
        temporal.skip_tiles, temporal.delta_tiles, temporal.intra_tiles,
    );
    println!(
        "  bits                {} emitted vs {} intra-only ({:.1}% saved)",
        temporal.bits,
        temporal.intra_bits,
        temporal.reduction_over_intra_percent(),
    );
    // The acceptance bar for the temporal path: on the unmodified
    // `--quick` workload, inter-frame coding must save at least 30% of
    // the intra-only bits.
    let preset_workload = TEMPORAL_BAR_KNOBS
        .iter()
        .all(|knob| parsed.value(knob).is_none());
    if temporal_on && parsed.has("--quick") && preset_workload {
        assert!(
            temporal.reduction_over_intra_percent() >= 30.0,
            "temporal coding must save >= 30% of the intra-only bits on the \
             --quick workload (saved {:.1}%)",
            temporal.reduction_over_intra_percent(),
        );
    }

    let replay = link_model.map(|model| {
        let sessions: Vec<&SessionReport> = report.sessions.iter().collect();
        // The traced replay seals the decode side as one more trace
        // thread, so the Chrome export shows clients next to the shards.
        let replay = if let Some(trace) = report.trace.as_mut() {
            let (replay, thread) = link::replay_sessions_traced(
                model,
                &sessions,
                trace.epoch,
                TraceConfig::default().ring_capacity,
            );
            trace.threads.push(thread);
            replay
        } else {
            link::replay_sessions(model, &sessions)
        };
        link::print_replay(&replay);
        replay
    });

    if let Some(trace) = report.trace.as_ref() {
        trace_export::print_stage_table(trace);
    }

    if let Some(path) = parsed.value("--json") {
        let sessions: Vec<&SessionReport> = report.sessions.iter().collect();
        let document = json::service_report_json(
            "stream_throughput",
            vec![
                ("sessions".to_string(), config.sessions.into()),
                ("frames".to_string(), u64::from(config.frames).into()),
                ("shards".to_string(), config.shards.into()),
                ("queue_depth".to_string(), config.queue_depth.into()),
                (
                    "width".to_string(),
                    u64::from(config.dimensions.width).into(),
                ),
                (
                    "height".to_string(),
                    u64::from(config.dimensions.height).into(),
                ),
                ("placement".to_string(), placement_name.into()),
                ("mix".to_string(), mix.name().into()),
                ("quick".to_string(), Json::Bool(parsed.has("--quick"))),
                ("temporal".to_string(), Json::Bool(temporal_on)),
                (
                    "keyframe_interval".to_string(),
                    u64::from(keyframe_interval).into(),
                ),
            ],
            &sessions,
            &report,
        );
        let document = match &replay {
            Some(replay) => json::with_field(document, "link", link::replay_json(replay)),
            None => document,
        };
        let document = match report.trace.as_ref() {
            Some(trace) => {
                json::with_field(document, "trace", trace_export::trace_section_json(trace))
            }
            None => document,
        };
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("\n(json written to {path})"),
            Err(err) => {
                eprintln!("error: could not write json to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = parsed.value("--trace") {
        let trace = report.trace.as_ref().expect("tracing is always enabled");
        let document = trace_export::chrome_trace_json(trace);
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("(chrome trace written to {path})"),
            Err(err) => {
                eprintln!("error: could not write trace to {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
