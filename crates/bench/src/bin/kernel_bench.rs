//! Per-kernel microbenchmarks for the vectorized tile hot path.
//!
//! The stream benches measure the whole service; this binary isolates the
//! SoA lane kernels the tile pipeline is built from — the per-tile axis
//! adjustment, the sRGB quantizer in both directions, and the Base+Delta
//! frame pack — and reports each one's pixel rate, so a regression in a
//! single kernel is visible without re-deriving it from end-to-end
//! numbers. `--json PATH` writes the same numbers as a `BENCH_*.json`
//! artifact for cross-PR trend tracking.

use pvc_bdc::{BdConfig, BdEncoder, BitWriter};
use pvc_bench::cli::{exit_with_usage, ArgSpec};
use pvc_bench::json::{object, write_json, Json};
use pvc_color::{
    linear_to_srgb8_slice, srgb8_to_linear_slice, DiscriminationEllipsoid, DiscriminationModel,
    LinearRgb, RgbAxis, Srgb8, SyntheticDiscriminationModel,
};
use pvc_core::{adjust_tile_with, AdjustScratch};
use pvc_frame::{Dimensions, SrgbFrame, SrgbTileLanes};
use std::hint::black_box;
use std::time::Instant;

/// One kernel's measurement: pixels processed and wall time.
struct KernelResult {
    kernel: &'static str,
    pixels: u64,
    wall_seconds: f64,
}

impl KernelResult {
    fn megapixels_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.pixels as f64 / 1e6 / self.wall_seconds
    }
}

/// Deterministic pseudo-random stream (SplitMix64), so every run benches
/// identical data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform sample in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Times `iters` repetitions of `body`, which must return a value that
/// depends on the work so the optimizer cannot drop it.
fn time<T>(iters: u32, mut body: impl FnMut() -> T) -> f64 {
    // One untimed repetition warms caches and one-time tables (the sRGB
    // LUTs build on first use).
    black_box(body());
    let started = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    started.elapsed().as_secs_f64()
}

/// sRGB quantization, linear lanes → 8-bit codes (three channel lanes per
/// pixel, as the gamma stage runs it).
fn bench_srgb_encode(pixels_per_iter: usize, iters: u32, seed: &mut u64) -> KernelResult {
    let lanes: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..pixels_per_iter).map(|_| unit_f64(seed)).collect())
        .collect();
    let mut out = vec![0u8; pixels_per_iter];
    let wall_seconds = time(iters, || {
        let mut sum = 0u64;
        for lane in &lanes {
            linear_to_srgb8_slice(lane, &mut out);
            sum += u64::from(out[pixels_per_iter / 2]);
        }
        sum
    });
    KernelResult {
        kernel: "srgb_encode",
        pixels: pixels_per_iter as u64 * u64::from(iters),
        wall_seconds,
    }
}

/// sRGB expansion, 8-bit codes → linear lanes.
fn bench_srgb_decode(pixels_per_iter: usize, iters: u32, seed: &mut u64) -> KernelResult {
    let lanes: Vec<Vec<u8>> = (0..3)
        .map(|_| {
            (0..pixels_per_iter)
                .map(|_| (splitmix64(seed) & 0xff) as u8)
                .collect()
        })
        .collect();
    let mut out = vec![0.0f64; pixels_per_iter];
    let wall_seconds = time(iters, || {
        let mut sum = 0.0f64;
        for lane in &lanes {
            srgb8_to_linear_slice(lane, &mut out);
            sum += out[pixels_per_iter / 2];
        }
        sum
    });
    KernelResult {
        kernel: "srgb_decode",
        pixels: pixels_per_iter as u64 * u64::from(iters),
        wall_seconds,
    }
}

/// One synthetic tile: smooth colors with a deterministic jitter, the
/// shape the adjustment sees from rendered content.
fn synthetic_tile(pixels_per_tile: usize, seed: &mut u64) -> Vec<LinearRgb> {
    let base = LinearRgb::new(
        0.15 + 0.7 * unit_f64(seed),
        0.15 + 0.7 * unit_f64(seed),
        0.15 + 0.7 * unit_f64(seed),
    );
    (0..pixels_per_tile)
        .map(|_| {
            LinearRgb::new(
                (base.r + 0.02 * unit_f64(seed)).clamp(0.0, 1.0),
                (base.g + 0.02 * unit_f64(seed)).clamp(0.0, 1.0),
                (base.b + 0.02 * unit_f64(seed)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

/// Per-pixel discrimination-ellipsoid construction (the model evaluation
/// that feeds the adjustment; not a lane kernel, but timed so the adjust
/// stage's split is visible).
fn bench_ellipsoid_build(tiles: &[Vec<LinearRgb>], iters: u32) -> KernelResult {
    let model = SyntheticDiscriminationModel::default();
    let pixels_per_iter: usize = tiles.iter().map(Vec::len).sum();
    let mut scratch = AdjustScratch::new();
    let wall_seconds = time(iters, || {
        let mut sum = 0.0f64;
        for tile in tiles {
            scratch.pixels.clear();
            scratch.pixels.extend_from_slice(tile);
            scratch.build_ellipsoids(|p| model.ellipsoid(p, 12.0));
            sum += scratch.ellipsoids.len() as f64;
        }
        sum
    });
    KernelResult {
        kernel: "ellipsoid_build",
        pixels: pixels_per_iter as u64 * u64::from(iters),
        wall_seconds,
    }
}

/// The per-tile axis adjustment (extrema, HL/LH reduction, lane moves and
/// Δ-bit costing over both candidate axes), with ellipsoids prebuilt.
fn bench_adjust_axis(
    tiles: &[Vec<LinearRgb>],
    ellipsoids: &[Vec<DiscriminationEllipsoid>],
    iters: u32,
) -> KernelResult {
    let pixels_per_iter: usize = tiles.iter().map(Vec::len).sum();
    let mut scratch = AdjustScratch::new();
    let wall_seconds = time(iters, || {
        let mut sum = 0u64;
        for (tile, tile_ellipsoids) in tiles.iter().zip(ellipsoids) {
            scratch.pixels.clear();
            scratch.pixels.extend_from_slice(tile);
            scratch.ellipsoids.clear();
            scratch.ellipsoids.extend_from_slice(tile_ellipsoids);
            let outcome = adjust_tile_with(&mut scratch, &RgbAxis::OPTIMIZED);
            sum += outcome.adjusted_cost;
        }
        sum
    });
    KernelResult {
        kernel: "adjust_axis",
        pixels: pixels_per_iter as u64 * u64::from(iters),
        wall_seconds,
    }
}

/// Whole-frame Base+Delta pack: SoA tile gather, per-channel range over
/// lanes, serial bit-write.
fn bench_bd_pack(dimensions: Dimensions, iters: u32, seed: &mut u64) -> KernelResult {
    let pixels: Vec<Srgb8> = (0..dimensions.pixel_count())
        .map(|_| {
            let v = splitmix64(seed);
            // Locally smooth values: BD's typical input.
            let base = (v & 0x3f) as u8 + 96;
            Srgb8::new(base, base.wrapping_add(((v >> 8) & 3) as u8), base / 2)
        })
        .collect();
    let frame = SrgbFrame::from_pixels(dimensions, pixels).expect("pixel count matches");
    let encoder = BdEncoder::new(BdConfig::default());
    let mut writer = BitWriter::new();
    let mut gather = SrgbTileLanes::new();
    let wall_seconds = time(iters, || {
        let stats = encoder.encode_frame_into(&frame, &mut writer, &mut gather);
        stats.compressed_bits
    });
    KernelResult {
        kernel: "bd_pack",
        pixels: dimensions.pixel_count() as u64 * u64::from(iters),
        wall_seconds,
    }
}

/// The whole stream-mode frame encode (adjust → gamma → BD pack) on one
/// rendered scene frame, with the per-stage split from the encoder's own
/// stage clocks. The end-to-end number the service benches see per shard,
/// minus queueing and rendering.
fn bench_stream_frame(dimensions: Dimensions, iters: u32) -> Vec<KernelResult> {
    use pvc_core::{EncoderConfig, PerceptualEncoder, StreamScratch};
    use pvc_fovea::{DisplayGeometry, EccentricityMap, GazePoint};
    use pvc_frame::TileGrid;
    use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

    let renderer = SceneRenderer::new(SceneId::Office, SceneConfig::new(dimensions));
    let frame = renderer.render_linear(0);
    let config = EncoderConfig::default();
    let display = DisplayGeometry::quest2_like(dimensions);
    let grid = TileGrid::new(dimensions, config.tile_size);
    let map = EccentricityMap::per_tile(
        &display,
        &grid,
        GazePoint::center_of(dimensions),
        config.fovea,
    );
    let encoder = PerceptualEncoder::new(SyntheticDiscriminationModel::default(), config);
    let mut scratch = StreamScratch::new();
    let mut out = Vec::new();
    let mut stage_nanos = [0u64; 3];
    let wall_seconds = time(iters, || {
        let stats = encoder.encode_frame_stream_with_map_into(&frame, &map, &mut scratch, &mut out);
        let timing = scratch.last_timing();
        stage_nanos[0] += timing.adjust;
        stage_nanos[1] += timing.gamma;
        stage_nanos[2] += timing.bd_encode;
        stats.compression.compressed_bits
    });
    let pixels = dimensions.pixel_count() as u64 * u64::from(iters);
    // The warmup iteration also bumped the stage clocks; scale them to the
    // timed total so the split still sums to roughly the wall time.
    let timed_fraction = f64::from(iters) / f64::from(iters + 1);
    let mut results = vec![KernelResult {
        kernel: "stream_frame",
        pixels,
        wall_seconds,
    }];
    for (kernel, nanos) in [
        ("stream_adjust", stage_nanos[0]),
        ("stream_gamma", stage_nanos[1]),
        ("stream_bd", stage_nanos[2]),
    ] {
        results.push(KernelResult {
            kernel,
            pixels,
            wall_seconds: nanos as f64 * 1e-9 * timed_fraction,
        });
    }
    results
}

fn main() {
    const SPEC: ArgSpec = ArgSpec {
        flags: &["--quick"],
        options: &["--json"],
    };
    let parsed = match SPEC.parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(err) => exit_with_usage(&err, "[--quick] [--json PATH]"),
    };
    let quick = parsed.has("--quick");
    let (srgb_iters, adjust_iters, pack_iters) = if quick { (40, 20, 20) } else { (400, 200, 200) };
    let srgb_pixels = 1 << 16;
    let tile_count = 1024;
    let pixels_per_tile = 16;
    let pack_dimensions = Dimensions::new(256, 256);

    let mut seed = 0x5eed_c0de_u64;
    let tiles: Vec<Vec<LinearRgb>> = (0..tile_count)
        .map(|_| synthetic_tile(pixels_per_tile, &mut seed))
        .collect();
    let model = SyntheticDiscriminationModel::default();
    let ellipsoids: Vec<Vec<DiscriminationEllipsoid>> = tiles
        .iter()
        .map(|tile| tile.iter().map(|&p| model.ellipsoid(p, 12.0)).collect())
        .collect();

    let mut results = vec![
        bench_adjust_axis(&tiles, &ellipsoids, adjust_iters),
        bench_ellipsoid_build(&tiles, adjust_iters),
        bench_srgb_encode(srgb_pixels, srgb_iters, &mut seed),
        bench_srgb_decode(srgb_pixels, srgb_iters, &mut seed),
        bench_bd_pack(pack_dimensions, pack_iters, &mut seed),
    ];
    results.extend(bench_stream_frame(
        Dimensions::new(96, 96),
        adjust_iters * 4,
    ));

    println!(
        "kernel_bench: {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "kernel", "Mpx", "secs", "Mpx/s"
    );
    for r in &results {
        println!(
            "{:<16} {:>10.2} {:>10.3} {:>10.2}",
            r.kernel,
            r.pixels as f64 / 1e6,
            r.wall_seconds,
            r.megapixels_per_second()
        );
    }

    if let Some(path) = parsed.value("--json") {
        let kernels: Vec<Json> = results
            .iter()
            .map(|r| {
                object([
                    ("kernel", r.kernel.into()),
                    ("pixels", r.pixels.into()),
                    ("wall_seconds", r.wall_seconds.into()),
                    ("megapixels_per_second", r.megapixels_per_second().into()),
                ])
            })
            .collect();
        let json = object([
            ("bench", "kernel_bench".into()),
            ("parameters", object([("quick", quick.into())])),
            ("kernels", Json::Array(kernels)),
        ]);
        match write_json(std::path::Path::new(path), &json) {
            Ok(()) => println!("(json written to {path})"),
            Err(err) => {
                eprintln!("error: could not write json to {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
