//! Elastic control plane benchmark: admission gating, tier-shedding,
//! shard autoscaling and rebalancing migration under a burst arrival.
//!
//! Wraps a [`StreamRuntime`] in an [`ElasticController`] with a fleet
//! pixel budget sized so a burst of submissions overcommits it: the
//! first sessions admit, the next wait in the admission queue, the tail
//! is rejected outright. The control loop then runs at a fixed 1 ms
//! tick until the fleet drains, logging every non-idle tick as the
//! controller *trajectory*: queued sessions promoted as budget frees,
//! the most expensive session shed a resolution tier under sustained
//! overload, shards spawned/drained on the remaining-work hysteresis
//! band, and skew rebalanced by live migration.
//!
//! The workload leads with one Vision-class whale (the shed victim and
//! the migration mover) followed by baseline Quest-2 sessions. Under
//! the default presets every elasticity counter is exercised at least
//! once, and the run asserts that; overriding a workload or controller
//! knob lifts the assertions (the trajectory is then yours to shape).
//!
//! `--shards` pins a fixed fleet size and conflicts with the
//! autoscaler knobs (`--scale-up`, `--scale-down`, `--min-shards`,
//! `--max-shards`) — mixing them exits with a usage error.
//!
//! ```text
//! cargo run --release -p pvc_bench --bin fleet_elastic -- --quick
//! cargo run --release -p pvc_bench --bin fleet_elastic -- \
//!     --sessions 24 --frames 2000 --fleet-budget 80000 \
//!     --queue-capacity 4 --max-shards 4 --placement predictive
//! ```

use pvc_bench::assert_session_rates;
use pvc_bench::cli::{exit_with_usage, placement_option, ArgSpec, CliError, ParsedArgs};
use pvc_bench::json::{self, Json};
use pvc_bench::trace_export;
use pvc_frame::Dimensions;
use pvc_metrics::TierAggregates;
use pvc_stream::{
    ElasticConfig, ElasticController, ResolutionTier, ServiceConfig, SessionConfig, SessionProfile,
    SessionReport, StreamRuntime, TickActions, TraceConfig,
};
use std::time::Duration;

const SPEC: ArgSpec = ArgSpec {
    flags: &["--quick"],
    options: &[
        "--sessions",
        "--frames",
        "--width",
        "--height",
        "--shards",
        "--queue-depth",
        "--placement",
        "--fleet-budget",
        "--queue-capacity",
        "--scale-up",
        "--scale-down",
        "--min-shards",
        "--max-shards",
        "--shed-after",
        "--json",
        "--trace",
    ],
};

const USAGE: &str = "[--quick] [--sessions N] [--frames N] [--width PX] [--height PX] \
                     [--shards N] [--queue-depth N] \
                     [--placement static|p2c|least-loaded|predictive] \
                     [--fleet-budget PIXELS] [--queue-capacity N] \
                     [--scale-up PIXELS] [--scale-down PIXELS] \
                     [--min-shards N] [--max-shards N] [--shed-after TICKS] \
                     [--json PATH] [--trace PATH]";

/// Overriding any of these lifts the trajectory assertions: the
/// every-counter-fires guarantee only holds for the built-in presets.
const TRAJECTORY_KNOBS: &[&str] = &[
    "--sessions",
    "--frames",
    "--width",
    "--height",
    "--shards",
    "--fleet-budget",
    "--queue-capacity",
    "--scale-up",
    "--scale-down",
    "--min-shards",
    "--max-shards",
    "--shed-after",
];

/// The workload and controller shape, after the preset and overrides.
struct RunConfig {
    sessions: usize,
    frames: u32,
    dimensions: Dimensions,
    queue_depth: usize,
    /// `Some(n)` pins the fleet at `n` shards and disables autoscaling.
    fixed_shards: Option<usize>,
    fleet_budget: u64,
    queue_capacity: usize,
    scale_up: u64,
    scale_down: u64,
    min_shards: usize,
    max_shards: usize,
    shed_after: u32,
}

fn run_config(parsed: &ParsedArgs) -> Result<RunConfig, CliError> {
    // A fixed shard count and the autoscaler are mutually exclusive by
    // construction: pinning the fleet is exactly turning scaling off.
    if parsed.value("--shards").is_some() {
        for knob in ["--scale-up", "--scale-down", "--min-shards", "--max-shards"] {
            if parsed.value(knob).is_some() {
                return Err(CliError::Conflicting {
                    first: "--shards".to_string(),
                    second: knob.to_string(),
                    reason: "a fixed shard count disables the autoscaler".to_string(),
                });
            }
        }
    }

    let quick = parsed.has("--quick");
    let (mut sessions, mut frames, mut dimensions) = if quick {
        (8usize, 250u32, Dimensions::new(64, 64))
    } else {
        (16usize, 1_200u32, Dimensions::new(96, 96))
    };
    if let Some(value) = parsed.positive_usize("--sessions")? {
        sessions = value;
    }
    if let Some(value) = parsed.positive_u32("--frames")? {
        frames = value;
    }
    if let Some(value) = parsed.positive_u32("--width")? {
        dimensions.width = value;
    }
    if let Some(value) = parsed.positive_u32("--height")? {
        dimensions.height = value;
    }

    // The default budget fits the Vision-class whale plus two baseline
    // sessions exactly — the rest of the burst queues and then rejects.
    let whale = SessionProfile::for_tier(ResolutionTier::VisionClass, dimensions, frames);
    let quest_cost = dimensions.pixel_count() as u64;
    let mut config = RunConfig {
        sessions,
        frames,
        dimensions,
        queue_depth: 4,
        fixed_shards: parsed.positive_usize("--shards")?,
        fleet_budget: whale.pixel_cost() + 2 * quest_cost,
        queue_capacity: if quick { 2 } else { 3 },
        // Remaining-work thresholds sit far below the burst's initial
        // backlog (roughly budget x frames) and above its tail, so the
        // fleet expands early and contracts as the work drains.
        scale_up: 0,
        scale_down: 0,
        min_shards: 1,
        max_shards: if quick {
            2
        } else {
            pvc_parallel::available_threads().clamp(2, 4)
        },
        shed_after: if quick { 2 } else { 3 },
    };
    if let Some(depth) = parsed.positive_usize("--queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(budget) = parsed.u64_value("--fleet-budget")? {
        config.fleet_budget = budget;
    }
    if let Some(capacity) = parsed.positive_usize("--queue-capacity")? {
        config.queue_capacity = capacity;
    }
    config.scale_up = config.fleet_budget * u64::from(config.frames) / 4;
    config.scale_down = config.fleet_budget * u64::from(config.frames) / 8;
    if let Some(value) = parsed.u64_value("--scale-up")? {
        config.scale_up = value;
    }
    if let Some(value) = parsed.u64_value("--scale-down")? {
        config.scale_down = value;
    }
    if let Some(value) = parsed.positive_usize("--min-shards")? {
        config.min_shards = value;
    }
    if let Some(value) = parsed.positive_usize("--max-shards")? {
        config.max_shards = value.max(config.min_shards);
    }
    if let Some(value) = parsed.positive_u32("--shed-after")? {
        config.shed_after = value;
    }
    Ok(config)
}

/// One Vision-class whale (submitted first: the shed victim and the
/// migration mover) followed by baseline Quest-2 sessions.
fn burst(config: &RunConfig) -> Vec<SessionConfig> {
    let whale = SessionProfile::for_tier(
        ResolutionTier::VisionClass,
        config.dimensions,
        config.frames,
    );
    (0..config.sessions)
        .map(|index| {
            let session = SessionConfig::synthetic(index, config.dimensions, config.frames);
            if index == 0 {
                session.with_profile(whale)
            } else {
                session
            }
        })
        .collect()
}

fn tick_json(tick: u64, actions: &TickActions) -> Json {
    let verb = |value: Option<usize>| value.map_or(Json::Null, Json::from);
    json::object([
        ("tick", tick.into()),
        (
            "admitted",
            Json::Array(actions.admitted.iter().map(|&id| id.into()).collect()),
        ),
        ("shed", verb(actions.shed)),
        ("spawned", verb(actions.spawned)),
        ("drained", verb(actions.drained)),
        (
            "migrated",
            actions.migrated.map_or(Json::Null, |(session, from, to)| {
                Json::Array(vec![session.into(), from.into(), to.into()])
            }),
        ),
    ])
}

fn describe(actions: &TickActions) -> String {
    let mut parts = Vec::new();
    if !actions.admitted.is_empty() {
        parts.push(format!("promoted {:?}", actions.admitted));
    }
    if let Some(session) = actions.shed {
        parts.push(format!("shed #{session}"));
    }
    if let Some(shard) = actions.spawned {
        parts.push(format!("spawned shard {shard}"));
    }
    if let Some(shard) = actions.drained {
        parts.push(format!("drained shard {shard}"));
    }
    if let Some((session, from, to)) = actions.migrated {
        parts.push(format!("migrated #{session} {from}->{to}"));
    }
    parts.join(", ")
}

fn main() {
    let parsed = SPEC
        .parse(std::env::args().skip(1))
        .unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let config = run_config(&parsed).unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    // Predictive placement is the natural default here: the controller's
    // migration planner scores the same remaining-work gauge.
    let placement =
        placement_option(&parsed, "predictive").unwrap_or_else(|err| exit_with_usage(&err, USAGE));
    let placement_name = placement.name();

    let initial_shards = config.fixed_shards.unwrap_or(config.min_shards);
    println!(
        "fleet_elastic: burst of {} sessions x {} base frames at {}x{} base \
         (one vision-class whale), fleet budget {} px/frame, admission queue {}, \
         {} placement, {}",
        config.sessions,
        config.frames,
        config.dimensions.width,
        config.dimensions.height,
        config.fleet_budget,
        config.queue_capacity,
        placement_name,
        match config.fixed_shards {
            Some(shards) => format!("{shards} fixed shards"),
            None => format!(
                "shards {}..={} (scale up >{} / down <{} remaining px per shard), shed after {} overloaded ticks",
                config.min_shards,
                config.max_shards,
                config.scale_up,
                config.scale_down,
                config.shed_after,
            ),
        },
    );

    let runtime = StreamRuntime::start(
        ServiceConfig::default()
            .with_shards(initial_shards)
            .with_queue_depth(config.queue_depth)
            // Tracing is always on (allocation-free on the hot path);
            // `--trace` only controls the Chrome export.
            .with_trace(TraceConfig::default()),
        placement,
    );
    let mut elastic = ElasticConfig::new(config.fleet_budget)
        .with_queue_capacity(config.queue_capacity)
        .with_shed_after_ticks(config.shed_after);
    if config.fixed_shards.is_none() {
        elastic = elastic
            .with_scale_thresholds(config.scale_up, config.scale_down)
            .with_shard_bounds(config.min_shards, config.max_shards);
    }
    let mut controller = ElasticController::new(runtime, elastic);

    println!();
    for session in burst(&config) {
        let cost = session.pixel_cost();
        let verdict = controller.submit(session);
        println!("submit {cost:>6} px/frame -> {verdict:?}");
    }

    // The control loop: 1 ms ticks until the fleet drains and, in
    // autoscale mode, contracts back to the floor.
    let mut trajectory: Vec<(u64, TickActions)> = Vec::new();
    let mut ticks = 0u64;
    println!();
    loop {
        std::thread::sleep(Duration::from_millis(1));
        ticks += 1;
        let actions = controller.tick();
        if !actions.is_idle() {
            println!("tick {ticks:>4}: {}", describe(&actions));
            trajectory.push((ticks, actions));
        }
        let drained = controller.pending_len() == 0
            && controller.runtime().churn().in_flight() == 0
            && (config.fixed_shards.is_some()
                || controller.runtime().shard_count() == config.min_shards);
        if drained {
            break;
        }
        assert!(
            ticks < 120_000,
            "the fleet failed to drain within the tick budget"
        );
    }
    println!("(drained after {ticks} ticks)");

    let report = controller.shutdown();

    let mut all_sessions: Vec<&SessionReport> = report.sessions.iter().collect();
    all_sessions.sort_by_key(|session| session.session);
    println!("\nsession  scene      tier       shard  frames     kB out    fps   shed-from");
    let mut tiers = TierAggregates::new();
    for session in &all_sessions {
        assert_session_rates(session);
        tiers.record(session.tier.name(), session.cancelled, &session.throughput);
        println!(
            "{:>7}  {:<9} {:<9} {:>5} {:>7} {:>9.1} {:>6.1}   {}",
            session.session,
            session.scene.name(),
            session.tier.name(),
            session.shard,
            session.throughput.frames,
            session.throughput.bytes_out as f64 / 1e3,
            session.throughput.frames_per_second(),
            session.downgraded_from.map_or("-", |tier| tier.name()),
        );
    }

    println!("\ntier       sessions  frames      Mpx    fps   Mpx/s");
    for tier in tiers.entries() {
        println!(
            "{:<9} {:>9} {:>7} {:>8.2} {:>6.1} {:>7.2}",
            tier.label,
            tier.sessions,
            tier.throughput.frames,
            tier.throughput.pixels as f64 / 1e6,
            tier.throughput.frames_per_second(),
            tier.throughput.megapixels_per_second(),
        );
    }

    println!("\nshard  sessions  frames  utilization   Mpx/s");
    for shard in &report.shards {
        println!(
            "{:>5} {:>9} {:>7} {:>11.0}% {:>7.2}",
            shard.shard,
            shard.sessions,
            shard.frames,
            shard.utilization() * 100.0,
            shard.megapixels_per_second(),
        );
    }

    let elasticity = &report.elasticity;
    println!("\nelasticity:");
    println!("  rejected            {}", elasticity.rejected);
    println!("  queued              {}", elasticity.queued);
    println!("  shed                {}", elasticity.shed);
    println!("  migrated            {}", elasticity.migrated);
    println!("  shards spawned      {}", elasticity.shards_spawned);
    println!("  shards drained      {}", elasticity.shards_drained);

    let totals = &report.totals;
    let churn = &report.churn;
    let cores = pvc_parallel::available_threads();
    println!("\naggregate:");
    println!("  frames encoded      {}", totals.frames);
    println!("  wall time           {:.3} s", totals.wall_seconds);
    println!(
        "  steady-state        {:.1} frames/s ({:.2} Mpx/s)",
        totals.frames_per_second(),
        totals.megapixels_per_second(),
    );
    println!(
        "  churn               {} admitted / {} completed (peak {} concurrent)",
        churn.admitted, churn.completed, churn.peak_concurrent,
    );
    println!(
        "  sessions per core   {:.2} ({} completed / {} cores)",
        churn.completed as f64 / cores as f64,
        churn.completed,
        cores,
    );

    assert_eq!(
        churn.completed, churn.admitted,
        "every admitted stream must finish"
    );
    // Queued submissions are promoted later and end up admitted too, so
    // the burst partitions into (eventually) admitted and rejected.
    assert_eq!(
        churn.admitted + elasticity.rejected,
        config.sessions as u64,
        "every submission is eventually admitted or rejected exactly once"
    );

    // Under the built-in presets the trajectory is guaranteed: the burst
    // overcommits the budget (queue + reject), sustained overload sheds
    // the whale, the backlog expands the fleet and the drain contracts
    // it, and the post-spawn skew triggers a rebalancing migration.
    let organic = TRAJECTORY_KNOBS
        .iter()
        .all(|knob| parsed.value(knob).is_none());
    if organic {
        for (label, count) in [
            ("rejected", elasticity.rejected),
            ("queued", elasticity.queued),
            ("shed", elasticity.shed),
            ("migrated", elasticity.migrated),
            ("shards_spawned", elasticity.shards_spawned),
            ("shards_drained", elasticity.shards_drained),
        ] {
            assert!(
                count >= 1,
                "the preset trajectory must exercise `{label}` at least once"
            );
        }
    }

    if let Some(trace) = report.trace.as_ref() {
        trace_export::print_stage_table(trace);
    }

    if let Some(path) = parsed.value("--json") {
        let document = json::service_report_json(
            "fleet_elastic",
            vec![
                ("sessions".to_string(), config.sessions.into()),
                ("frames".to_string(), u64::from(config.frames).into()),
                (
                    "width".to_string(),
                    u64::from(config.dimensions.width).into(),
                ),
                (
                    "height".to_string(),
                    u64::from(config.dimensions.height).into(),
                ),
                ("fleet_budget".to_string(), config.fleet_budget.into()),
                ("queue_capacity".to_string(), config.queue_capacity.into()),
                (
                    "fixed_shards".to_string(),
                    config.fixed_shards.map_or(Json::Null, Json::from),
                ),
                ("scale_up".to_string(), config.scale_up.into()),
                ("scale_down".to_string(), config.scale_down.into()),
                ("min_shards".to_string(), config.min_shards.into()),
                ("max_shards".to_string(), config.max_shards.into()),
                (
                    "shed_after_ticks".to_string(),
                    u64::from(config.shed_after).into(),
                ),
                ("placement".to_string(), placement_name.into()),
                ("quick".to_string(), Json::Bool(parsed.has("--quick"))),
            ],
            &all_sessions,
            &report,
        );
        let document = json::with_field(
            document,
            "controller",
            json::object([
                ("tick_ms", 1u64.into()),
                ("ticks", ticks.into()),
                (
                    "trajectory",
                    Json::Array(
                        trajectory
                            .iter()
                            .map(|(tick, actions)| tick_json(*tick, actions))
                            .collect(),
                    ),
                ),
            ]),
        );
        let document = match report.trace.as_ref() {
            Some(trace) => {
                json::with_field(document, "trace", trace_export::trace_section_json(trace))
            }
            None => document,
        };
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("\n(json written to {path})"),
            Err(err) => {
                eprintln!("error: could not write json to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = parsed.value("--trace") {
        let trace = report.trace.as_ref().expect("tracing is always enabled");
        let document = trace_export::chrome_trace_json(trace);
        match json::write_json(std::path::Path::new(path), &document) {
            Ok(()) => println!("(chrome trace written to {path})"),
            Err(err) => {
                eprintln!("error: could not write trace to {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
