//! Regenerates fig13_power_saving from the paper's evaluation.

use pvc_bench::cli as common;

use pvc_bench::{fig13_power_saving, measure_all_scenes};

fn main() {
    let config = common::experiment_config_from_args();
    let measurements = measure_all_scenes(&config);
    common::emit(&fig13_power_saving(&measurements));
}
