//! Regenerates the ablation table over the encoder's design choices.

use pvc_bench::cli as common;
use pvc_bench::tab_ablation;

fn main() {
    let config = common::experiment_config_from_args();
    common::emit(&tab_ablation(&config));
}
