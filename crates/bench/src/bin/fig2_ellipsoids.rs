//! Regenerates the data behind Fig. 2: ellipsoid growth with eccentricity.

use pvc_bench::cli as common;

use pvc_bench::fig2_ellipsoids;

fn main() {
    common::emit(&fig2_ellipsoids());
}
