//! Regenerates Fig. 15: the tile-size sensitivity study.

use pvc_bench::cli as common;

use pvc_bench::fig15_tile_size;

fn main() {
    let config = common::experiment_config_from_args();
    common::emit(&fig15_tile_size(&config, &[4, 6, 8, 10, 12, 16]));
}
