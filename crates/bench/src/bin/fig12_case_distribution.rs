//! Regenerates fig12_case_distribution from the paper's evaluation.

use pvc_bench::cli as common;

use pvc_bench::{fig12_case_distribution, measure_all_scenes};

fn main() {
    let config = common::experiment_config_from_args();
    let measurements = measure_all_scenes(&config);
    common::emit(&fig12_case_distribution(&measurements));
}
