//! Criterion benchmarks that regenerate each figure of the paper at reduced
//! scale, so `cargo bench` exercises every experiment end to end.
//!
//! The printed series (CSV files and tables) come from the corresponding
//! `src/bin/` binaries; these benches measure how long each experiment takes
//! and keep the regeneration code exercised under `cargo bench --workspace`.

use criterion::{criterion_group, criterion_main, Criterion};
use pvc_bench::{
    fig10_bandwidth, fig11_bits_per_pixel, fig12_case_distribution, fig13_power_saving,
    fig14_user_study, fig15_tile_size, fig2_ellipsoids, measure_all_scenes, tab_area_power,
    tab_psnr, tab_scc, ExperimentConfig,
};
use pvc_study::StudyConfig;

fn bench_scene_measurement(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("measure_all_scenes_quick", |b| {
        b.iter(|| measure_all_scenes(&config))
    });
    let measurements = measure_all_scenes(&config);
    group.bench_function("fig10_bandwidth", |b| {
        b.iter(|| fig10_bandwidth(&measurements))
    });
    group.bench_function("fig11_bits_per_pixel", |b| {
        b.iter(|| fig11_bits_per_pixel(&measurements))
    });
    group.bench_function("fig12_case_distribution", |b| {
        b.iter(|| fig12_case_distribution(&measurements))
    });
    group.bench_function("fig13_power_saving", |b| {
        b.iter(|| fig13_power_saving(&measurements))
    });
    group.bench_function("fig14_user_study", |b| {
        b.iter(|| fig14_user_study(&config, StudyConfig::default()))
    });
    group.bench_function("fig15_tile_size_quick", |b| {
        b.iter(|| fig15_tile_size(&config, &[4, 8]))
    });
    group.bench_function("fig2_ellipsoids", |b| b.iter(fig2_ellipsoids));
    group.bench_function("tab_area_power", |b| b.iter(tab_area_power));
    group.bench_function("tab_psnr", |b| b.iter(|| tab_psnr(&measurements)));
    group.bench_function("tab_scc_codebook_4bit", |b| b.iter(|| tab_scc(4)));
    group.finish();
}

criterion_group!(paper_figures, bench_scene_measurement);
criterion_main!(paper_figures);
