//! Criterion throughput benchmarks of the encoder and its building blocks.
//!
//! These measure the software cost of the operations the paper accelerates
//! in hardware: per-tile color adjustment (what one CAU PE does), full-frame
//! perceptual encoding, plain BD encoding, and the discrimination-model
//! evaluation (what the GPU's RBF shader does).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pvc_bdc::{BdConfig, BdEncoder};
use pvc_color::{
    DiscriminationModel, LinearRgb, RbfConfig, RbfDiscriminationModel, RgbAxis,
    SyntheticDiscriminationModel,
};
use pvc_core::{adjust_tile, EncoderConfig, PerceptualEncoder};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::Dimensions;
use pvc_scenes::{SceneConfig, SceneId, SceneRenderer};

fn bench_tile_adjustment(c: &mut Criterion) {
    let model = SyntheticDiscriminationModel::default();
    let pixels: Vec<LinearRgb> = (0..16)
        .map(|i| {
            let t = f64::from(i) / 15.0;
            LinearRgb::new(0.4 + 0.02 * t, 0.5 + 0.015 * t, 0.3 + 0.03 * t)
        })
        .collect();
    let ellipsoids: Vec<_> = pixels.iter().map(|&p| model.ellipsoid(p, 25.0)).collect();
    c.bench_function("tile_adjustment_4x4", |b| {
        b.iter(|| adjust_tile(&pixels, &ellipsoids, &RgbAxis::OPTIMIZED))
    });
}

fn bench_discrimination_models(c: &mut Criterion) {
    let synthetic = SyntheticDiscriminationModel::default();
    let rbf = RbfDiscriminationModel::fit_to(&synthetic, RbfConfig::default()).expect("fit");
    let color = LinearRgb::new(0.4, 0.5, 0.3);
    c.bench_function("phi_synthetic", |b| {
        b.iter(|| synthetic.ellipsoid_axes(color, 22.0))
    });
    c.bench_function("phi_rbf_network", |b| {
        b.iter(|| rbf.ellipsoid_axes(color, 22.0))
    });
}

fn bench_frame_encoders(c: &mut Criterion) {
    let dims = Dimensions::new(192, 192);
    let frame = SceneRenderer::new(SceneId::Office, SceneConfig::new(dims)).render_linear(0);
    let srgb = frame.to_srgb();
    let display = DisplayGeometry::quest2_like(dims);
    let gaze = GazePoint::center_of(dims);
    let encoder = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default(),
    );
    let parallel = PerceptualEncoder::new(
        SyntheticDiscriminationModel::default(),
        EncoderConfig::default().with_threads(4),
    );
    let bd = BdEncoder::new(BdConfig::default());

    let mut group = c.benchmark_group("frame_192x192");
    group.sample_size(10);
    group.bench_function("ours_adjust_only", |b| {
        b.iter(|| encoder.adjust_frame(&frame, &display, gaze))
    });
    group.bench_function("ours_adjust_4_threads", |b| {
        b.iter(|| parallel.adjust_frame(&frame, &display, gaze))
    });
    group.bench_function("ours_full_pipeline", |b| {
        b.iter(|| encoder.encode_frame(&frame, &display, gaze))
    });
    group.bench_function("bd_baseline", |b| b.iter(|| bd.encode_frame(&srgb)));
    group.bench_function("bd_decode", |b| {
        b.iter_batched(
            || bd.encode_frame(&srgb),
            |e| e.decode(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    throughput,
    bench_tile_adjustment,
    bench_discrimination_models,
    bench_frame_encoders
);
criterion_main!(throughput);
