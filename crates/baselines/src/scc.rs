//! SCC — the Set-Cover Coding baseline (Sec. 5.3).
//!
//! SCC exploits color discrimination differently from the paper's encoder:
//! it finds a small subset `C` of sRGB colors whose discrimination
//! ellipsoids together cover the whole sRGB cube, then maps every pixel to
//! the index of a covering codebook color, costing `⌈log₂|C|⌉` bits per
//! pixel. The exact set cover is NP-complete; like the paper we use a greedy
//! heuristic.
//!
//! The paper runs the greedy algorithm over all 2²⁴ sRGB colors and reports
//! a ~32 K-color codebook (15 bits per pixel) with a 30 MB encoding table.
//! Running the full 2²⁴-cell greedy is possible but slow, so the lattice
//! resolution is configurable (DESIGN.md, substitution S4): the codec covers
//! a `2^(3·bits)` lattice and reports both the lattice codebook and the
//! extrapolated full-resolution table sizes.

use pvc_bdc::{CompressionStats, SizeBreakdown};
use pvc_color::{DiscriminationModel, LinearRgb, Srgb8};
use pvc_frame::SrgbFrame;
use serde::{Deserialize, Serialize};

/// Configuration of the SCC codec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SccConfig {
    /// Bits per channel of the color lattice the greedy cover runs over
    /// (8 = the full sRGB cube as in the paper; tests use 4–5).
    pub bits_per_channel: u8,
    /// Eccentricity (degrees) at which discrimination ellipsoids are taken.
    /// SCC has a single global table, so a representative peripheral
    /// eccentricity is used.
    pub eccentricity_deg: f64,
}

impl Default for SccConfig {
    fn default() -> Self {
        SccConfig {
            bits_per_channel: 6,
            eccentricity_deg: 30.0,
        }
    }
}

impl SccConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_channel` is zero or greater than 8, or the
    /// eccentricity is negative.
    pub fn new(bits_per_channel: u8, eccentricity_deg: f64) -> Self {
        assert!(
            (1..=8).contains(&bits_per_channel),
            "bits per channel must be between 1 and 8"
        );
        assert!(eccentricity_deg >= 0.0, "eccentricity must be non-negative");
        SccConfig {
            bits_per_channel,
            eccentricity_deg,
        }
    }
}

/// The SCC codec: a perceptual color codebook plus per-pixel indexing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SccCodec {
    config: SccConfig,
    codebook: Vec<Srgb8>,
    /// Maps every lattice cell to its codebook index.
    cell_to_index: Vec<u32>,
}

impl SccCodec {
    /// Builds the codebook with the greedy set-cover heuristic: walk the
    /// lattice, and whenever an uncovered cell is found, add it to the
    /// codebook and mark every cell inside its discrimination ellipsoid as
    /// covered.
    pub fn build<M: DiscriminationModel + ?Sized>(model: &M, config: SccConfig) -> Self {
        let bits = u32::from(config.bits_per_channel);
        let side = 1usize << bits;
        let cell_count = side * side * side;
        let mut cell_to_index = vec![u32::MAX; cell_count];
        let mut codebook = Vec::new();

        for cell in 0..cell_count {
            if cell_to_index[cell] != u32::MAX {
                continue;
            }
            let center = Self::cell_color(cell, bits);
            let index = codebook.len() as u32;
            codebook.push(center);
            // Cover every lattice cell whose color lies inside the ellipsoid
            // of the new codebook entry.
            let ellipsoid = model.ellipsoid(center.to_linear(), config.eccentricity_deg);
            let step = 1.0 / f64::from(side as u32);
            // Conservative per-channel reach of the ellipsoid in lattice cells.
            let reach = (ellipsoid
                .half_extent_along_axis(pvc_color::RgbAxis::Blue)
                .max(ellipsoid.half_extent_along_axis(pvc_color::RgbAxis::Red))
                .max(ellipsoid.half_extent_along_axis(pvc_color::RgbAxis::Green))
                / step)
                .ceil() as i64
                + 1;
            let (cr, cg, cb) = Self::cell_coords(cell, bits);
            for dr in -reach..=reach {
                for dg in -reach..=reach {
                    for db in -reach..=reach {
                        let (r, g, b) =
                            (i64::from(cr) + dr, i64::from(cg) + dg, i64::from(cb) + db);
                        if r < 0
                            || g < 0
                            || b < 0
                            || r >= side as i64
                            || g >= side as i64
                            || b >= side as i64
                        {
                            continue;
                        }
                        let neighbor =
                            ((r as usize) << (2 * bits)) | ((g as usize) << bits) | b as usize;
                        if cell_to_index[neighbor] != u32::MAX {
                            continue;
                        }
                        let color = Self::cell_color(neighbor, bits).to_linear();
                        if ellipsoid.contains_rgb(color, 1e-9) {
                            cell_to_index[neighbor] = index;
                        }
                    }
                }
            }
            // The entry always covers its own cell.
            cell_to_index[cell] = index;
        }

        SccCodec {
            config,
            codebook,
            cell_to_index,
        }
    }

    fn cell_coords(cell: usize, bits: u32) -> (u32, u32, u32) {
        let mask = (1u32 << bits) - 1;
        let b = cell as u32 & mask;
        let g = (cell as u32 >> bits) & mask;
        let r = (cell as u32 >> (2 * bits)) & mask;
        (r, g, b)
    }

    fn cell_color(cell: usize, bits: u32) -> Srgb8 {
        let (r, g, b) = Self::cell_coords(cell, bits);
        // Map the lattice coordinate to the center of its bucket in 0..=255.
        let expand = |v: u32| {
            if bits >= 8 {
                v as u8
            } else {
                let bucket = 256u32 >> bits;
                (v * bucket + bucket / 2).min(255) as u8
            }
        };
        Srgb8::new(expand(r), expand(g), expand(b))
    }

    fn cell_of_color(&self, color: Srgb8) -> usize {
        let bits = u32::from(self.config.bits_per_channel);
        let shrink = |v: u8| u32::from(v) >> (8 - bits);
        ((shrink(color.r) as usize) << (2 * bits))
            | ((shrink(color.g) as usize) << bits)
            | shrink(color.b) as usize
    }

    /// The codec configuration.
    pub fn config(&self) -> SccConfig {
        self.config
    }

    /// Number of colors in the codebook.
    pub fn codebook_size(&self) -> usize {
        self.codebook.len()
    }

    /// Bits needed to index one codebook entry (`⌈log₂|C|⌉`).
    pub fn bits_per_color(&self) -> u32 {
        (self.codebook.len().max(2) as f64).log2().ceil() as u32
    }

    /// Size in bytes of the encoding lookup table (one index per lattice
    /// cell, two bytes each as in the paper's 30 MB estimate for 2²⁴ cells).
    pub fn encode_table_bytes(&self) -> usize {
        self.cell_to_index.len() * 2
    }

    /// Size in bytes of the decoding table (three bytes per codebook entry).
    pub fn decode_table_bytes(&self) -> usize {
        self.codebook.len() * 3
    }

    /// Extrapolated encoding-table size if the lattice covered the full
    /// 2²⁴-color sRGB cube (the configuration the paper reports as 30 MB).
    pub fn full_resolution_encode_table_bytes(&self) -> usize {
        (1usize << 24) * 2
    }

    /// Encodes a single color: the index of the codebook entry covering it.
    pub fn encode_color(&self, color: Srgb8) -> u32 {
        self.cell_to_index[self.cell_of_color(color)]
    }

    /// Decodes an index back to its codebook color.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn decode_index(&self, index: u32) -> Srgb8 {
        self.codebook[index as usize]
    }

    /// The reconstruction a viewer would see for `color`.
    pub fn reconstruct(&self, color: Srgb8) -> Srgb8 {
        self.decode_index(self.encode_color(color))
    }

    /// Compression statistics of storing a frame as per-pixel codebook
    /// indices.
    pub fn frame_stats(&self, frame: &SrgbFrame) -> CompressionStats {
        let bits = u64::from(self.bits_per_color()) * frame.dimensions().pixel_count() as u64;
        CompressionStats::from_breakdown(
            frame.dimensions().pixel_count(),
            SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: bits,
            },
        )
    }

    /// Worst-case perceptual error of the codec: the maximum normalized
    /// ellipsoid distance between a lattice color and its reconstruction
    /// (≤ 1 means every lattice color is perceptually covered).
    pub fn worst_case_normalized_error<M: DiscriminationModel + ?Sized>(&self, model: &M) -> f64 {
        let bits = u32::from(self.config.bits_per_channel);
        let side = 1usize << bits;
        let mut worst: f64 = 0.0;
        for cell in 0..side * side * side {
            let color = Self::cell_color(cell, bits);
            let reconstructed = self.reconstruct(color);
            let ellipsoid =
                model.ellipsoid(reconstructed.to_linear(), self.config.eccentricity_deg);
            worst = worst.max(ellipsoid.normalized_distance_rgb(color.to_linear()));
        }
        worst
    }
}

/// Converts a linear color to the nearest lattice color; exposed for tests.
pub fn quantize_to_lattice(color: LinearRgb, bits_per_channel: u8) -> Srgb8 {
    let srgb = color.to_srgb8();
    let bits = u32::from(bits_per_channel);
    let shrink = |v: u8| u32::from(v) >> (8 - bits);
    let bucket = 256u32 >> bits;
    let expand = |v: u32| (v * bucket + bucket / 2).min(255) as u8;
    Srgb8::new(
        expand(shrink(srgb.r)),
        expand(shrink(srgb.g)),
        expand(shrink(srgb.b)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::SyntheticDiscriminationModel;
    use pvc_frame::Dimensions;

    fn small_codec() -> SccCodec {
        SccCodec::build(
            &SyntheticDiscriminationModel::default(),
            SccConfig::new(5, 30.0),
        )
    }

    #[test]
    fn every_color_is_covered() {
        let codec = small_codec();
        assert!(codec.cell_to_index.iter().all(|&i| i != u32::MAX));
    }

    #[test]
    fn codebook_is_smaller_than_the_lattice() {
        // The perceptual covering maps many lattice colors onto each codebook
        // entry. At test-sized lattices most of the reduction comes from the
        // elongated Blue direction of the ellipsoids, so the factor is modest
        // compared with the paper's full 2²⁴-color run.
        let codec = small_codec();
        let lattice = 1usize << (3 * 5);
        assert!(
            codec.codebook_size() < lattice,
            "codebook {} of {lattice}",
            codec.codebook_size()
        );
        assert!(codec.codebook_size() > lattice / 64);
    }

    #[test]
    fn bits_per_color_matches_codebook_size() {
        let codec = small_codec();
        let bits = codec.bits_per_color();
        assert!(1u64 << bits >= codec.codebook_size() as u64);
        assert!(1u64 << (bits - 1) < codec.codebook_size() as u64);
    }

    #[test]
    fn reconstruction_is_perceptually_close() {
        let codec = small_codec();
        let model = SyntheticDiscriminationModel::default();
        let worst = codec.worst_case_normalized_error(&model);
        assert!(worst <= 1.0 + 1e-6, "worst-case normalized error {worst}");
    }

    #[test]
    fn table_sizes_are_reported() {
        let codec = small_codec();
        assert_eq!(codec.encode_table_bytes(), (1usize << 15) * 2);
        assert_eq!(codec.decode_table_bytes(), codec.codebook_size() * 3);
        assert_eq!(codec.full_resolution_encode_table_bytes(), 32 * 1024 * 1024);
    }

    #[test]
    fn frame_stats_use_index_bits() {
        let codec = small_codec();
        let frame = SrgbFrame::filled(Dimensions::new(10, 10), Srgb8::new(128, 128, 128));
        let stats = codec.frame_stats(&frame);
        assert_eq!(
            stats.compressed_bits,
            u64::from(codec.bits_per_color()) * 100
        );
        assert!(stats.bandwidth_reduction_percent() > 0.0);
        assert!(stats.bandwidth_reduction_percent() < 100.0);
    }

    #[test]
    fn scc_is_worse_than_bd_on_smooth_content() {
        // The paper finds SCC clearly inferior to BD; verify the ordering on
        // a smooth gradient frame.
        let codec = small_codec();
        let dims = Dimensions::new(32, 32);
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let x = (i % 32) as u8;
                let y = (i / 32) as u8;
                Srgb8::new(100 + x / 4, 120 + y / 4, 90 + x / 8)
            })
            .collect();
        let frame = SrgbFrame::from_pixels(dims, pixels).unwrap();
        let bd = pvc_bdc::BdEncoder::new(pvc_bdc::BdConfig::default())
            .encode_frame(&frame)
            .stats();
        let scc = codec.frame_stats(&frame);
        assert!(scc.compressed_bits > bd.compressed_bits);
    }

    #[test]
    fn quantize_to_lattice_is_idempotent() {
        let c = LinearRgb::new(0.3, 0.6, 0.9);
        let q = quantize_to_lattice(c, 5);
        let q2 = quantize_to_lattice(q.to_linear(), 5);
        assert_eq!(q, q2);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let _ = SccConfig::new(0, 20.0);
    }

    #[test]
    fn higher_resolution_lattice_yields_larger_codebook() {
        let model = SyntheticDiscriminationModel::default();
        let coarse = SccCodec::build(&model, SccConfig::new(3, 20.0));
        let fine = SccCodec::build(&model, SccConfig::new(4, 20.0));
        assert!(fine.codebook_size() >= coarse.codebook_size());
    }
}
