//! Baseline codecs for the paper's evaluation (Sec. 5.3).
//!
//! The perceptual encoder is compared against four baselines in Fig. 10:
//!
//! * **NoCom** — uncompressed 24-bit frames ([`nocom_stats`]),
//! * **BD** — the real-time Base+Delta codec (provided by `pvc-bdc`),
//! * **PNG** — offline lossless image compression; re-implemented here as a
//!   PNG-style pipeline of per-scanline prediction filters followed by
//!   LZ77 + canonical Huffman entropy coding ([`png`]),
//! * **SCC** — the Set-Cover Coding alternative: a lookup table mapping each
//!   sRGB color to the nearest member of a small perceptually-sufficient
//!   codebook obtained with a greedy set-cover heuristic ([`scc`]).
//!
//! All baselines report sizes through the same [`CompressionStats`] type as
//! the main encoder so the figure harness can compare them directly.
//!
//! # Examples
//!
//! ```
//! use pvc_baselines::{nocom_stats, PngLikeCodec};
//! use pvc_color::Srgb8;
//! use pvc_frame::{Dimensions, SrgbFrame};
//!
//! let dims = Dimensions::new(16, 16);
//! let frame = SrgbFrame::filled(dims, Srgb8::new(40, 50, 60));
//! let png = PngLikeCodec::new().encode(&frame);
//! // A flat frame compresses far below the uncompressed NoCom baseline.
//! assert!(png.stats().compressed_bits < nocom_stats(dims).compressed_bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod huffman;
pub mod lz77;
pub mod png;
pub mod scc;

use pvc_bdc::{CompressionStats, SizeBreakdown};
use pvc_frame::Dimensions;

pub use huffman::{HuffmanCode, HuffmanError};
pub use lz77::{Lz77Token, Lz77Tokenizer};
pub use png::{PngLikeCodec, PngLikeEncoded};
pub use scc::{SccCodec, SccConfig};

/// Statistics of storing a frame uncompressed (the NoCom baseline): 24 bits
/// per pixel, all of it payload.
pub fn nocom_stats(dimensions: Dimensions) -> CompressionStats {
    let bits = dimensions.pixel_count() as u64 * 24;
    CompressionStats::from_breakdown(
        dimensions.pixel_count(),
        SizeBreakdown {
            base_bits: 0,
            metadata_bits: 0,
            delta_bits: bits,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nocom_is_exactly_24_bits_per_pixel() {
        let stats = nocom_stats(Dimensions::new(100, 50));
        assert_eq!(stats.compressed_bits, 100 * 50 * 24);
        assert_eq!(stats.bandwidth_reduction_percent(), 0.0);
        assert!((stats.bits_per_pixel() - 24.0).abs() < 1e-12);
    }
}
