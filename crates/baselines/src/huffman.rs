//! Canonical Huffman coding used by the PNG-style baseline.

use pvc_bdc::{BitReader, BitWriter, BitstreamError};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Maximum code length; codes are flattened if the optimal tree is deeper.
pub const MAX_CODE_BITS: u8 = 15;

/// Errors produced while building or using a Huffman code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// The frequency table was empty (no symbols to encode).
    NoSymbols,
    /// A symbol without a code was passed to the encoder.
    UnknownSymbol {
        /// The offending symbol.
        symbol: u16,
    },
    /// The decoder hit a bit pattern that matches no code.
    InvalidCode,
    /// The underlying bitstream ended prematurely.
    Bitstream(BitstreamError),
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::NoSymbols => write!(f, "cannot build a Huffman code over zero symbols"),
            HuffmanError::UnknownSymbol { symbol } => {
                write!(f, "symbol {symbol} has no Huffman code")
            }
            HuffmanError::InvalidCode => write!(f, "bit pattern matches no Huffman code"),
            HuffmanError::Bitstream(e) => write!(f, "bitstream error: {e}"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<BitstreamError> for HuffmanError {
    fn from(e: BitstreamError) -> Self {
        HuffmanError::Bitstream(e)
    }
}

/// A canonical Huffman code over symbols `0..n`.
///
/// The code is fully described by its per-symbol code lengths, which is what
/// gets written into the compressed stream header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuffmanCode {
    lengths: Vec<u8>,
    codes: Vec<u32>,
}

impl HuffmanCode {
    /// Builds a length-limited canonical code from symbol frequencies.
    ///
    /// Symbols with zero frequency get no code. If only one symbol occurs it
    /// is assigned a 1-bit code.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::NoSymbols`] when every frequency is zero.
    pub fn from_frequencies(frequencies: &[u64]) -> Result<Self, HuffmanError> {
        if frequencies.iter().all(|&f| f == 0) {
            return Err(HuffmanError::NoSymbols);
        }
        let mut scaled: Vec<u64> = frequencies.to_vec();
        loop {
            let lengths = tree_code_lengths(&scaled);
            let max = lengths.iter().copied().max().unwrap_or(0);
            if max <= MAX_CODE_BITS {
                return Ok(Self::from_lengths(lengths));
            }
            // Flatten the distribution and retry; this converges because the
            // frequencies approach uniformity.
            for f in &mut scaled {
                if *f > 0 {
                    *f = (*f / 2).max(1);
                }
            }
        }
    }

    /// Reconstructs the canonical code from per-symbol code lengths.
    pub fn from_lengths(lengths: Vec<u8>) -> Self {
        // Canonical assignment: sort symbols by (length, symbol).
        let mut symbols: Vec<u16> = (0..lengths.len() as u16)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &symbols {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            codes[s as usize] = code;
            code += 1;
            prev_len = len;
        }
        HuffmanCode { lengths, codes }
    }

    /// Per-symbol code lengths (zero for symbols without a code).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Number of symbols the code is defined over.
    pub fn symbol_count(&self) -> usize {
        self.lengths.len()
    }

    /// Writes the code for `symbol`.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::UnknownSymbol`] if the symbol has no code.
    pub fn encode(&self, symbol: u16, writer: &mut BitWriter) -> Result<(), HuffmanError> {
        let idx = symbol as usize;
        if idx >= self.lengths.len() || self.lengths[idx] == 0 {
            return Err(HuffmanError::UnknownSymbol { symbol });
        }
        writer.write_bits(self.codes[idx], u32::from(self.lengths[idx]));
        Ok(())
    }

    /// Reads one symbol from the bit reader.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::InvalidCode`] if no code matches, or a
    /// bitstream error if the stream ends.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, HuffmanError> {
        let mut code = 0u32;
        let mut len = 0u8;
        while len < MAX_CODE_BITS + 1 {
            code = (code << 1) | reader.read_bits(1)?;
            len += 1;
            // Linear scan is acceptable: the alphabet is small (≤ 300
            // symbols) and this codec is an offline baseline.
            for (s, (&l, &c)) in self.lengths.iter().zip(&self.codes).enumerate() {
                if l == len && c == code {
                    return Ok(s as u16);
                }
            }
        }
        Err(HuffmanError::InvalidCode)
    }

    /// Writes the code-length table (4 bits per symbol, length-limited).
    pub fn write_table(&self, writer: &mut BitWriter) {
        for &l in &self.lengths {
            writer.write_bits(u32::from(l), 4);
        }
    }

    /// Reads a code-length table of `symbol_count` entries and rebuilds the
    /// canonical code.
    ///
    /// # Errors
    ///
    /// Returns a bitstream error if the stream is too short.
    pub fn read_table(
        reader: &mut BitReader<'_>,
        symbol_count: usize,
    ) -> Result<Self, HuffmanError> {
        let mut lengths = Vec::with_capacity(symbol_count);
        for _ in 0..symbol_count {
            lengths.push(reader.read_bits(4)? as u8);
        }
        Ok(Self::from_lengths(lengths))
    }
}

/// Computes (unlimited) Huffman code lengths for the given frequencies using
/// the classic two-queue/heap construction.
fn tree_code_lengths(frequencies: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let active: Vec<usize> = (0..frequencies.len())
        .filter(|&i| frequencies[i] > 0)
        .collect();
    let mut lengths = vec![0u8; frequencies.len()];
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // parents[i] is the internal-node parent of node i (leaves first).
    let mut parents: Vec<Option<usize>> = vec![None; frequencies.len()];
    let mut heap = BinaryHeap::new();
    for &i in &active {
        heap.push(Node {
            weight: frequencies[i],
            id: i,
        });
    }
    let mut next_id = frequencies.len();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parents.push(None);
        let merged = next_id;
        next_id += 1;
        if a.id < parents.len() {
            parents[a.id] = Some(merged);
        }
        if b.id < parents.len() {
            parents[b.id] = Some(merged);
        }
        heap.push(Node {
            weight: a.weight + b.weight,
            id: merged,
        });
    }
    for &i in &active {
        let mut depth = 0u8;
        let mut node = i;
        while let Some(p) = parents[node] {
            depth += 1;
            node = p;
        }
        lengths[i] = depth.max(1);
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u16], alphabet: usize) {
        let mut freq = vec![0u64; alphabet];
        for &s in symbols {
            freq[s as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freq).expect("non-empty");
        let mut w = BitWriter::new();
        for &s in symbols {
            code.encode(s, &mut w).expect("known symbol");
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(code.decode(&mut r).expect("valid"), s);
        }
    }

    #[test]
    fn roundtrip_small_alphabet() {
        roundtrip(&[0, 1, 1, 2, 2, 2, 2, 3], 4);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[5, 5, 5, 5], 8);
    }

    #[test]
    fn roundtrip_byte_alphabet() {
        let symbols: Vec<u16> = (0..1000u32).map(|i| ((i * i + 7) % 200) as u16).collect();
        roundtrip(&symbols, 256);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut freq = vec![1u64; 8];
        freq[3] = 1000;
        let code = HuffmanCode::from_frequencies(&freq).unwrap();
        let l3 = code.lengths()[3];
        for (s, &l) in code.lengths().iter().enumerate() {
            if s != 3 {
                assert!(
                    l >= l3,
                    "symbol {s} has shorter code than the most frequent one"
                );
            }
        }
    }

    #[test]
    fn code_lengths_satisfy_kraft_inequality() {
        let freq: Vec<u64> = (1..=60).map(|i| i * i).collect();
        let code = HuffmanCode::from_frequencies(&freq).unwrap();
        let kraft: f64 = code
            .lengths()
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn skewed_distributions_respect_length_limit() {
        // Fibonacci-like frequencies force deep optimal trees; the builder
        // must flatten them to at most MAX_CODE_BITS.
        let mut freq = vec![0u64; 40];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freq.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let code = HuffmanCode::from_frequencies(&freq).unwrap();
        assert!(code.lengths().iter().all(|&l| l <= MAX_CODE_BITS));
    }

    #[test]
    fn table_roundtrip() {
        let freq: Vec<u64> = (0..16).map(|i| (i % 5) + 1).collect();
        let code = HuffmanCode::from_frequencies(&freq).unwrap();
        let mut w = BitWriter::new();
        code.write_table(&mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let rebuilt = HuffmanCode::read_table(&mut r, 16).unwrap();
        assert_eq!(rebuilt, code);
    }

    #[test]
    fn empty_frequencies_error() {
        assert_eq!(
            HuffmanCode::from_frequencies(&[0, 0, 0]).unwrap_err(),
            HuffmanError::NoSymbols
        );
    }

    #[test]
    fn unknown_symbol_errors() {
        let code = HuffmanCode::from_frequencies(&[1, 1]).unwrap();
        let mut w = BitWriter::new();
        assert!(matches!(
            code.encode(7, &mut w),
            Err(HuffmanError::UnknownSymbol { symbol: 7 })
        ));
    }
}
