//! A PNG-style lossless image codec.
//!
//! The paper's PNG baseline represents "offline lossless image compression
//! that is too compute-intensive for real-time framebuffer traffic". This
//! module re-implements that pipeline from scratch (DESIGN.md, substitution
//! S3): per-scanline prediction filters (None/Sub/Up/Average/Paeth, chosen
//! per row with the standard minimum-sum-of-absolute-differences heuristic),
//! followed by LZ77 tokenization and canonical Huffman entropy coding of the
//! token stream. The codec is numerically lossless and round-trips exactly.

use crate::huffman::{HuffmanCode, HuffmanError};
use crate::lz77::{Lz77Token, Lz77Tokenizer, MIN_MATCH};
use pvc_bdc::{BitReader, BitWriter, CompressionStats, SizeBreakdown};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame};
use serde::{Deserialize, Serialize};

const BYTES_PER_PIXEL: usize = 3;
/// Symbol used to introduce a back-reference in the entropy-coded stream.
const MATCH_SYMBOL: u16 = 256;
const ALPHABET: usize = 257;

/// A compressed frame produced by [`PngLikeCodec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PngLikeEncoded {
    dimensions: Dimensions,
    bytes: Vec<u8>,
}

impl PngLikeEncoded {
    /// Dimensions of the original frame.
    pub fn dimensions(&self) -> Dimensions {
        self.dimensions
    }

    /// The compressed byte stream (headers included).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Compression statistics comparable with the other codecs.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::from_breakdown(
            self.dimensions.pixel_count(),
            SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: self.bytes.len() as u64 * 8,
            },
        )
    }
}

/// The PNG-style codec.
///
/// # Examples
///
/// ```
/// use pvc_baselines::PngLikeCodec;
/// use pvc_color::Srgb8;
/// use pvc_frame::{Dimensions, SrgbFrame};
///
/// let frame = SrgbFrame::filled(Dimensions::new(16, 16), Srgb8::new(10, 200, 30));
/// let codec = PngLikeCodec::new();
/// let encoded = codec.encode(&frame);
/// assert_eq!(codec.decode(&encoded)?, frame);
/// # Ok::<(), pvc_baselines::HuffmanError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PngLikeCodec;

impl PngLikeCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        PngLikeCodec
    }

    /// Compresses a frame.
    pub fn encode(&self, frame: &SrgbFrame) -> PngLikeEncoded {
        let filtered = filter_frame(frame);
        let tokens = Lz77Tokenizer::new().tokenize(&filtered);

        // Symbol frequencies over literals + the match marker.
        let mut freq = vec![0u64; ALPHABET];
        for t in &tokens {
            match t {
                Lz77Token::Literal(b) => freq[*b as usize] += 1,
                Lz77Token::Match { .. } => freq[MATCH_SYMBOL as usize] += 1,
            }
        }
        let code = HuffmanCode::from_frequencies(&freq)
            .unwrap_or_else(|_| HuffmanCode::from_lengths(vec![1; 2]));

        let mut w = BitWriter::new();
        w.write_bits(frame.width(), 16);
        w.write_bits(frame.height(), 16);
        w.write_bits(filtered.len() as u32, 32);
        code.write_table(&mut w);
        for t in &tokens {
            match *t {
                Lz77Token::Literal(b) => {
                    code.encode(u16::from(b), &mut w)
                        .expect("literal has a code");
                }
                Lz77Token::Match { length, distance } => {
                    code.encode(MATCH_SYMBOL, &mut w)
                        .expect("match marker has a code");
                    w.write_bits(u32::from(length) - MIN_MATCH as u32, 8);
                    w.write_bits(u32::from(distance), 16);
                }
            }
        }
        PngLikeEncoded {
            dimensions: frame.dimensions(),
            bytes: w.finish(),
        }
    }

    /// Decompresses a frame.
    ///
    /// # Errors
    ///
    /// Returns a [`HuffmanError`] when the stream is truncated or corrupt.
    pub fn decode(&self, encoded: &PngLikeEncoded) -> Result<SrgbFrame, HuffmanError> {
        let mut r = BitReader::new(&encoded.bytes);
        let width = r.read_bits(16)?;
        let height = r.read_bits(16)?;
        let byte_count = r.read_bits(32)? as usize;
        let code = HuffmanCode::read_table(&mut r, ALPHABET)?;
        let mut tokens = Vec::new();
        let mut produced = 0usize;
        while produced < byte_count {
            let symbol = code.decode(&mut r)?;
            if symbol == MATCH_SYMBOL {
                let length = r.read_bits(8)? as usize + MIN_MATCH;
                let distance = r.read_bits(16)? as u16;
                tokens.push(Lz77Token::Match {
                    length: length as u16,
                    distance,
                });
                produced += length;
            } else {
                tokens.push(Lz77Token::Literal(symbol as u8));
                produced += 1;
            }
        }
        let filtered = Lz77Tokenizer::new().expand(&tokens);
        Ok(unfilter_frame(Dimensions::new(width, height), &filtered))
    }
}

/// PNG filter types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Filter {
    None,
    Sub,
    Up,
    Average,
    Paeth,
}

impl Filter {
    const ALL: [Filter; 5] = [
        Filter::None,
        Filter::Sub,
        Filter::Up,
        Filter::Average,
        Filter::Paeth,
    ];

    fn id(self) -> u8 {
        match self {
            Filter::None => 0,
            Filter::Sub => 1,
            Filter::Up => 2,
            Filter::Average => 3,
            Filter::Paeth => 4,
        }
    }

    fn from_id(id: u8) -> Filter {
        match id {
            1 => Filter::Sub,
            2 => Filter::Up,
            3 => Filter::Average,
            4 => Filter::Paeth,
            _ => Filter::None,
        }
    }
}

fn paeth_predictor(a: u8, b: u8, c: u8) -> u8 {
    let (a, b, c) = (i32::from(a), i32::from(b), i32::from(c));
    let p = a + b - c;
    let pa = (p - a).abs();
    let pb = (p - b).abs();
    let pc = (p - c).abs();
    if pa <= pb && pa <= pc {
        a as u8
    } else if pb <= pc {
        b as u8
    } else {
        c as u8
    }
}

fn predict(filter: Filter, left: u8, up: u8, up_left: u8) -> u8 {
    match filter {
        Filter::None => 0,
        Filter::Sub => left,
        Filter::Up => up,
        Filter::Average => ((u16::from(left) + u16::from(up)) / 2) as u8,
        Filter::Paeth => paeth_predictor(left, up, up_left),
    }
}

fn row_bytes(frame: &SrgbFrame, y: u32) -> Vec<u8> {
    let mut row = Vec::with_capacity(frame.width() as usize * BYTES_PER_PIXEL);
    for x in 0..frame.width() {
        let p = frame.pixel(x, y);
        row.extend_from_slice(&p.to_array());
    }
    row
}

fn filter_row(row: &[u8], prev: Option<&[u8]>, filter: Filter) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len());
    for (i, &value) in row.iter().enumerate() {
        let left = if i >= BYTES_PER_PIXEL {
            row[i - BYTES_PER_PIXEL]
        } else {
            0
        };
        let up = prev.map_or(0, |p| p[i]);
        let up_left = if i >= BYTES_PER_PIXEL {
            prev.map_or(0, |p| p[i - BYTES_PER_PIXEL])
        } else {
            0
        };
        out.push(value.wrapping_sub(predict(filter, left, up, up_left)));
    }
    out
}

fn unfilter_row(filtered: &[u8], prev: Option<&[u8]>, filter: Filter) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(filtered.len());
    for (i, &value) in filtered.iter().enumerate() {
        let left = if i >= BYTES_PER_PIXEL {
            out[i - BYTES_PER_PIXEL]
        } else {
            0
        };
        let up = prev.map_or(0, |p| p[i]);
        let up_left = if i >= BYTES_PER_PIXEL {
            prev.map_or(0, |p| p[i - BYTES_PER_PIXEL])
        } else {
            0
        };
        out.push(value.wrapping_add(predict(filter, left, up, up_left)));
    }
    out
}

/// Cost heuristic from the PNG specification: sum of the filtered bytes
/// interpreted as signed magnitudes.
fn filter_cost(filtered: &[u8]) -> u64 {
    filtered
        .iter()
        .map(|&b| u64::from((b as i8).unsigned_abs()))
        .sum()
}

fn filter_frame(frame: &SrgbFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        frame.height() as usize * (1 + frame.width() as usize * BYTES_PER_PIXEL),
    );
    let mut prev_row: Option<Vec<u8>> = None;
    for y in 0..frame.height() {
        let row = row_bytes(frame, y);
        let (best_filter, best_bytes) = Filter::ALL
            .into_iter()
            .map(|f| {
                let filtered = filter_row(&row, prev_row.as_deref(), f);
                (f, filtered)
            })
            .min_by_key(|(_, filtered)| filter_cost(filtered))
            .expect("five filters");
        out.push(best_filter.id());
        out.extend_from_slice(&best_bytes);
        prev_row = Some(row);
    }
    out
}

fn unfilter_frame(dimensions: Dimensions, data: &[u8]) -> SrgbFrame {
    let row_len = dimensions.width as usize * BYTES_PER_PIXEL;
    let mut frame = SrgbFrame::filled(dimensions, Srgb8::default());
    let mut prev_row: Option<Vec<u8>> = None;
    for y in 0..dimensions.height {
        let offset = y as usize * (row_len + 1);
        let filter = Filter::from_id(data[offset]);
        let row = unfilter_row(
            &data[offset + 1..offset + 1 + row_len],
            prev_row.as_deref(),
            filter,
        );
        for x in 0..dimensions.width {
            let i = x as usize * BYTES_PER_PIXEL;
            frame.set_pixel(x, y, Srgb8::new(row[i], row[i + 1], row[i + 2]));
        }
        prev_row = Some(row);
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_frame::Dimensions;
    use rand::{Rng, SeedableRng};

    fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized")
    }

    fn gradient_frame(width: u32, height: u32) -> SrgbFrame {
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let x = i as u32 % width;
                let y = i as u32 / width;
                Srgb8::new((x * 2) as u8, (y * 3) as u8, ((x + y) / 2) as u8)
            })
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized")
    }

    #[test]
    fn roundtrip_flat_frame() {
        let frame = SrgbFrame::filled(Dimensions::new(20, 10), Srgb8::new(7, 77, 177));
        let codec = PngLikeCodec::new();
        assert_eq!(codec.decode(&codec.encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn roundtrip_gradient_frame() {
        let frame = gradient_frame(33, 17);
        let codec = PngLikeCodec::new();
        assert_eq!(codec.decode(&codec.encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn roundtrip_random_frame() {
        let frame = random_frame(25, 14, 99);
        let codec = PngLikeCodec::new();
        assert_eq!(codec.decode(&codec.encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn gradient_compresses_much_better_than_random() {
        let codec = PngLikeCodec::new();
        let gradient = codec.encode(&gradient_frame(64, 64)).stats();
        let random = codec.encode(&random_frame(64, 64, 3)).stats();
        assert!(gradient.bandwidth_reduction_percent() > 60.0);
        assert!(gradient.bandwidth_reduction_percent() > random.bandwidth_reduction_percent());
    }

    #[test]
    fn random_data_does_not_explode_in_size() {
        let codec = PngLikeCodec::new();
        let stats = codec.encode(&random_frame(32, 32, 5)).stats();
        assert!(
            stats.bits_per_pixel() < 27.0,
            "bpp {}",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn paeth_predictor_matches_reference_cases() {
        assert_eq!(paeth_predictor(10, 20, 15), 10 + 20 - 15);
        // Ties prefer a, then b.
        assert_eq!(paeth_predictor(5, 5, 5), 5);
        assert_eq!(paeth_predictor(0, 255, 128), 128);
    }

    #[test]
    fn filters_roundtrip_per_row() {
        let row: Vec<u8> = (0..30).map(|i| (i * 17 % 256) as u8).collect();
        let prev: Vec<u8> = (0..30).map(|i| (i * 5 % 256) as u8).collect();
        for f in Filter::ALL {
            let filtered = filter_row(&row, Some(&prev), f);
            let restored = unfilter_row(&filtered, Some(&prev), f);
            assert_eq!(restored, row, "filter {f:?} did not roundtrip");
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let frame = gradient_frame(16, 16);
        let codec = PngLikeCodec::new();
        let mut encoded = codec.encode(&frame);
        encoded.bytes.truncate(encoded.bytes.len() / 3);
        assert!(codec.decode(&encoded).is_err());
    }
}
