//! Greedy LZ77 tokenization used by the PNG-style baseline.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Minimum match length worth emitting (shorter matches cost more than
/// literals).
pub const MIN_MATCH: usize = 4;
/// Maximum match length (mirrors DEFLATE's 258).
pub const MAX_MATCH: usize = 258;
/// Size of the back-reference window (mirrors DEFLATE's 32 KiB).
pub const WINDOW_SIZE: usize = 32 * 1024;
/// How many candidate positions per hash bucket are tried before giving up.
const MAX_CHAIN: usize = 32;

/// One LZ77 token: either a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lz77Token {
    /// A single literal byte.
    Literal(u8),
    /// A match of `length` bytes starting `distance` bytes back.
    Match {
        /// Number of bytes copied (between [`MIN_MATCH`] and [`MAX_MATCH`]).
        length: u16,
        /// Distance back into the already-decoded output (1..=[`WINDOW_SIZE`]).
        distance: u16,
    },
}

/// Greedy LZ77 tokenizer with a hash-chain match finder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz77Tokenizer;

impl Lz77Tokenizer {
    /// Creates a tokenizer.
    pub fn new() -> Self {
        Lz77Tokenizer
    }

    /// Tokenizes `data` into literals and matches.
    pub fn tokenize(&self, data: &[u8]) -> Vec<Lz77Token> {
        let mut tokens = Vec::new();
        let mut table: HashMap<[u8; MIN_MATCH], Vec<usize>> = HashMap::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= data.len() {
                let key: [u8; MIN_MATCH] = data[pos..pos + MIN_MATCH].try_into().expect("sized");
                if let Some(candidates) = table.get(&key) {
                    for &candidate in candidates.iter().rev().take(MAX_CHAIN) {
                        if pos - candidate > WINDOW_SIZE {
                            break;
                        }
                        let len = match_length(data, candidate, pos);
                        if len > best_len {
                            best_len = len;
                            best_dist = pos - candidate;
                            if len >= MAX_MATCH {
                                break;
                            }
                        }
                    }
                }
            }
            if best_len >= MIN_MATCH {
                tokens.push(Lz77Token::Match {
                    length: best_len as u16,
                    distance: best_dist as u16,
                });
                // Insert hash entries for the skipped region (sparsely, to
                // bound the cost on long runs).
                let end = pos + best_len;
                let mut p = pos;
                while p + MIN_MATCH <= data.len() && p < end {
                    insert(&mut table, data, p);
                    p += 1 + best_len / 16;
                }
                pos = end;
            } else {
                if pos + MIN_MATCH <= data.len() {
                    insert(&mut table, data, pos);
                }
                tokens.push(Lz77Token::Literal(data[pos]));
                pos += 1;
            }
        }
        tokens
    }

    /// Expands tokens back into the original bytes.
    ///
    /// # Panics
    ///
    /// Panics if a match refers further back than the already-produced
    /// output (which a well-formed token stream never does).
    pub fn expand(&self, tokens: &[Lz77Token]) -> Vec<u8> {
        let mut out = Vec::new();
        for token in tokens {
            match *token {
                Lz77Token::Literal(b) => out.push(b),
                Lz77Token::Match { length, distance } => {
                    let distance = distance as usize;
                    assert!(
                        distance >= 1 && distance <= out.len(),
                        "invalid match distance"
                    );
                    let start = out.len() - distance;
                    for i in 0..length as usize {
                        let byte = out[start + i];
                        out.push(byte);
                    }
                }
            }
        }
        out
    }
}

fn insert(table: &mut HashMap<[u8; MIN_MATCH], Vec<usize>>, data: &[u8], pos: usize) {
    let key: [u8; MIN_MATCH] = data[pos..pos + MIN_MATCH].try_into().expect("sized");
    let entry = table.entry(key).or_default();
    entry.push(pos);
    if entry.len() > 4 * MAX_CHAIN {
        entry.drain(..2 * MAX_CHAIN);
    }
}

fn match_length(data: &[u8], candidate: usize, pos: usize) -> usize {
    let limit = (data.len() - pos).min(MAX_MATCH);
    let mut len = 0;
    while len < limit && data[candidate + len] == data[pos + len] {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<Lz77Token> {
        let tok = Lz77Tokenizer::new();
        let tokens = tok.tokenize(data);
        assert_eq!(tok.expand(&tokens), data);
        tokens
    }

    #[test]
    fn roundtrip_empty_and_short() {
        assert!(roundtrip(&[]).is_empty());
        roundtrip(&[1]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn roundtrip_repetitive_data_uses_matches() {
        let data: Vec<u8> = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        let tokens = roundtrip(&data);
        assert!(tokens.iter().any(|t| matches!(t, Lz77Token::Match { .. })));
        assert!(tokens.len() < data.len());
    }

    #[test]
    fn roundtrip_long_zero_run() {
        let data = vec![0u8; 10_000];
        let tokens = roundtrip(&data);
        assert!(
            tokens.len() < 100,
            "a zero run should collapse into few tokens"
        );
    }

    #[test]
    fn roundtrip_pseudorandom_data() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_expansion() {
        // Classic LZ77 trick: a match can overlap its own output.
        let tok = Lz77Tokenizer::new();
        let tokens = vec![
            Lz77Token::Literal(7),
            Lz77Token::Match {
                length: 10,
                distance: 1,
            },
        ];
        assert_eq!(tok.expand(&tokens), vec![7u8; 11]);
    }

    #[test]
    fn match_lengths_and_distances_are_bounded() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.push((i % 7) as u8);
        }
        let tokens = Lz77Tokenizer::new().tokenize(&data);
        for t in &tokens {
            if let Lz77Token::Match { length, distance } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(*length as usize)));
                assert!((1..=WINDOW_SIZE).contains(&(*distance as usize)));
            }
        }
        assert_eq!(Lz77Tokenizer::new().expand(&tokens), data);
    }
}
