//! The simulated study protocol and its outcome.

use crate::observer::{ObserverPopulation, PopulationConfig};
use pvc_color::DiscriminationModel;
use pvc_fovea::EccentricityMap;
use pvc_frame::{LinearFrame, TileGrid};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-pixel artifact evidence of one scene shown to the participants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneTrial {
    /// Scene name (matches the paper's figure labels).
    pub scene_name: String,
    /// Normalized ellipsoid distance of every adjusted pixel under the
    /// population model (0 = untouched, 1 = moved to the threshold surface).
    pub distances: Vec<f64>,
    /// Relative luminance of the original pixels, used to model the weaker
    /// reliability of the threshold model in dark conditions (Sec. 6.3).
    pub luminances: Vec<f64>,
}

impl SceneTrial {
    /// Builds a trial from the original and adjusted frames of a scene.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions or do not match the
    /// eccentricity map's tiling.
    pub fn from_frames<M: DiscriminationModel + ?Sized>(
        scene_name: impl Into<String>,
        original: &LinearFrame,
        adjusted: &LinearFrame,
        eccentricity: &EccentricityMap,
        model: &M,
    ) -> Self {
        let (distances, luminances) = artifact_visibility(original, adjusted, eccentricity, model);
        SceneTrial {
            scene_name: scene_name.into(),
            distances,
            luminances,
        }
    }
}

/// Computes, for every pixel, the normalized ellipsoid distance between the
/// original and adjusted colors under the population model, along with the
/// original pixel luminance. Distances ≤ 1 are imperceptible to the average
/// observer by construction of the encoder.
///
/// # Panics
///
/// Panics if the two frames differ in dimensions or the eccentricity map was
/// built with a different tile size than expected.
pub fn artifact_visibility<M: DiscriminationModel + ?Sized>(
    original: &LinearFrame,
    adjusted: &LinearFrame,
    eccentricity: &EccentricityMap,
    model: &M,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        original.dimensions(),
        adjusted.dimensions(),
        "frame dimensions must match"
    );
    let grid = TileGrid::new(original.dimensions(), eccentricity.tile_size());
    let mut distances = vec![0.0; original.dimensions().pixel_count()];
    let mut luminances = vec![0.0; original.dimensions().pixel_count()];
    for tile in grid.tiles() {
        let ecc = eccentricity.tile_eccentricity(tile);
        for dy in 0..tile.height {
            for dx in 0..tile.width {
                let x = tile.x + dx;
                let y = tile.y + dy;
                let idx = (y * original.width() + x) as usize;
                let orig = original.pixel(x, y);
                let adj = adjusted.pixel(x, y);
                luminances[idx] = orig.luminance();
                if orig != adj {
                    let ellipsoid = model.ellipsoid(orig, ecc);
                    distances[idx] = ellipsoid.normalized_distance_rgb(adj);
                }
            }
        }
    }
    (distances, luminances)
}

/// Configuration of the simulated study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// The observer population.
    pub population: PopulationConfig,
    /// RNG seed for both population sampling and per-trial detection draws.
    pub seed: u64,
    /// Slope of the psychometric detection function: the probability of
    /// reporting an artifact is `1 − exp(−slope · visible_fraction)`.
    pub detection_slope: f64,
    /// Extra sensitivity in dark regions, modelling the threshold model's
    /// weaker accuracy at low luminance (Sec. 6.3): effective distance is
    /// `distance × (1 + dark_model_error × (1 − luminance))`.
    pub dark_model_error: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            population: PopulationConfig::default(),
            seed: 2024,
            detection_slope: 40.0,
            dark_model_error: 0.35,
        }
    }
}

/// Result of one scene of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneOutcome {
    /// Scene name.
    pub scene_name: String,
    /// Number of participants who reported an artifact.
    pub noticed: usize,
    /// Number of participants who did not (the quantity plotted in Fig. 14).
    pub did_not_notice: usize,
    /// Mean fraction of pixels visible across observers.
    pub mean_visible_fraction: f64,
}

/// Result of the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Per-scene outcomes, in the order the trials were supplied.
    pub scenes: Vec<SceneOutcome>,
    /// Number of participants.
    pub observers: usize,
}

impl StudyOutcome {
    /// Average number of participants (across scenes) who noticed an
    /// artifact; the paper reports 2.8 of 11.
    pub fn mean_noticed(&self) -> f64 {
        if self.scenes.is_empty() {
            return 0.0;
        }
        self.scenes.iter().map(|s| s.noticed as f64).sum::<f64>() / self.scenes.len() as f64
    }

    /// Standard deviation of the per-scene noticed counts.
    pub fn std_dev_noticed(&self) -> f64 {
        if self.scenes.is_empty() {
            return 0.0;
        }
        let mean = self.mean_noticed();
        (self
            .scenes
            .iter()
            .map(|s| (s.noticed as f64 - mean).powi(2))
            .sum::<f64>()
            / self.scenes.len() as f64)
            .sqrt()
    }
}

/// The simulated user study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStudy {
    config: StudyConfig,
    population: ObserverPopulation,
}

impl UserStudy {
    /// Creates a study, sampling its observer population deterministically
    /// from the configuration seed.
    pub fn new(config: StudyConfig) -> Self {
        let population = ObserverPopulation::sample(config.population, config.seed);
        UserStudy { config, population }
    }

    /// The sampled observer population.
    pub fn population(&self) -> &ObserverPopulation {
        &self.population
    }

    /// Runs the study over a set of scene trials.
    pub fn run(&self, trials: &[SceneTrial]) -> StudyOutcome {
        let mut scenes = Vec::with_capacity(trials.len());
        for (trial_index, trial) in trials.iter().enumerate() {
            let mut noticed = 0usize;
            let mut visible_sum = 0.0;
            for observer in self.population.observers() {
                let threshold = observer.visibility_threshold();
                let visible = trial
                    .distances
                    .iter()
                    .zip(&trial.luminances)
                    .filter(|&(&d, &lum)| {
                        d * (1.0 + self.config.dark_model_error * (1.0 - lum.clamp(0.0, 1.0)))
                            > threshold
                    })
                    .count();
                let fraction = visible as f64 / trial.distances.len().max(1) as f64;
                visible_sum += fraction;
                let p_detect = 1.0 - (-self.config.detection_slope * fraction).exp();
                let mut rng = ChaCha8Rng::seed_from_u64(
                    self.config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((trial_index as u64) << 32)
                        .wrapping_add(observer.id as u64),
                );
                if rng.gen::<f64>() < p_detect {
                    noticed += 1;
                }
            }
            scenes.push(SceneOutcome {
                scene_name: trial.scene_name.clone(),
                noticed,
                did_not_notice: self.population.len() - noticed,
                mean_visible_fraction: visible_sum / self.population.len() as f64,
            });
        }
        StudyOutcome {
            scenes,
            observers: self.population.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trial(
        name: &str,
        visible_level: f64,
        luminance: f64,
        pixels: usize,
    ) -> SceneTrial {
        SceneTrial {
            scene_name: name.to_string(),
            distances: vec![visible_level; pixels],
            luminances: vec![luminance; pixels],
        }
    }

    #[test]
    fn unchanged_frames_are_never_noticed() {
        let study = UserStudy::new(StudyConfig::default());
        let outcome = study.run(&[synthetic_trial("flat", 0.0, 0.5, 1000)]);
        assert_eq!(outcome.scenes[0].noticed, 0);
        assert_eq!(outcome.scenes[0].did_not_notice, outcome.observers);
        assert_eq!(outcome.mean_noticed(), 0.0);
    }

    #[test]
    fn gross_violations_are_always_noticed() {
        // Distances far outside every observer's ellipsoid are seen by all.
        let study = UserStudy::new(StudyConfig::default());
        let outcome = study.run(&[synthetic_trial("broken", 10.0, 0.5, 1000)]);
        assert_eq!(outcome.scenes[0].noticed, outcome.observers);
    }

    #[test]
    fn within_threshold_adjustments_are_rarely_noticed() {
        // The encoder keeps distances ≤ 1; only unusually sensitive
        // observers should report artifacts.
        let study = UserStudy::new(StudyConfig::default());
        let outcome = study.run(&[synthetic_trial("typical", 0.85, 0.5, 10_000)]);
        assert!(
            outcome.scenes[0].noticed <= outcome.observers / 2,
            "too many observers noticed: {}",
            outcome.scenes[0].noticed
        );
    }

    #[test]
    fn dark_scenes_are_noticed_at_least_as_often() {
        let study = UserStudy::new(StudyConfig::default());
        let outcome = study.run(&[
            synthetic_trial("bright", 0.9, 0.6, 10_000),
            synthetic_trial("dark", 0.9, 0.03, 10_000),
        ]);
        assert!(outcome.scenes[1].noticed >= outcome.scenes[0].noticed);
        assert!(outcome.scenes[1].mean_visible_fraction >= outcome.scenes[0].mean_visible_fraction);
    }

    #[test]
    fn study_is_deterministic() {
        let trials = vec![
            synthetic_trial("a", 0.8, 0.4, 5000),
            synthetic_trial("b", 0.95, 0.1, 5000),
        ];
        let a = UserStudy::new(StudyConfig::default()).run(&trials);
        let b = UserStudy::new(StudyConfig::default()).run(&trials);
        assert_eq!(a, b);
    }

    #[test]
    fn outcome_statistics_are_consistent() {
        let trials = vec![
            synthetic_trial("a", 0.9, 0.3, 5000),
            synthetic_trial("b", 0.0, 0.5, 5000),
        ];
        let outcome = UserStudy::new(StudyConfig::default()).run(&trials);
        for scene in &outcome.scenes {
            assert_eq!(scene.noticed + scene.did_not_notice, outcome.observers);
        }
        assert!(outcome.mean_noticed() >= 0.0);
        assert!(outcome.std_dev_noticed() >= 0.0);
    }
}
