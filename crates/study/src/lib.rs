//! Simulated psychophysical user study (Sec. 5.2 and Fig. 14).
//!
//! The paper runs an IRB-approved study on 11 human participants who watch
//! the six VR scenes with and without the perceptual compression and report
//! whether they notice artifacts. Human subjects are obviously out of scope
//! for a code reproduction, so this crate simulates the study (DESIGN.md,
//! substitution S6):
//!
//! * each simulated observer draws a personal *sensitivity scale*: their
//!   discrimination ellipsoids are the population model's scaled by a factor
//!   sampled around 1.0 (a low factor models the "color-sensitive visual
//!   artist" of Sec. 6.3),
//! * for every scene the per-pixel adjustment is expressed as a normalized
//!   ellipsoid distance under the *population* model; a pixel is visible to
//!   an observer when that distance exceeds their personal threshold,
//! * an observer reports an artifact with a probability that saturates with
//!   the fraction of visible pixels (a simple psychometric function).
//!
//! The output is Fig. 14's quantity: for each scene, how many of the
//! observers did **not** notice any artifact.
//!
//! # Examples
//!
//! ```
//! use pvc_study::{StudyConfig, UserStudy};
//!
//! // The default configuration reproduces the paper's 11-participant
//! // cohort; the sampled population is deterministic in the seed.
//! let study = UserStudy::new(StudyConfig::default());
//! assert_eq!(study.population().len(), 11);
//! let outcome = study.run(&[]);
//! assert_eq!(outcome.mean_noticed(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod observer;
pub mod study;

pub use calibration::{calibrate_observer, CalibrationConfig, CalibrationResult};
pub use observer::{Observer, ObserverPopulation, PopulationConfig};
pub use study::{artifact_visibility, SceneTrial, StudyConfig, StudyOutcome, UserStudy};
