//! Simulated per-user threshold calibration (Sec. 6.5).
//!
//! The paper proposes accommodating individual observers by running a short
//! per-user calibration when the headset is first used, producing a personal
//! ellipsoid scale that the encoder then applies. This module simulates that
//! procedure with a classic 1-up/1-down staircase: the (simulated) user is
//! repeatedly shown a reference color and a probe displaced along a DKL
//! direction, and the displacement converges to the user's own threshold.
//! The ratio between the converged threshold and the population model's
//! prediction is the calibration scale handed to
//! [`pvc_color::SyntheticDiscriminationModel::with_scale`].

use crate::observer::Observer;
use pvc_color::{DiscriminationModel, LinearRgb, SyntheticDiscriminationModel};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the staircase calibration procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Number of staircase reversals before the procedure stops.
    pub reversals: usize,
    /// Multiplicative step applied to the probe displacement after each
    /// response (e.g. 1.25 = ±25%).
    pub step_ratio: f64,
    /// Eccentricity (degrees) at which the calibration colors are shown.
    pub eccentricity_deg: f64,
    /// Lapse rate: probability that the simulated user answers randomly.
    pub lapse_rate: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            reversals: 12,
            step_ratio: 1.25,
            eccentricity_deg: 15.0,
            lapse_rate: 0.02,
        }
    }
}

/// Result of calibrating one observer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// The observer that was calibrated.
    pub observer: Observer,
    /// Estimated personal scale relative to the population model (1.0 means
    /// the population model fits this user exactly).
    pub estimated_scale: f64,
    /// Number of trials the staircase needed.
    pub trials: usize,
}

impl CalibrationResult {
    /// Relative error of the estimate against the observer's true scale.
    pub fn relative_error(&self) -> f64 {
        (self.estimated_scale - self.observer.sensitivity_scale).abs()
            / self.observer.sensitivity_scale
    }
}

/// Runs the staircase calibration for one observer.
///
/// The observer's "true" threshold surface is the population model scaled by
/// their [`Observer::sensitivity_scale`]; each trial asks whether a probe at
/// the current displacement is distinguishable from the reference, and the
/// displacement converges onto the point of subjective equality.
pub fn calibrate_observer(
    observer: Observer,
    config: CalibrationConfig,
    seed: u64,
) -> CalibrationResult {
    // The probe is displaced along the Blue-axis extrema vector of the
    // population ellipsoid for a mid-gray reference; expressing its
    // magnitude as a multiple of the population threshold makes the
    // staircase independent of the absolute ellipsoid size.
    let population = SyntheticDiscriminationModel::default();
    let reference = LinearRgb::new(0.45, 0.45, 0.45);
    debug_assert!(
        population
            .ellipsoid(reference, config.eccentricity_deg)
            .half_extent_along_axis(pvc_color::RgbAxis::Blue)
            > 0.0
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (observer.id as u64).wrapping_mul(0x9E37));

    // The probe moves along the ellipsoid's Blue-axis extrema vector; its
    // magnitude is expressed as a multiple of the *population* threshold.
    let mut magnitude = 2.0f64;
    let mut last_visible: Option<bool> = None;
    let mut reversal_magnitudes = Vec::new();
    let mut trials = 0usize;
    while reversal_magnitudes.len() < config.reversals && trials < 400 {
        trials += 1;
        // Normalized distance of the probe under the observer's personal
        // ellipsoid: magnitude² / scale² (the probe lies along a principal
        // chord of the population ellipsoid).
        let personal_distance = (magnitude / observer.sensitivity_scale).powi(2);
        let truly_visible = personal_distance > 1.0;
        let visible = if rng.gen::<f64>() < config.lapse_rate {
            rng.gen::<bool>()
        } else {
            truly_visible
        };
        if let Some(prev) = last_visible {
            if prev != visible {
                reversal_magnitudes.push(magnitude);
            }
        }
        last_visible = Some(visible);
        if visible {
            magnitude /= config.step_ratio;
        } else {
            magnitude *= config.step_ratio;
        }
    }
    // Discard the first reversals (standard practice) and average the rest.
    let usable = &reversal_magnitudes[reversal_magnitudes.len().min(2)..];
    let estimated_scale = if usable.is_empty() {
        magnitude
    } else {
        usable.iter().sum::<f64>() / usable.len() as f64
    };
    CalibrationResult {
        observer,
        estimated_scale,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer(scale: f64) -> Observer {
        Observer {
            id: 3,
            sensitivity_scale: scale,
        }
    }

    #[test]
    fn calibration_recovers_the_true_scale() {
        for &scale in &[0.6, 0.9, 1.0, 1.3, 1.8] {
            let result = calibrate_observer(observer(scale), CalibrationConfig::default(), 7);
            assert!(
                result.relative_error() < 0.25,
                "scale {scale}: estimated {} ({} trials)",
                result.estimated_scale,
                result.trials
            );
        }
    }

    #[test]
    fn calibration_is_deterministic_for_a_seed() {
        let a = calibrate_observer(observer(1.1), CalibrationConfig::default(), 42);
        let b = calibrate_observer(observer(1.1), CalibrationConfig::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn more_sensitive_observers_get_smaller_scales() {
        let sensitive = calibrate_observer(observer(0.7), CalibrationConfig::default(), 5);
        let tolerant = calibrate_observer(observer(1.6), CalibrationConfig::default(), 5);
        assert!(sensitive.estimated_scale < tolerant.estimated_scale);
    }

    #[test]
    fn staircase_terminates_even_with_high_lapse_rate() {
        let config = CalibrationConfig {
            lapse_rate: 0.3,
            ..CalibrationConfig::default()
        };
        let result = calibrate_observer(observer(1.0), config, 11);
        assert!(result.trials <= 400);
        assert!(result.estimated_scale > 0.0);
    }
}
