//! Simulated observers and the observer population.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One simulated study participant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observer {
    /// Participant identifier (0-based).
    pub id: usize,
    /// Personal sensitivity scale: the observer's discrimination ellipsoids
    /// are the population model's scaled by this factor. Values below 1.0
    /// describe observers who discriminate colors *better* than average
    /// (e.g. the visual artist of Sec. 6.3).
    pub sensitivity_scale: f64,
}

impl Observer {
    /// The observer's visibility threshold on the population-normalized
    /// ellipsoid distance: a color shift is visible to this observer when
    /// the normalized distance under the population model exceeds this
    /// value (scaling the semi-axes by `s` scales the normalized distance by
    /// `1/s²`).
    pub fn visibility_threshold(&self) -> f64 {
        self.sensitivity_scale * self.sensitivity_scale
    }

    /// True if this observer is markedly more sensitive than average.
    pub fn is_color_sensitive(&self) -> bool {
        self.sensitivity_scale < 0.85
    }
}

/// Configuration of the observer population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of participants (11 in the paper).
    pub observers: usize,
    /// Mean of the sensitivity-scale distribution.
    pub mean_scale: f64,
    /// Standard deviation of the sensitivity-scale distribution.
    pub scale_std_dev: f64,
    /// Fraction of the population that is markedly color-sensitive (drawn
    /// with a scale well below the mean).
    pub color_sensitive_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            observers: 11,
            mean_scale: 1.05,
            scale_std_dev: 0.12,
            color_sensitive_fraction: 0.1,
        }
    }
}

/// A deterministic, seeded population of observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserverPopulation {
    observers: Vec<Observer>,
}

impl ObserverPopulation {
    /// Samples a population from its configuration and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for zero observers or non-positive
    /// scale parameters.
    pub fn sample(config: PopulationConfig, seed: u64) -> Self {
        assert!(
            config.observers > 0,
            "the study needs at least one observer"
        );
        assert!(
            config.mean_scale > 0.0 && config.scale_std_dev >= 0.0,
            "invalid scale parameters"
        );
        assert!(
            (0.0..=1.0).contains(&config.color_sensitive_fraction),
            "color-sensitive fraction must be a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let observers = (0..config.observers)
            .map(|id| {
                let sensitive = rng.gen::<f64>() < config.color_sensitive_fraction;
                let base = if sensitive {
                    // A markedly more sensitive observer.
                    0.65 + 0.1 * rng.gen::<f64>()
                } else {
                    // Approximate a normal draw with the mean of 12 uniforms.
                    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                    config.mean_scale + (sum - 6.0) * config.scale_std_dev
                };
                Observer {
                    id,
                    sensitivity_scale: base.max(0.4),
                }
            })
            .collect();
        ObserverPopulation { observers }
    }

    /// The observers in id order.
    pub fn observers(&self) -> &[Observer] {
        &self.observers
    }

    /// Number of observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True if the population is empty (never the case for sampled
    /// populations).
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = ObserverPopulation::sample(PopulationConfig::default(), 42);
        let b = ObserverPopulation::sample(PopulationConfig::default(), 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ObserverPopulation::sample(PopulationConfig::default(), 1);
        let b = ObserverPopulation::sample(PopulationConfig::default(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn scales_are_positive_and_near_one() {
        let pop = ObserverPopulation::sample(PopulationConfig::default(), 7);
        for o in pop.observers() {
            assert!(o.sensitivity_scale > 0.3 && o.sensitivity_scale < 2.0);
            assert!(o.visibility_threshold() > 0.0);
        }
    }

    #[test]
    fn visibility_threshold_is_square_of_scale() {
        let o = Observer {
            id: 0,
            sensitivity_scale: 0.8,
        };
        assert!((o.visibility_threshold() - 0.64).abs() < 1e-12);
        assert!(o.is_color_sensitive());
        let avg = Observer {
            id: 1,
            sensitivity_scale: 1.0,
        };
        assert!(!avg.is_color_sensitive());
    }

    #[test]
    fn forced_sensitive_population() {
        let config = PopulationConfig {
            color_sensitive_fraction: 1.0,
            ..Default::default()
        };
        let pop = ObserverPopulation::sample(config, 3);
        assert!(pop.observers().iter().all(|o| o.is_color_sensitive()));
    }

    #[test]
    #[should_panic]
    fn zero_observers_panics() {
        let config = PopulationConfig {
            observers: 0,
            ..Default::default()
        };
        let _ = ObserverPopulation::sample(config, 0);
    }
}
