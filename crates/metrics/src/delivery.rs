//! Decode-side delivery accounting for one session's link-simulated
//! stream.
//!
//! The encoder-side [`crate::ThroughputReport`] counts what a worker
//! produced; this module counts what a client actually *saw* after the
//! link had its say: frames delivered before their refresh deadline,
//! frames that arrived late, frames dropped outright, and the resulting
//! displayed-image quality (a late or dropped frame leaves the previous
//! image on the panel, so the error is the stale frame vs. the frame that
//! should have been shown).
//!
//! On a lossless link every frame is on time, the displayed image always
//! matches the reference, and [`DeliveryReport::psnr_db`] is infinite —
//! the decode-side twin of the encoder's bit-identical determinism pins.

use serde::{Deserialize, Serialize};

/// What one session's client observed at the end of its stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Frames the worker sent (every frame record in the wire stream).
    pub frames_sent: u64,
    /// Frames that arrived before their refresh deadline.
    pub frames_delivered: u64,
    /// Frames that arrived after their deadline (decoded but not shown in
    /// their own slot).
    pub frames_late: u64,
    /// Frames the link dropped.
    pub frames_dropped: u64,
    /// Payload bytes the worker sent.
    pub bytes_sent: u64,
    /// Payload bytes of on-time frames (the goodput numerator).
    pub bytes_delivered: u64,
    /// The stream's duration in seconds at the tier's refresh rate
    /// (`frames_sent / refresh_hz`).
    pub stream_seconds: f64,
    /// Sum of squared per-channel errors of the displayed image vs. the
    /// reference, over every slot where something was on the panel.
    pub error_squared_sum: f64,
    /// Number of per-channel samples behind `error_squared_sum`.
    pub error_samples: u64,
    /// Refresh slots with nothing on the panel yet (stream opened with a
    /// drop); excluded from the MSE accumulation.
    pub blank_slots: u64,
    /// Frames that arrived intact but were undisplayable because an
    /// earlier dropped frame broke the temporal prediction chain: every
    /// dependent (predicted) frame counts as stale until the next
    /// keyframe restores the panel.
    #[serde(default)]
    pub stale_frames: u64,
}

impl DeliveryReport {
    /// Records a frame that arrived before its deadline.
    pub fn record_delivered(&mut self, payload_bytes: u64) {
        self.frames_sent += 1;
        self.frames_delivered += 1;
        self.bytes_sent += payload_bytes;
        self.bytes_delivered += payload_bytes;
    }

    /// Records a frame that arrived after its deadline.
    pub fn record_late(&mut self, payload_bytes: u64) {
        self.frames_sent += 1;
        self.frames_late += 1;
        self.bytes_sent += payload_bytes;
    }

    /// Records a frame the link dropped.
    pub fn record_dropped(&mut self, payload_bytes: u64) {
        self.frames_sent += 1;
        self.frames_dropped += 1;
        self.bytes_sent += payload_bytes;
    }

    /// Folds one refresh slot's displayed-vs-reference error into the
    /// quality accumulator (`mse × samples` of that slot's comparison).
    pub fn accumulate_error(&mut self, squared_sum: f64, samples: u64) {
        self.error_squared_sum += squared_sum;
        self.error_samples += samples;
    }

    /// Merges another session's report into this one (per-tier and
    /// fleet-wide aggregation).
    pub fn merge(&mut self, other: &DeliveryReport) {
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.frames_late += other.frames_late;
        self.frames_dropped += other.frames_dropped;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        self.stream_seconds += other.stream_seconds;
        self.error_squared_sum += other.error_squared_sum;
        self.error_samples += other.error_samples;
        self.blank_slots += other.blank_slots;
        self.stale_frames += other.stale_frames;
    }

    /// Mean squared error of the displayed image over the stream
    /// (0 when every slot matched its reference).
    pub fn mse(&self) -> f64 {
        if self.error_samples == 0 {
            0.0
        } else {
            self.error_squared_sum / self.error_samples as f64
        }
    }

    /// PSNR of the displayed image in dB; infinite when the displayed
    /// image never differed from the reference (lossless link).
    pub fn psnr_db(&self) -> f64 {
        let mse = self.mse();
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    /// Fraction of sent frames that made their deadline.
    pub fn delivery_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_delivered as f64 / self.frames_sent as f64
        }
    }

    /// On-time frames per second of stream time (equals the refresh rate
    /// on a lossless link).
    pub fn delivered_fps(&self) -> f64 {
        if self.stream_seconds <= 0.0 {
            0.0
        } else {
            self.frames_delivered as f64 / self.stream_seconds
        }
    }

    /// On-time payload megabits per second of stream time.
    pub fn goodput_mbits(&self) -> f64 {
        if self.stream_seconds <= 0.0 {
            0.0
        } else {
            self.bytes_delivered as f64 * 8.0 / self.stream_seconds / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_stream_has_infinite_psnr_and_full_delivery() {
        let mut report = DeliveryReport::default();
        for _ in 0..10 {
            report.record_delivered(100);
        }
        report.stream_seconds = 10.0 / 72.0;
        assert_eq!(report.delivery_rate(), 1.0);
        assert!(report.psnr_db().is_infinite());
        assert!((report.delivered_fps() - 72.0).abs() < 1e-9);
        let expected_goodput = 1000.0 * 8.0 / (10.0 / 72.0) / 1e6;
        assert!((report.goodput_mbits() - expected_goodput).abs() < 1e-12);
    }

    #[test]
    fn losses_show_up_in_every_rate() {
        let mut report = DeliveryReport::default();
        report.record_delivered(100);
        report.record_dropped(100);
        report.record_late(100);
        report.record_delivered(100);
        report.stream_seconds = 4.0 / 72.0;
        assert_eq!(report.frames_sent, 4);
        assert_eq!(report.frames_delivered, 2);
        assert_eq!(report.frames_late, 1);
        assert_eq!(report.frames_dropped, 1);
        assert_eq!(report.bytes_sent, 400);
        assert_eq!(report.bytes_delivered, 200);
        assert_eq!(report.delivery_rate(), 0.5);
        assert!((report.delivered_fps() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn accumulated_error_produces_the_expected_psnr() {
        let mut report = DeliveryReport::default();
        // Constant error of 5 code values across 300 samples: MSE = 25.
        report.accumulate_error(25.0 * 300.0, 300);
        assert!((report.mse() - 25.0).abs() < 1e-12);
        let expected = 10.0 * (255.0f64 * 255.0 / 25.0).log10();
        assert!((report.psnr_db() - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = DeliveryReport::default();
        a.record_delivered(10);
        a.stream_seconds = 1.0;
        a.accumulate_error(100.0, 3);
        a.blank_slots = 1;
        a.stale_frames = 2;
        let mut b = DeliveryReport::default();
        b.record_dropped(20);
        b.stream_seconds = 2.0;
        b.accumulate_error(50.0, 3);
        a.merge(&b);
        assert_eq!(a.frames_sent, 2);
        assert_eq!(a.frames_dropped, 1);
        assert_eq!(a.bytes_sent, 30);
        assert_eq!(a.stream_seconds, 3.0);
        assert_eq!(a.error_samples, 6);
        assert_eq!(a.blank_slots, 1);
        assert_eq!(a.stale_frames, 2);
        assert!((a.mse() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = DeliveryReport::default();
        assert_eq!(report.delivery_rate(), 0.0);
        assert_eq!(report.delivered_fps(), 0.0);
        assert_eq!(report.goodput_mbits(), 0.0);
        assert!(report.psnr_db().is_infinite());
    }
}
