//! Session-churn telemetry for long-lived streaming runtimes.
//!
//! A run-to-completion batch only needs frame counters; a long-lived
//! service also wants to know how its *population* of sessions moved:
//! how many were admitted, how many were explicitly retired by a caller,
//! how many completed their streams, and how crowded the service got at
//! its busiest. [`ChurnCounters`] is that ledger; the streaming runtime
//! keeps one and hands it out with the final service report.

use serde::{Deserialize, Serialize};

/// Running counters of session admission, retirement and completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChurnCounters {
    /// Sessions admitted into the runtime since it started.
    pub admitted: u64,
    /// Sessions a caller explicitly retired (awaited the final report of).
    /// A session can complete without ever being retired — its report is
    /// then delivered with the shutdown drain — so `retired <= completed`
    /// at shutdown but not necessarily before.
    pub retired: u64,
    /// Sessions whose streams finished (final report produced).
    pub completed: u64,
    /// Sessions whose streams were hard-cancelled: ended before their
    /// configured frame budget, with a partial report. A cancelled session
    /// still counts as `completed` (its final — partial — report was
    /// produced), so `cancelled <= completed`.
    pub cancelled: u64,
    /// Largest number of sessions that were in flight at the same time.
    pub peak_concurrent: u64,
}

impl ChurnCounters {
    /// Sessions admitted but not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.admitted - self.completed
    }

    /// Records one admission and refreshes the concurrency high-water mark.
    pub fn record_admission(&mut self) {
        self.admitted += 1;
        self.peak_concurrent = self.peak_concurrent.max(self.in_flight());
    }

    /// Records one explicit retirement request.
    pub fn record_retirement(&mut self) {
        self.retired += 1;
    }

    /// Records one hard-cancelled session (stream ended before its frame
    /// budget, partial report delivered).
    ///
    /// # Panics
    ///
    /// Panics if more cancellations than completions are recorded — record
    /// the cancellation when the (partial) final report arrives, alongside
    /// [`Self::record_completion`].
    pub fn record_cancellation(&mut self) {
        assert!(
            self.cancelled < self.completed,
            "cancellation recorded for a session without a final report"
        );
        self.cancelled += 1;
    }

    /// Records one completed session stream.
    ///
    /// # Panics
    ///
    /// Panics if more completions than admissions are recorded — that is
    /// always an accounting bug in the caller.
    pub fn record_completion(&mut self) {
        assert!(
            self.completed < self.admitted,
            "completion recorded for a session that was never admitted"
        );
        self.completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admissions_and_completions_balance() {
        let mut churn = ChurnCounters::default();
        churn.record_admission();
        churn.record_admission();
        assert_eq!(churn.in_flight(), 2);
        churn.record_completion();
        assert_eq!(churn.in_flight(), 1);
        assert_eq!(churn.admitted, 2);
        assert_eq!(churn.completed, 1);
    }

    #[test]
    fn peak_concurrency_is_a_high_water_mark() {
        let mut churn = ChurnCounters::default();
        churn.record_admission();
        churn.record_admission();
        churn.record_admission();
        assert_eq!(churn.peak_concurrent, 3);
        churn.record_completion();
        churn.record_completion();
        churn.record_admission();
        assert_eq!(churn.in_flight(), 2, "one old + one new session");
        assert_eq!(churn.peak_concurrent, 3, "the peak never decays");
    }

    #[test]
    fn retirement_is_counted_separately_from_completion() {
        let mut churn = ChurnCounters::default();
        churn.record_admission();
        churn.record_retirement();
        churn.record_completion();
        assert_eq!(churn.retired, 1);
        assert_eq!(churn.completed, 1);
    }

    #[test]
    fn cancellations_ride_along_with_completions() {
        let mut churn = ChurnCounters::default();
        churn.record_admission();
        churn.record_admission();
        churn.record_retirement();
        churn.record_completion();
        churn.record_cancellation();
        assert_eq!(churn.cancelled, 1);
        assert_eq!(churn.completed, 1);
        assert_eq!(churn.in_flight(), 1, "the other session still streams");
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn excess_completions_panic() {
        let mut churn = ChurnCounters::default();
        churn.record_completion();
    }

    #[test]
    #[should_panic(expected = "without a final report")]
    fn excess_cancellations_panic() {
        let mut churn = ChurnCounters::default();
        churn.record_admission();
        churn.record_cancellation();
    }
}
