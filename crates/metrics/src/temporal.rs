//! Aggregate temporal-coding accounting for a session's stream.
//!
//! The encoder reports per-frame skip/delta/intra tile counts plus the
//! exact bits emitted and the bits a pure intra frame would have cost
//! (computed in the same pass, so the saving needs no second intra-only
//! run). This module sums those per-frame numbers per session; the
//! service layer then merges sessions per tier and fleet-wide exactly
//! like the other report types.

use serde::{Deserialize, Serialize};

/// Session-total temporal coding counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TemporalTotals {
    /// Frames emitted as intra keyframes (on an intra-only session:
    /// every frame).
    pub keyframes: u64,
    /// Frames emitted as predicted (temporal) frames.
    pub predicted_frames: u64,
    /// Tiles emitted as `Skip` records.
    pub skip_tiles: u64,
    /// Tiles emitted as `Delta` records.
    pub delta_tiles: u64,
    /// Tiles emitted as `Intra` records (keyframe tiles included).
    pub intra_tiles: u64,
    /// Total emitted bits, frame headers included.
    pub bits: u64,
    /// Bits the same frames would have cost as pure intra frames.
    pub intra_bits: u64,
}

impl TemporalTotals {
    /// Folds one frame's temporal statistics into the session totals.
    #[allow(clippy::too_many_arguments)]
    pub fn record_frame(
        &mut self,
        keyframe: bool,
        skip_tiles: u64,
        delta_tiles: u64,
        intra_tiles: u64,
        bits: u64,
        intra_bits: u64,
    ) {
        if keyframe {
            self.keyframes += 1;
        } else {
            self.predicted_frames += 1;
        }
        self.skip_tiles += skip_tiles;
        self.delta_tiles += delta_tiles;
        self.intra_tiles += intra_tiles;
        self.bits += bits;
        self.intra_bits += intra_bits;
    }

    /// Merges another session's totals into this one (per-tier and
    /// fleet-wide aggregation).
    pub fn merge(&mut self, other: &TemporalTotals) {
        self.keyframes += other.keyframes;
        self.predicted_frames += other.predicted_frames;
        self.skip_tiles += other.skip_tiles;
        self.delta_tiles += other.delta_tiles;
        self.intra_tiles += other.intra_tiles;
        self.bits += other.bits;
        self.intra_bits += other.intra_bits;
    }

    /// Bits the temporal mode saved versus intra-only coding.
    pub fn bits_saved(&self) -> u64 {
        self.intra_bits.saturating_sub(self.bits)
    }

    /// Saving versus intra-only coding, percent (0 on an empty or
    /// intra-only stream).
    pub fn reduction_over_intra_percent(&self) -> f64 {
        if self.intra_bits == 0 {
            return 0.0;
        }
        self.bits_saved() as f64 / self.intra_bits as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_key_and_predicted_frames() {
        let mut totals = TemporalTotals::default();
        totals.record_frame(true, 0, 0, 16, 1000, 1000);
        totals.record_frame(false, 10, 4, 2, 300, 1000);
        assert_eq!(totals.keyframes, 1);
        assert_eq!(totals.predicted_frames, 1);
        assert_eq!(totals.skip_tiles, 10);
        assert_eq!(totals.delta_tiles, 4);
        assert_eq!(totals.intra_tiles, 18);
        assert_eq!(totals.bits, 1300);
        assert_eq!(totals.intra_bits, 2000);
        assert_eq!(totals.bits_saved(), 700);
        assert!((totals.reduction_over_intra_percent() - 35.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = TemporalTotals {
            keyframes: 1,
            predicted_frames: 2,
            skip_tiles: 3,
            delta_tiles: 4,
            intra_tiles: 5,
            bits: 600,
            intra_bits: 700,
        };
        a.merge(&a.clone());
        assert_eq!(a.keyframes, 2);
        assert_eq!(a.predicted_frames, 4);
        assert_eq!(a.skip_tiles, 6);
        assert_eq!(a.delta_tiles, 8);
        assert_eq!(a.intra_tiles, 10);
        assert_eq!(a.bits, 1200);
        assert_eq!(a.intra_bits, 1400);
    }

    #[test]
    fn empty_totals_report_zero_reduction() {
        let totals = TemporalTotals::default();
        assert_eq!(totals.bits_saved(), 0);
        assert_eq!(totals.reduction_over_intra_percent(), 0.0);
    }
}
