//! Per-tier aggregation of streaming telemetry.
//!
//! A heterogeneous serving mix — Quest-2-class next to Vision-class
//! sessions — makes fleet-wide averages misleading: one Vision frame costs
//! several Quest-2 frames, so "mean FPS" says nothing about whether each
//! *class* of user is being served well. [`TierAggregates`] groups
//! per-session [`ThroughputReport`]s under caller-chosen tier labels so
//! services and benchmarks can print a per-tier table (sessions, frames,
//! FPS, pixel throughput, cancellations) next to the aggregate one.
//!
//! The crate stays decoupled from any particular tier taxonomy: labels are
//! plain strings, supplied by whoever defines the tiers (the streaming
//! crate's `ResolutionTier::name()`, a config file, …).

use crate::throughput::ThroughputReport;
use serde::{Deserialize, Serialize};

/// Totals for one tier of sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierAggregate {
    /// The tier label the sessions were recorded under.
    pub label: String,
    /// Number of sessions aggregated.
    pub sessions: u64,
    /// How many of them were hard-cancelled (partial streams).
    pub cancelled: u64,
    /// Merged frame/byte/pixel totals. `wall_seconds` is the longest
    /// member stream (see [`ThroughputReport::merge`]), so the derived
    /// rates read as "the tier's concurrent delivered rate".
    pub throughput: ThroughputReport,
}

/// Per-tier totals, in first-recorded order.
///
/// First-recorded order keeps the table stable for a fixed admission
/// sequence without imposing an alphabetic order that would split, say,
/// `quest2` from `quest-pro` visually.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TierAggregates {
    entries: Vec<TierAggregate>,
}

impl TierAggregates {
    /// Creates an empty aggregation.
    pub fn new() -> TierAggregates {
        TierAggregates::default()
    }

    /// Folds one session's telemetry into its tier's totals, creating the
    /// tier on first sight.
    pub fn record(&mut self, label: &str, cancelled: bool, throughput: &ThroughputReport) {
        let entry = match self.entries.iter_mut().find(|e| e.label == label) {
            Some(entry) => entry,
            None => {
                self.entries.push(TierAggregate {
                    label: label.to_string(),
                    sessions: 0,
                    cancelled: 0,
                    throughput: ThroughputReport::default(),
                });
                self.entries.last_mut().expect("just pushed")
            }
        };
        entry.sessions += 1;
        entry.cancelled += u64::from(cancelled);
        entry.throughput.merge(throughput);
    }

    /// The per-tier totals, in first-recorded order.
    pub fn entries(&self) -> &[TierAggregate] {
        &self.entries
    }

    /// Number of distinct tiers recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throughput(frames: u64, pixels: u64, wall: f64) -> ThroughputReport {
        ThroughputReport {
            frames,
            bytes_in: pixels * 3,
            bytes_out: pixels,
            pixels,
            wall_seconds: wall,
        }
    }

    #[test]
    fn sessions_group_under_their_labels() {
        let mut tiers = TierAggregates::new();
        tiers.record("quest2", false, &throughput(10, 1000, 1.0));
        tiers.record("vision", false, &throughput(5, 4000, 2.0));
        tiers.record("quest2", true, &throughput(3, 300, 0.5));
        assert_eq!(tiers.len(), 2);
        let quest2 = &tiers.entries()[0];
        assert_eq!(quest2.label, "quest2");
        assert_eq!(quest2.sessions, 2);
        assert_eq!(quest2.cancelled, 1);
        assert_eq!(quest2.throughput.frames, 13);
        assert_eq!(quest2.throughput.pixels, 1300);
        assert!((quest2.throughput.wall_seconds - 1.0).abs() < 1e-12);
        let vision = &tiers.entries()[1];
        assert_eq!(vision.sessions, 1);
        assert_eq!(vision.throughput.pixels, 4000);
    }

    #[test]
    fn order_is_first_recorded() {
        let mut tiers = TierAggregates::new();
        tiers.record("z-tier", false, &throughput(1, 1, 1.0));
        tiers.record("a-tier", false, &throughput(1, 1, 1.0));
        let labels: Vec<&str> = tiers.entries().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["z-tier", "a-tier"]);
    }

    #[test]
    fn empty_aggregation_reports_empty() {
        let tiers = TierAggregates::new();
        assert!(tiers.is_empty());
        assert_eq!(tiers.len(), 0);
        assert!(tiers.entries().is_empty());
    }
}
