//! Control-plane telemetry for the elastic streaming runtime.
//!
//! Where [`crate::ChurnCounters`] ledgers what the session *population*
//! did, [`ElasticityCounters`] ledgers what the control plane did *to*
//! it: admissions rejected or queued against the fleet pixel budget,
//! sessions downgraded a resolution tier to shed load, sessions migrated
//! between shards, and shards spawned or drained by the autoscaler. The
//! elastic controller keeps one and folds it into the final service
//! report so a bench run can prove each control action actually fired.

use serde::{Deserialize, Serialize};

/// Running counters of elastic control-plane actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ElasticityCounters {
    /// Admissions rejected outright: the session did not fit the fleet
    /// pixel budget and the pending queue was full (or could never fit).
    pub rejected: u64,
    /// Admissions deferred into the pending queue to be retried on a
    /// later control tick, once budget frees up.
    pub queued: u64,
    /// Sessions downgraded one resolution tier mid-stream to shed load
    /// under sustained overload (quality traded for throughput).
    pub shed: u64,
    /// Sessions migrated between shards with their stream state carried
    /// along (the remaining stream stays bit-identical to a solo run).
    pub migrated: u64,
    /// Shards spawned by the autoscaler after start-up.
    pub shards_spawned: u64,
    /// Shards drained (sessions migrated off, threads wound down).
    pub shards_drained: u64,
}

impl ElasticityCounters {
    /// Records one rejected admission.
    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Records one admission deferred into the pending queue.
    pub fn record_queued(&mut self) {
        self.queued += 1;
    }

    /// Records one mid-stream tier downgrade.
    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    /// Records one session migration between shards.
    pub fn record_migration(&mut self) {
        self.migrated += 1;
    }

    /// Records one autoscaler shard spawn.
    pub fn record_shard_spawned(&mut self) {
        self.shards_spawned += 1;
    }

    /// Records one autoscaler shard drain.
    pub fn record_shard_drained(&mut self) {
        self.shards_drained += 1;
    }

    /// Adds another ledger's counts into this one — used when the
    /// controller (which counts admission decisions) folds its ledger
    /// into the runtime's (which counts sheds/migrations/scaling).
    pub fn merge(&mut self, other: &ElasticityCounters) {
        self.rejected += other.rejected;
        self.queued += other.queued;
        self.shed += other.shed;
        self.migrated += other.migrated;
        self.shards_spawned += other.shards_spawned;
        self.shards_drained += other.shards_drained;
    }

    /// True when no control action has fired — the fleet ran entirely
    /// passively (every admission fit, no scaling, no shedding).
    pub fn is_passive(&self) -> bool {
        *self == ElasticityCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_action() {
        let mut counters = ElasticityCounters::default();
        assert!(counters.is_passive());
        counters.record_rejection();
        counters.record_queued();
        counters.record_queued();
        counters.record_shed();
        counters.record_migration();
        counters.record_shard_spawned();
        counters.record_shard_drained();
        assert_eq!(counters.rejected, 1);
        assert_eq!(counters.queued, 2);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.migrated, 1);
        assert_eq!(counters.shards_spawned, 1);
        assert_eq!(counters.shards_drained, 1);
        assert!(!counters.is_passive());
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = ElasticityCounters {
            rejected: 1,
            queued: 2,
            shed: 3,
            migrated: 4,
            shards_spawned: 5,
            shards_drained: 6,
        };
        let b = ElasticityCounters {
            rejected: 10,
            queued: 20,
            shed: 30,
            migrated: 40,
            shards_spawned: 50,
            shards_drained: 60,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ElasticityCounters {
                rejected: 11,
                queued: 22,
                shed: 33,
                migrated: 44,
                shards_spawned: 55,
                shards_drained: 66,
            }
        );
    }
}
