//! Objective image-quality metrics.
//!
//! The paper's Sec. 6.3 contrasts *subjective* quality (what the user study
//! measures) with *objective* quality: the adjusted frames have a PSNR
//! around 46 dB on average, with most scenes below 37 dB — numerically very
//! lossy — yet participants rarely notice artifacts in VR. This crate
//! provides the objective side of that comparison: MSE, PSNR and
//! per-channel error statistics between an original and an adjusted frame.
//!
//! For streaming workloads the [`throughput`] module adds the aggregate
//! side: frames/bytes counters and derived rates ([`ThroughputReport`])
//! that the multi-session service sums per session, per shard and
//! service-wide. The [`churn`] module complements it with population
//! telemetry ([`ChurnCounters`]) for the long-lived runtime: admissions,
//! retirements, completions, hard-cancellations and peak session
//! concurrency. When sessions are *heterogeneous* (different display
//! resolutions and frame budgets), the [`tiers`] module groups the
//! per-session reports under tier labels ([`TierAggregates`]) so each
//! class of user gets its own FPS/pixel-throughput row instead of being
//! averaged into a meaningless fleet mean. The [`delivery`] module is the
//! decode side of the loop: what a client saw after link simulation —
//! on-time/late/dropped frames, goodput and displayed-image PSNR
//! ([`DeliveryReport`]). Finally the [`elasticity`] module counts what
//! the elastic control plane did to the fleet — rejected/queued
//! admissions, tier sheds, migrations and shard scaling
//! ([`ElasticityCounters`]).
//!
//! # Examples
//!
//! ```
//! use pvc_color::Srgb8;
//! use pvc_frame::{Dimensions, SrgbFrame};
//! use pvc_metrics::QualityReport;
//!
//! let a = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(100, 100, 100));
//! let b = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(102, 100, 99));
//! let report = QualityReport::compare(&a, &b)?;
//! assert!(report.psnr_db > 40.0);
//! # Ok::<(), pvc_metrics::MetricsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod delivery;
pub mod elasticity;
pub mod temporal;
pub mod throughput;
pub mod tiers;

pub use churn::ChurnCounters;
pub use delivery::DeliveryReport;
pub use elasticity::ElasticityCounters;
pub use temporal::TemporalTotals;
pub use throughput::ThroughputReport;
pub use tiers::{TierAggregate, TierAggregates};

use pvc_frame::{FrameError, SrgbFrame};
use serde::{Deserialize, Serialize};

/// Errors produced when comparing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// The two frames have different dimensions.
    DimensionMismatch(FrameError),
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::DimensionMismatch(e) => write!(f, "cannot compare frames: {e}"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Objective quality of a distorted frame relative to a reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Mean squared error over all channels (8-bit code values).
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB (infinite for identical frames).
    pub psnr_db: f64,
    /// Largest absolute per-channel error in code values.
    pub max_abs_error: u8,
    /// Mean absolute per-channel error in code values.
    pub mean_abs_error: f64,
    /// Fraction of pixels with any channel differing from the reference.
    pub changed_pixel_fraction: f64,
}

impl QualityReport {
    /// Compares a distorted frame against a reference frame.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::DimensionMismatch`] when the two frames have
    /// different dimensions.
    pub fn compare(reference: &SrgbFrame, distorted: &SrgbFrame) -> Result<Self, MetricsError> {
        if reference.dimensions() != distorted.dimensions() {
            return Err(MetricsError::DimensionMismatch(
                FrameError::DimensionMismatch {
                    left: reference.dimensions(),
                    right: distorted.dimensions(),
                },
            ));
        }
        let mut squared_sum = 0.0f64;
        let mut abs_sum = 0.0f64;
        let mut max_abs = 0u8;
        let mut changed = 0usize;
        let mut samples = 0usize;
        for (a, b) in reference.pixels().iter().zip(distorted.pixels()) {
            let mut pixel_changed = false;
            for c in 0..3 {
                let d = i32::from(a.channel(c)) - i32::from(b.channel(c));
                squared_sum += f64::from(d * d);
                abs_sum += f64::from(d.abs());
                max_abs = max_abs.max(d.unsigned_abs() as u8);
                pixel_changed |= d != 0;
                samples += 1;
            }
            if pixel_changed {
                changed += 1;
            }
        }
        let mse = squared_sum / samples as f64;
        let psnr_db = if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        };
        Ok(QualityReport {
            mse,
            psnr_db,
            max_abs_error: max_abs,
            mean_abs_error: abs_sum / samples as f64,
            changed_pixel_fraction: changed as f64 / reference.pixels().len() as f64,
        })
    }
}

/// Mean and standard deviation of a sample of values; used to aggregate
/// per-scene results the way the paper reports them (e.g. "46.0 dB,
/// standard deviation 19.5").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleSummary {
    /// Summarizes a slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        SampleSummary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::Srgb8;
    use pvc_frame::Dimensions;

    fn flat(value: u8) -> SrgbFrame {
        SrgbFrame::filled(Dimensions::new(16, 16), Srgb8::new(value, value, value))
    }

    #[test]
    fn identical_frames_have_infinite_psnr() {
        let report = QualityReport::compare(&flat(100), &flat(100)).unwrap();
        assert_eq!(report.mse, 0.0);
        assert!(report.psnr_db.is_infinite());
        assert_eq!(report.max_abs_error, 0);
        assert_eq!(report.changed_pixel_fraction, 0.0);
    }

    #[test]
    fn uniform_offset_has_known_psnr() {
        // A constant error of 5 code values: MSE = 25, PSNR = 10·log10(255²/25).
        let report = QualityReport::compare(&flat(100), &flat(105)).unwrap();
        assert!((report.mse - 25.0).abs() < 1e-12);
        let expected = 10.0 * (255.0f64 * 255.0 / 25.0).log10();
        assert!((report.psnr_db - expected).abs() < 1e-9);
        assert_eq!(report.max_abs_error, 5);
        assert_eq!(report.changed_pixel_fraction, 1.0);
    }

    #[test]
    fn larger_errors_mean_lower_psnr() {
        let small = QualityReport::compare(&flat(100), &flat(102)).unwrap();
        let large = QualityReport::compare(&flat(100), &flat(130)).unwrap();
        assert!(small.psnr_db > large.psnr_db);
        assert!(large.max_abs_error > small.max_abs_error);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = flat(10);
        let b = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(10, 10, 10));
        let err = QualityReport::compare(&a, &b).unwrap_err();
        assert!(err.to_string().contains("cannot compare"));
    }

    #[test]
    fn partial_changes_are_counted_per_pixel() {
        let a = flat(50);
        let mut b = flat(50);
        b.set_pixel(0, 0, Srgb8::new(51, 50, 50));
        b.set_pixel(1, 0, Srgb8::new(50, 52, 50));
        let report = QualityReport::compare(&a, &b).unwrap();
        assert!((report.changed_pixel_fraction - 2.0 / 256.0).abs() < 1e-12);
        assert_eq!(report.max_abs_error, 2);
    }

    #[test]
    fn sample_summary_matches_manual_computation() {
        let s = SampleSummary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.118033988749895).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = SampleSummary::of(&[]);
    }
}
