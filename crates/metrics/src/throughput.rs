//! Aggregate throughput telemetry for streaming workloads.
//!
//! The quality metrics in the crate root compare *one* pair of frames; a
//! streaming service instead wants running totals — frames served, bytes
//! that entered and left the encoder, wall-clock time — and the derived
//! rates (frames per second, megabits per second, effective compression
//! ratio). [`ThroughputReport`] is that accumulator: shards and sessions
//! each keep one and merge them into service-wide totals.

use serde::{Deserialize, Serialize};

/// Running totals of an encoding stream and the wall-clock time they took.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Frames encoded.
    pub frames: u64,
    /// Bytes entering the encoder (uncompressed frame payload).
    pub bytes_in: u64,
    /// Bytes leaving the encoder (compressed bitstream payload).
    pub bytes_out: u64,
    /// Pixels encoded. Under heterogeneous session resolutions this — not
    /// `frames` — is the comparable measure of work: one Vision-class frame
    /// costs several Quest-2 frames.
    pub pixels: u64,
    /// Wall-clock seconds the stream took end to end.
    pub wall_seconds: f64,
}

impl ThroughputReport {
    /// Records one encoded frame's payload sizes.
    pub fn record_frame(&mut self, bytes_in: u64, bytes_out: u64) {
        self.frames += 1;
        self.bytes_in += bytes_in;
        self.bytes_out += bytes_out;
    }

    /// Records one encoded frame whose input size is known in *bits*,
    /// along with its pixel count.
    ///
    /// Rounds the input size **up** to whole bytes (`div_ceil`): a 9-bit
    /// payload occupies 2 bytes on any byte-addressed transport. Flooring
    /// here would undercount `bytes_in` whenever `bits_in % 8 != 0` and
    /// silently inflate [`Self::compression_ratio`].
    pub fn record_frame_bits(&mut self, bits_in: u64, bytes_out: u64, pixels: u64) {
        self.record_frame(bits_in.div_ceil(8), bytes_out);
        self.pixels += pixels;
    }

    /// Adds another report's totals into this one.
    ///
    /// Wall-clock seconds take the maximum rather than the sum: merged
    /// reports describe streams that ran *concurrently*, so the service-wide
    /// elapsed time is the longest stream, not the serialized total.
    pub fn merge(&mut self, other: &ThroughputReport) {
        self.frames += other.frames;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.pixels += other.pixels;
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
    }

    /// Aggregate frames per second (0 when no time has elapsed).
    pub fn frames_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.frames as f64 / self.wall_seconds
    }

    /// Output bandwidth in megabits per second (0 when no time elapsed).
    pub fn output_megabits_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.bytes_out as f64 * 8.0 / 1e6 / self.wall_seconds
    }

    /// Pixel throughput in megapixels per second (0 when no time elapsed).
    /// The resolution-independent rate for comparing heterogeneous streams.
    pub fn megapixels_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.pixels as f64 / 1e6 / self.wall_seconds
    }

    /// Effective compression ratio `bytes_in / bytes_out` (infinite when
    /// nothing has been emitted).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            return f64::INFINITY;
        }
        self.bytes_in as f64 / self.bytes_out as f64
    }

    /// Traffic reduction over the uncompressed input, in percent.
    pub fn bandwidth_reduction_percent(&self) -> f64 {
        if self.bytes_in == 0 {
            return 0.0;
        }
        (1.0 - self.bytes_out as f64 / self.bytes_in as f64) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_frames_accumulates_totals() {
        let mut report = ThroughputReport::default();
        report.record_frame(1000, 250);
        report.record_frame(1000, 150);
        assert_eq!(report.frames, 2);
        assert_eq!(report.bytes_in, 2000);
        assert_eq!(report.bytes_out, 400);
        assert!((report.compression_ratio() - 5.0).abs() < 1e-12);
        assert!((report.bandwidth_reduction_percent() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn bit_sized_inputs_round_up_to_whole_bytes() {
        // Regression: floor division (bits / 8) dropped the partial byte,
        // undercounting bytes_in and inflating the compression ratio.
        let mut report = ThroughputReport::default();
        report.record_frame_bits(9, 1, 100);
        assert_eq!(report.bytes_in, 2, "9 bits occupy 2 bytes, not 1");
        report.record_frame_bits(16, 1, 100);
        assert_eq!(report.bytes_in, 4, "exact multiples stay exact");
        report.record_frame_bits(1, 1, 100);
        assert_eq!(report.bytes_in, 5);
        assert_eq!(report.frames, 3);
        assert_eq!(report.pixels, 300);
    }

    #[test]
    fn rates_follow_wall_clock() {
        let report = ThroughputReport {
            frames: 90,
            bytes_in: 9_000_000,
            bytes_out: 3_000_000,
            pixels: 6_000_000,
            wall_seconds: 3.0,
        };
        assert!((report.frames_per_second() - 30.0).abs() < 1e-12);
        assert!((report.output_megabits_per_second() - 8.0).abs() < 1e-12);
        assert!((report.megapixels_per_second() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_takes_longest_stream() {
        let mut a = ThroughputReport {
            frames: 10,
            bytes_in: 100,
            bytes_out: 50,
            pixels: 1000,
            wall_seconds: 2.0,
        };
        let b = ThroughputReport {
            frames: 5,
            bytes_in: 30,
            bytes_out: 10,
            pixels: 4000,
            wall_seconds: 3.5,
        };
        a.merge(&b);
        assert_eq!(a.frames, 15);
        assert_eq!(a.bytes_in, 130);
        assert_eq!(a.bytes_out, 60);
        assert_eq!(a.pixels, 5000);
        assert!((a.wall_seconds - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_degrades_gracefully() {
        let report = ThroughputReport::default();
        assert_eq!(report.frames_per_second(), 0.0);
        assert_eq!(report.output_megabits_per_second(), 0.0);
        assert_eq!(report.megapixels_per_second(), 0.0);
        assert_eq!(report.bandwidth_reduction_percent(), 0.0);
        assert!(report.compression_ratio().is_infinite());
    }
}
