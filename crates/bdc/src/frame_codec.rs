//! Whole-frame Base+Delta encoding.

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
use crate::stats::{CompressionStats, SizeBreakdown};
use crate::tile_codec::{decode_tile, encode_tile, TileEncoding};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame, TileGrid, DEFAULT_TILE_SIZE};
use serde::{Deserialize, Serialize};

/// Configuration of the Base+Delta frame encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BdConfig {
    /// Side length of the square pixel tiles (4 in the paper's main
    /// configuration; Fig. 15 sweeps 4–16).
    pub tile_size: u32,
}

impl Default for BdConfig {
    fn default() -> Self {
        BdConfig {
            tile_size: DEFAULT_TILE_SIZE,
        }
    }
}

impl BdConfig {
    /// Creates a configuration with an explicit tile size.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn with_tile_size(tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        BdConfig { tile_size }
    }
}

/// The Base+Delta frame encoder.
///
/// # Examples
///
/// ```
/// use pvc_bdc::{BdConfig, BdEncoder};
/// use pvc_color::Srgb8;
/// use pvc_frame::{Dimensions, SrgbFrame};
///
/// let frame = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(1, 2, 3));
/// let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
/// assert_eq!(encoded.decode(), frame);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdEncoder {
    config: BdConfig,
    threads: usize,
}

impl Default for BdEncoder {
    fn default() -> Self {
        BdEncoder::new(BdConfig::default())
    }
}

impl BdEncoder {
    /// Creates a sequential encoder with the given configuration.
    pub fn new(config: BdConfig) -> Self {
        BdEncoder { config, threads: 1 }
    }

    /// Returns a copy that encodes tiles on `threads` scoped worker threads
    /// (1 = sequential). Tiles are independent and emitted in tile order,
    /// so the encoded frame is bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be non-zero");
        self.threads = threads;
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> BdConfig {
        self.config
    }

    /// The number of worker threads used for per-tile encoding.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Encodes a frame tile by tile.
    pub fn encode_frame(&self, frame: &SrgbFrame) -> BdEncodedFrame {
        let grid = TileGrid::new(frame.dimensions(), self.config.tile_size);
        let tile_rects: Vec<_> = grid.tiles().collect();
        let tiles: Vec<TileEncoding> =
            pvc_parallel::parallel_map(&tile_rects, self.threads, |&tile| {
                encode_tile(&frame.tile_pixels(tile))
            });
        BdEncodedFrame {
            dimensions: frame.dimensions(),
            tile_size: self.config.tile_size,
            tiles,
        }
    }
}

/// A Base+Delta encoded frame: the per-tile encodings plus enough geometry
/// to reconstruct the original frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BdEncodedFrame {
    dimensions: Dimensions,
    tile_size: u32,
    tiles: Vec<TileEncoding>,
}

impl BdEncodedFrame {
    /// Dimensions of the original frame.
    pub fn dimensions(&self) -> Dimensions {
        self.dimensions
    }

    /// Tile size used for encoding.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// The per-tile encodings in row-major tile order.
    pub fn tiles(&self) -> &[TileEncoding] {
        &self.tiles
    }

    /// Total compressed size, split by component.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.tiles.iter().map(TileEncoding::size).sum()
    }

    /// Overall compression statistics relative to the uncompressed frame.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::from_breakdown(self.dimensions.pixel_count(), self.size_breakdown())
    }

    /// Decodes back to the original frame (BD is numerically lossless).
    pub fn decode(&self) -> SrgbFrame {
        let grid = TileGrid::new(self.dimensions, self.tile_size);
        let mut frame = SrgbFrame::filled(self.dimensions, Srgb8::default());
        for (tile_rect, tile) in grid.tiles().zip(&self.tiles) {
            frame.write_tile(tile_rect, &decode_tile(tile));
        }
        frame
    }

    /// Serializes the encoded frame into a packed bitstream.
    ///
    /// Layout: a fixed header (width, height, tile size — 16 bits each),
    /// followed by each tile's channels as `base (8) | delta_bits (4) |
    /// deltas (delta_bits each)`.
    pub fn to_bitstream(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(self.dimensions.width, 16);
        w.write_bits(self.dimensions.height, 16);
        w.write_bits(self.tile_size, 16);
        for tile in &self.tiles {
            for channel in &tile.channels {
                w.write_bits(u32::from(channel.base), 8);
                w.write_bits(u32::from(channel.delta_bits), 4);
                for &d in &channel.deltas {
                    w.write_bits(u32::from(d), u32::from(channel.delta_bits));
                }
            }
        }
        w.finish()
    }

    /// Parses a bitstream produced by [`Self::to_bitstream`].
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] if the stream is truncated or its header
    /// is invalid.
    pub fn from_bitstream(bytes: &[u8]) -> Result<Self, BitstreamError> {
        let mut r = BitReader::new(bytes);
        let width = r.read_bits(16)?;
        let height = r.read_bits(16)?;
        let tile_size = r.read_bits(16)?;
        if width == 0 || height == 0 {
            return Err(BitstreamError::InvalidHeader {
                field: "dimensions",
            });
        }
        if tile_size == 0 {
            return Err(BitstreamError::InvalidHeader { field: "tile size" });
        }
        let dimensions = Dimensions::new(width, height);
        let grid = TileGrid::new(dimensions, tile_size);
        let mut tiles = Vec::with_capacity(grid.tile_count());
        for tile_rect in grid.tiles() {
            let pixel_count = tile_rect.pixel_count();
            let channels = [(); 3].map(|_| ());
            let mut decoded = Vec::with_capacity(3);
            for _ in channels {
                let base = r.read_bits(8).map(|v| v as u8);
                let base = base?;
                let delta_bits = r.read_bits(4)? as u8;
                if delta_bits > 8 {
                    return Err(BitstreamError::InvalidHeader {
                        field: "delta bit length",
                    });
                }
                let mut deltas = Vec::with_capacity(pixel_count);
                for _ in 0..pixel_count {
                    deltas.push(r.read_bits(u32::from(delta_bits))? as u8);
                }
                decoded.push(crate::tile_codec::ChannelEncoding {
                    base,
                    delta_bits,
                    deltas,
                });
            }
            let b = decoded.pop().expect("three channels");
            let g = decoded.pop().expect("three channels");
            let rr = decoded.pop().expect("three channels");
            tiles.push(TileEncoding {
                channels: [rr, g, b],
                pixel_count,
            });
        }
        Ok(BdEncodedFrame {
            dimensions,
            tile_size,
            tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    fn smooth_frame(width: u32, height: u32) -> SrgbFrame {
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let x = (i as u32 % width) as f64 / f64::from(width);
                let y = (i as u32 / width) as f64 / f64::from(height);
                Srgb8::new(
                    (x * 200.0) as u8,
                    (y * 200.0) as u8,
                    ((x + y) * 100.0) as u8,
                )
            })
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    #[test]
    fn roundtrip_random_frame() {
        let frame = random_frame(20, 12, 7);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        assert_eq!(encoded.decode(), frame);
    }

    #[test]
    fn roundtrip_with_non_multiple_dimensions() {
        let frame = random_frame(13, 9, 21);
        let encoded = BdEncoder::new(BdConfig::with_tile_size(4)).encode_frame(&frame);
        assert_eq!(encoded.decode(), frame);
    }

    #[test]
    fn smooth_frames_compress_better_than_random() {
        let smooth = smooth_frame(64, 64);
        let random = random_frame(64, 64, 3);
        let encoder = BdEncoder::new(BdConfig::default());
        let s = encoder.encode_frame(&smooth).stats();
        let r = encoder.encode_frame(&random).stats();
        assert!(s.bandwidth_reduction_percent() > r.bandwidth_reduction_percent());
        assert!(s.bandwidth_reduction_percent() > 20.0);
    }

    #[test]
    fn random_frames_never_beat_8_bits_per_channel_by_much() {
        // Random data is incompressible; BD should cost at most slightly more
        // than 24 bpp (base + metadata overhead).
        let random = random_frame(32, 32, 11);
        let stats = BdEncoder::new(BdConfig::default())
            .encode_frame(&random)
            .stats();
        assert!(stats.bits_per_pixel() <= 27.0);
        assert!(stats.bits_per_pixel() >= 23.0);
    }

    #[test]
    fn bitstream_roundtrip() {
        let frame = random_frame(24, 16, 5);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let parsed = BdEncodedFrame::from_bitstream(&bytes).expect("valid stream");
        assert_eq!(parsed, encoded);
        assert_eq!(parsed.decode(), frame);
    }

    #[test]
    fn bitstream_size_matches_breakdown() {
        let frame = smooth_frame(32, 32);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let expected_bits = encoded.size_breakdown().total_bits() + 48; // + header
        assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
    }

    #[test]
    fn truncated_bitstream_is_rejected() {
        let frame = random_frame(16, 16, 9);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let err = BdEncodedFrame::from_bitstream(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, BitstreamError::UnexpectedEnd { .. }));
    }

    #[test]
    fn empty_bitstream_is_rejected() {
        assert!(BdEncodedFrame::from_bitstream(&[]).is_err());
    }

    #[test]
    fn larger_tiles_amortize_base_cost_on_flat_frames() {
        let frame = SrgbFrame::filled(Dimensions::new(64, 64), Srgb8::new(9, 9, 9));
        let t4 = BdEncoder::new(BdConfig::with_tile_size(4))
            .encode_frame(&frame)
            .stats();
        let t16 = BdEncoder::new(BdConfig::with_tile_size(16))
            .encode_frame(&frame)
            .stats();
        assert!(t16.compressed_bits < t4.compressed_bits);
    }

    #[test]
    fn parallel_encoding_is_bit_identical_to_sequential() {
        let frames = [
            random_frame(64, 48, 17),
            smooth_frame(61, 47),
            random_frame(16, 16, 2),
        ];
        for frame in &frames {
            let serial = BdEncoder::new(BdConfig::default()).encode_frame(frame);
            for threads in [2, 4, 8] {
                let parallel = BdEncoder::new(BdConfig::default())
                    .with_threads(threads)
                    .encode_frame(frame);
                assert_eq!(parallel, serial);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        let _ = BdEncoder::default().with_threads(0);
    }

    #[test]
    fn stats_pixel_count_matches_frame() {
        let frame = random_frame(10, 10, 1);
        let stats = BdEncoder::new(BdConfig::default())
            .encode_frame(&frame)
            .stats();
        assert_eq!(stats.pixel_count, 100);
        assert_eq!(stats.uncompressed_bits, 2400);
    }
}
