//! Whole-frame Base+Delta encoding.

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
use crate::stats::{CompressionStats, SizeBreakdown};
use crate::tile_codec::{decode_tile, encode_tile, TileEncoding};
use pvc_color::lanes::min_max_u8;
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame, SrgbTileLanes, TileGrid, DEFAULT_TILE_SIZE};
use serde::{Deserialize, Serialize};

/// Configuration of the Base+Delta frame encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BdConfig {
    /// Side length of the square pixel tiles (4 in the paper's main
    /// configuration; Fig. 15 sweeps 4–16).
    pub tile_size: u32,
}

impl Default for BdConfig {
    fn default() -> Self {
        BdConfig {
            tile_size: DEFAULT_TILE_SIZE,
        }
    }
}

impl BdConfig {
    /// Creates a configuration with an explicit tile size.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn with_tile_size(tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        BdConfig { tile_size }
    }
}

/// The Base+Delta frame encoder.
///
/// # Examples
///
/// ```
/// use pvc_bdc::{BdConfig, BdEncoder};
/// use pvc_color::Srgb8;
/// use pvc_frame::{Dimensions, SrgbFrame};
///
/// let frame = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(1, 2, 3));
/// let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
/// assert_eq!(encoded.decode(), frame);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdEncoder {
    config: BdConfig,
    threads: usize,
}

impl Default for BdEncoder {
    fn default() -> Self {
        BdEncoder::new(BdConfig::default())
    }
}

impl BdEncoder {
    /// Creates a sequential encoder with the given configuration.
    pub fn new(config: BdConfig) -> Self {
        BdEncoder { config, threads: 1 }
    }

    /// Returns a copy that encodes tiles on `threads` scoped worker threads
    /// (1 = sequential). Tiles are independent and emitted in tile order,
    /// so the encoded frame is bit-identical for every thread count.
    ///
    /// A thread count of 0 is normalized to 1 (sequential). This is the
    /// single normalization point for the knob: callers no longer need
    /// scattered `.max(1)` guards around struct-literal or deserialized
    /// configurations.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> BdConfig {
        self.config
    }

    /// The number of worker threads used for per-tile encoding.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Encodes a frame tile by tile.
    pub fn encode_frame(&self, frame: &SrgbFrame) -> BdEncodedFrame {
        let grid = TileGrid::new(frame.dimensions(), self.config.tile_size);
        let tile_rects: Vec<_> = grid.tiles().collect();
        // One tile-pixel gather buffer per worker, not one per tile.
        let tiles: Vec<TileEncoding> = pvc_parallel::parallel_map_init(
            &tile_rects,
            self.threads,
            Vec::new,
            |gather: &mut Vec<Srgb8>, &tile| {
                frame.tile_pixels_into(tile, gather);
                encode_tile(gather)
            },
        );
        BdEncodedFrame {
            dimensions: frame.dimensions(),
            tile_size: self.config.tile_size,
            tiles,
        }
    }

    /// Stream-mode encode: packs the frame's complete bitstream —
    /// bit-identical to `self.encode_frame(frame).to_bitstream()` —
    /// directly into the caller-provided `writer` (cleared first), without
    /// materializing a [`BdEncodedFrame`] or any per-tile vectors.
    ///
    /// `gather` is the caller's reusable SoA tile gather; once both have
    /// warmed up to the frame's tile size and bitstream length, the encode
    /// performs no allocation at all. This is the per-frame hot path of a
    /// streaming session, where the per-tile `TileEncoding` structure (a
    /// `Vec` of deltas per channel per tile — hundreds of thousands of
    /// heap round-trips per Vision-class frame) is pure overhead: the
    /// session ships bytes, not tile structs.
    ///
    /// Each tile is gathered as three contiguous per-channel lanes, the
    /// `(min, max)` range is reduced with the 8-wide lane kernel
    /// ([`pvc_color::lanes::min_max_u8`] — bit-identical to the scalar
    /// [`crate::tile_codec::channel_range`] walk since integer min/max is
    /// order-independent), and only the bit packing itself stays serial.
    ///
    /// With more than one worker thread, tile encodings are produced in
    /// parallel first (bit packing is inherently sequential) and then
    /// serialized; the bytes are identical, the allocation-free property
    /// only holds for the sequential path.
    ///
    /// Returns the same statistics `encode_frame(frame).stats()` would.
    pub fn encode_frame_into(
        &self,
        frame: &SrgbFrame,
        writer: &mut BitWriter,
        gather: &mut SrgbTileLanes,
    ) -> CompressionStats {
        if self.threads > 1 {
            let encoded = self.encode_frame(frame);
            writer.clear();
            encoded.write_bitstream(writer);
            return encoded.stats();
        }
        let grid = TileGrid::new(frame.dimensions(), self.config.tile_size);
        writer.clear();
        writer.write_bits(frame.dimensions().width, 16);
        writer.write_bits(frame.dimensions().height, 16);
        writer.write_bits(self.config.tile_size, 16);
        let mut breakdown = SizeBreakdown::ZERO;
        for tile in grid.tiles() {
            frame.tile_lanes_into(tile, gather);
            for channel in 0..3 {
                let lane = gather.channel(channel);
                let (min, max) = min_max_u8(lane);
                let delta_bits = crate::tile_codec::bits_for_range(max - min);
                writer.write_bits(u32::from(min), crate::tile_codec::BASE_BITS as u32);
                writer.write_bits(
                    u32::from(delta_bits),
                    crate::tile_codec::METADATA_BITS as u32,
                );
                for &v in lane {
                    writer.write_bits(u32::from(v - min), u32::from(delta_bits));
                }
                breakdown += SizeBreakdown {
                    base_bits: crate::tile_codec::BASE_BITS,
                    metadata_bits: crate::tile_codec::METADATA_BITS,
                    delta_bits: u64::from(delta_bits) * lane.len() as u64,
                };
            }
        }
        CompressionStats::from_breakdown(frame.dimensions().pixel_count(), breakdown)
    }
}

/// A Base+Delta encoded frame: the per-tile encodings plus enough geometry
/// to reconstruct the original frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BdEncodedFrame {
    dimensions: Dimensions,
    tile_size: u32,
    tiles: Vec<TileEncoding>,
}

impl BdEncodedFrame {
    /// Dimensions of the original frame.
    pub fn dimensions(&self) -> Dimensions {
        self.dimensions
    }

    /// Tile size used for encoding.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// The per-tile encodings in row-major tile order.
    pub fn tiles(&self) -> &[TileEncoding] {
        &self.tiles
    }

    /// Total compressed size, split by component.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.tiles.iter().map(TileEncoding::size).sum()
    }

    /// Overall compression statistics relative to the uncompressed frame.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::from_breakdown(self.dimensions.pixel_count(), self.size_breakdown())
    }

    /// Decodes back to the original frame (BD is numerically lossless).
    pub fn decode(&self) -> SrgbFrame {
        let grid = TileGrid::new(self.dimensions, self.tile_size);
        let mut frame = SrgbFrame::filled(self.dimensions, Srgb8::default());
        for (tile_rect, tile) in grid.tiles().zip(&self.tiles) {
            frame.write_tile(tile_rect, &decode_tile(tile));
        }
        frame
    }

    /// Serializes the encoded frame into a packed bitstream.
    ///
    /// Layout: a fixed header (width, height, tile size — 16 bits each),
    /// followed by each tile's channels as `base (8) | delta_bits (4) |
    /// deltas (delta_bits each)`.
    pub fn to_bitstream(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.write_bitstream(&mut w);
        w.finish()
    }

    /// Appends the frame's bitstream (header plus tiles, the layout of
    /// [`Self::to_bitstream`]) to a caller-provided writer.
    pub fn write_bitstream(&self, w: &mut BitWriter) {
        w.write_bits(self.dimensions.width, 16);
        w.write_bits(self.dimensions.height, 16);
        w.write_bits(self.tile_size, 16);
        for tile in &self.tiles {
            for channel in &tile.channels {
                w.write_bits(u32::from(channel.base), 8);
                w.write_bits(u32::from(channel.delta_bits), 4);
                for &d in &channel.deltas {
                    w.write_bits(u32::from(d), u32::from(channel.delta_bits));
                }
            }
        }
    }

    /// Parses a bitstream produced by [`Self::to_bitstream`].
    ///
    /// Header geometry is validated against the remaining input length
    /// (and the [`crate::decoder::DEFAULT_MAX_PIXELS`] frame budget)
    /// *before* any tile storage is allocated, so a crafted header cannot
    /// make this allocate more than a small multiple of the input length.
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] if the stream is truncated, its header
    /// is invalid, or the declared geometry cannot fit in the input.
    pub fn from_bitstream(bytes: &[u8]) -> Result<Self, BitstreamError> {
        let mut r = BitReader::new(bytes);
        let header = crate::decoder::read_frame_header(&mut r, crate::decoder::DEFAULT_MAX_PIXELS)?;
        let dimensions = header.dimensions;
        let tile_size = header.tile_size;
        let grid = TileGrid::new(dimensions, tile_size);
        let mut tiles = Vec::with_capacity(grid.tile_count());
        for tile_rect in grid.tiles() {
            let pixel_count = tile_rect.pixel_count();
            let channels = [(); 3].map(|_| ());
            let mut decoded = Vec::with_capacity(3);
            for _ in channels {
                let base = r.read_bits(8).map(|v| v as u8);
                let base = base?;
                let delta_bits = r.read_bits(4)? as u8;
                if delta_bits > 8 {
                    return Err(BitstreamError::InvalidHeader {
                        field: "delta bit length",
                    });
                }
                // A `delta_bits = 0` channel would consume zero input bits
                // while pushing `pixel_count` deltas; the header validation
                // above bounds `pixel_count` via the frame budget, and this
                // check bounds every non-flat channel by the actual input.
                crate::decoder::check_delta_payload(&r, pixel_count, delta_bits)?;
                let mut deltas = Vec::with_capacity(pixel_count);
                for _ in 0..pixel_count {
                    deltas.push(r.read_bits(u32::from(delta_bits))? as u8);
                }
                decoded.push(crate::tile_codec::ChannelEncoding {
                    base,
                    delta_bits,
                    deltas,
                });
            }
            let b = decoded.pop().expect("three channels");
            let g = decoded.pop().expect("three channels");
            let rr = decoded.pop().expect("three channels");
            tiles.push(TileEncoding {
                channels: [rr, g, b],
                pixel_count,
            });
        }
        Ok(BdEncodedFrame {
            dimensions,
            tile_size,
            tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    fn smooth_frame(width: u32, height: u32) -> SrgbFrame {
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|i| {
                let x = (i as u32 % width) as f64 / f64::from(width);
                let y = (i as u32 / width) as f64 / f64::from(height);
                Srgb8::new(
                    (x * 200.0) as u8,
                    (y * 200.0) as u8,
                    ((x + y) * 100.0) as u8,
                )
            })
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    #[test]
    fn roundtrip_random_frame() {
        let frame = random_frame(20, 12, 7);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        assert_eq!(encoded.decode(), frame);
    }

    #[test]
    fn roundtrip_with_non_multiple_dimensions() {
        let frame = random_frame(13, 9, 21);
        let encoded = BdEncoder::new(BdConfig::with_tile_size(4)).encode_frame(&frame);
        assert_eq!(encoded.decode(), frame);
    }

    #[test]
    fn smooth_frames_compress_better_than_random() {
        let smooth = smooth_frame(64, 64);
        let random = random_frame(64, 64, 3);
        let encoder = BdEncoder::new(BdConfig::default());
        let s = encoder.encode_frame(&smooth).stats();
        let r = encoder.encode_frame(&random).stats();
        assert!(s.bandwidth_reduction_percent() > r.bandwidth_reduction_percent());
        assert!(s.bandwidth_reduction_percent() > 20.0);
    }

    #[test]
    fn random_frames_never_beat_8_bits_per_channel_by_much() {
        // Random data is incompressible; BD should cost at most slightly more
        // than 24 bpp (base + metadata overhead).
        let random = random_frame(32, 32, 11);
        let stats = BdEncoder::new(BdConfig::default())
            .encode_frame(&random)
            .stats();
        assert!(stats.bits_per_pixel() <= 27.0);
        assert!(stats.bits_per_pixel() >= 23.0);
    }

    #[test]
    fn bitstream_roundtrip() {
        let frame = random_frame(24, 16, 5);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let parsed = BdEncodedFrame::from_bitstream(&bytes).expect("valid stream");
        assert_eq!(parsed, encoded);
        assert_eq!(parsed.decode(), frame);
    }

    #[test]
    fn bitstream_size_matches_breakdown() {
        let frame = smooth_frame(32, 32);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let expected_bits = encoded.size_breakdown().total_bits() + 48; // + header
        assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
    }

    #[test]
    fn truncated_bitstream_is_rejected() {
        let frame = random_frame(16, 16, 9);
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let err = BdEncodedFrame::from_bitstream(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(
            err,
            BitstreamError::UnexpectedEnd { .. } | BitstreamError::InsufficientInput { .. }
        ));
    }

    #[test]
    fn empty_bitstream_is_rejected() {
        assert!(BdEncodedFrame::from_bitstream(&[]).is_err());
    }

    #[test]
    fn larger_tiles_amortize_base_cost_on_flat_frames() {
        let frame = SrgbFrame::filled(Dimensions::new(64, 64), Srgb8::new(9, 9, 9));
        let t4 = BdEncoder::new(BdConfig::with_tile_size(4))
            .encode_frame(&frame)
            .stats();
        let t16 = BdEncoder::new(BdConfig::with_tile_size(16))
            .encode_frame(&frame)
            .stats();
        assert!(t16.compressed_bits < t4.compressed_bits);
    }

    #[test]
    fn parallel_encoding_is_bit_identical_to_sequential() {
        let frames = [
            random_frame(64, 48, 17),
            smooth_frame(61, 47),
            random_frame(16, 16, 2),
        ];
        for frame in &frames {
            let serial = BdEncoder::new(BdConfig::default()).encode_frame(frame);
            for threads in [2, 4, 8] {
                let parallel = BdEncoder::new(BdConfig::default())
                    .with_threads(threads)
                    .encode_frame(frame);
                assert_eq!(parallel, serial);
            }
        }
    }

    #[test]
    fn zero_threads_normalizes_to_sequential() {
        // The single normalization point for the knob: a struct-literal or
        // deserialized 0 means sequential, not a panic.
        assert_eq!(BdEncoder::default().with_threads(0).threads(), 1);
        assert_eq!(BdEncoder::default().with_threads(3).threads(), 3);
    }

    #[test]
    fn encode_frame_into_matches_the_materialized_path() {
        let frames = [
            random_frame(24, 16, 5),
            smooth_frame(61, 47),
            random_frame(13, 9, 21),
        ];
        let mut writer = crate::BitWriter::new();
        let mut gather = SrgbTileLanes::new();
        for frame in &frames {
            for tile_size in [4, 7] {
                let encoder = BdEncoder::new(BdConfig::with_tile_size(tile_size));
                let encoded = encoder.encode_frame(frame);
                let stats = encoder.encode_frame_into(frame, &mut writer, &mut gather);
                assert_eq!(writer.as_bytes(), encoded.to_bitstream().as_slice());
                assert_eq!(stats, encoded.stats());
            }
        }
    }

    #[test]
    fn encode_frame_into_is_thread_count_invariant() {
        let frame = random_frame(40, 28, 77);
        let mut writer = crate::BitWriter::new();
        let mut gather = SrgbTileLanes::new();
        let sequential_stats =
            BdEncoder::new(BdConfig::default()).encode_frame_into(&frame, &mut writer, &mut gather);
        let sequential_bytes = writer.as_bytes().to_vec();
        for threads in [2, 4] {
            let stats = BdEncoder::new(BdConfig::default())
                .with_threads(threads)
                .encode_frame_into(&frame, &mut writer, &mut gather);
            assert_eq!(writer.as_bytes(), sequential_bytes.as_slice());
            assert_eq!(stats, sequential_stats);
        }
    }

    #[test]
    fn stats_pixel_count_matches_frame() {
        let frame = random_frame(10, 10, 1);
        let stats = BdEncoder::new(BdConfig::default())
            .encode_frame(&frame)
            .stats();
        assert_eq!(stats.pixel_count, 100);
        assert_eq!(stats.uncompressed_bits, 2400);
    }
}
