//! Compressed-size accounting.

use serde::{Deserialize, Serialize};

/// Bit counts of an encoded tile or frame, split by component.
///
/// The split matches Fig. 11 of the paper: the cost of the per-channel base
/// values, the cost of the per-tile metadata (the delta bit-length fields)
/// and the cost of the Δ payload itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SizeBreakdown {
    /// Bits spent on base values.
    pub base_bits: u64,
    /// Bits spent on per-tile metadata (delta bit-length fields).
    pub metadata_bits: u64,
    /// Bits spent on the Δ payload.
    pub delta_bits: u64,
}

impl SizeBreakdown {
    /// A breakdown with all counters at zero.
    pub const ZERO: SizeBreakdown = SizeBreakdown {
        base_bits: 0,
        metadata_bits: 0,
        delta_bits: 0,
    };

    /// Total number of bits.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.base_bits + self.metadata_bits + self.delta_bits
    }

    /// Average bits per pixel for a region of `pixel_count` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_count` is zero.
    pub fn bits_per_pixel(&self, pixel_count: usize) -> f64 {
        assert!(pixel_count > 0, "pixel count must be non-zero");
        self.total_bits() as f64 / pixel_count as f64
    }

    /// Per-component bits per pixel `(base, metadata, delta)`.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_count` is zero.
    pub fn bits_per_pixel_split(&self, pixel_count: usize) -> (f64, f64, f64) {
        assert!(pixel_count > 0, "pixel count must be non-zero");
        let n = pixel_count as f64;
        (
            self.base_bits as f64 / n,
            self.metadata_bits as f64 / n,
            self.delta_bits as f64 / n,
        )
    }
}

impl std::ops::Add for SizeBreakdown {
    type Output = SizeBreakdown;
    fn add(self, rhs: SizeBreakdown) -> SizeBreakdown {
        SizeBreakdown {
            base_bits: self.base_bits + rhs.base_bits,
            metadata_bits: self.metadata_bits + rhs.metadata_bits,
            delta_bits: self.delta_bits + rhs.delta_bits,
        }
    }
}

impl std::ops::AddAssign for SizeBreakdown {
    fn add_assign(&mut self, rhs: SizeBreakdown) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SizeBreakdown {
    fn sum<I: Iterator<Item = SizeBreakdown>>(iter: I) -> Self {
        iter.fold(SizeBreakdown::ZERO, |acc, x| acc + x)
    }
}

/// Overall compression statistics of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Number of pixels in the frame.
    pub pixel_count: usize,
    /// Size of the uncompressed frame in bits (24 bpp).
    pub uncompressed_bits: u64,
    /// Size of the compressed frame in bits.
    pub compressed_bits: u64,
    /// Component split of the compressed size.
    pub breakdown: SizeBreakdown,
}

impl CompressionStats {
    /// Builds statistics from a breakdown.
    pub fn from_breakdown(pixel_count: usize, breakdown: SizeBreakdown) -> Self {
        CompressionStats {
            pixel_count,
            uncompressed_bits: pixel_count as u64 * 24,
            compressed_bits: breakdown.total_bits(),
            breakdown,
        }
    }

    /// Bandwidth (traffic) reduction relative to the uncompressed frame, in
    /// percent. This is the metric of Fig. 10 and Fig. 15.
    pub fn bandwidth_reduction_percent(&self) -> f64 {
        if self.uncompressed_bits == 0 {
            return 0.0;
        }
        (1.0 - self.compressed_bits as f64 / self.uncompressed_bits as f64) * 100.0
    }

    /// Compression ratio `uncompressed / compressed`.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bits == 0 {
            return f64::INFINITY;
        }
        self.uncompressed_bits as f64 / self.compressed_bits as f64
    }

    /// Average compressed bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixel_count == 0 {
            return 0.0;
        }
        self.compressed_bits as f64 / self.pixel_count as f64
    }

    /// Relative traffic reduction of `self` over another (baseline) encoding
    /// of the same frame, in percent.
    pub fn reduction_over(&self, baseline: &CompressionStats) -> f64 {
        if baseline.compressed_bits == 0 {
            return 0.0;
        }
        (1.0 - self.compressed_bits as f64 / baseline.compressed_bits as f64) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_sums() {
        let a = SizeBreakdown {
            base_bits: 8,
            metadata_bits: 4,
            delta_bits: 20,
        };
        let b = SizeBreakdown {
            base_bits: 2,
            metadata_bits: 1,
            delta_bits: 7,
        };
        assert_eq!(a.total_bits(), 32);
        assert_eq!((a + b).total_bits(), 42);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        let summed: SizeBreakdown = [a, b].into_iter().sum();
        assert_eq!(summed, a + b);
    }

    #[test]
    fn bits_per_pixel_split_adds_up() {
        let a = SizeBreakdown {
            base_bits: 24,
            metadata_bits: 12,
            delta_bits: 60,
        };
        let (base, meta, delta) = a.bits_per_pixel_split(16);
        assert!((base + meta + delta - a.bits_per_pixel(16)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bits_per_pixel_zero_pixels_panics() {
        SizeBreakdown::ZERO.bits_per_pixel(0);
    }

    #[test]
    fn stats_reduction_percent() {
        let breakdown = SizeBreakdown {
            base_bits: 0,
            metadata_bits: 0,
            delta_bits: 12 * 16,
        };
        let stats = CompressionStats::from_breakdown(16, breakdown);
        assert_eq!(stats.uncompressed_bits, 16 * 24);
        assert!((stats.bandwidth_reduction_percent() - 50.0).abs() < 1e-12);
        assert!((stats.compression_ratio() - 2.0).abs() < 1e-12);
        assert!((stats.bits_per_pixel() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_over_baseline() {
        let ours = CompressionStats::from_breakdown(
            16,
            SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: 100,
            },
        );
        let baseline = CompressionStats::from_breakdown(
            16,
            SizeBreakdown {
                base_bits: 0,
                metadata_bits: 0,
                delta_bits: 200,
            },
        );
        assert!((ours.reduction_over(&baseline) - 50.0).abs() < 1e-12);
        assert!((baseline.reduction_over(&ours) + 100.0).abs() < 1e-12);
    }
}
