//! Base+Delta (BD) framebuffer compression.
//!
//! Modern mobile SoCs compress every frame going in and out of DRAM with a
//! lightweight Base+Delta scheme (e.g. Arm Frame Buffer Compression). For
//! each small pixel tile and each color channel, a *base* value is stored
//! and every pixel is encoded as an offset (Δ) from the base; the offsets
//! need fewer bits than full 8-bit values whenever the tile is locally
//! smooth (Fig. 4 of the paper).
//!
//! This crate implements the BD codec the paper assumes (after Zhang et
//! al.), both as the state-of-the-art baseline and as the numerically
//! lossless back-end that the perceptual color adjustment feeds into:
//!
//! * [`encode_tile`] / [`decode_tile`] — the per-tile, per-channel codec,
//! * [`BdEncoder`] — whole-frame encoding with per-tile size accounting
//!   (base vs. metadata vs. delta bits, the split of Fig. 11),
//! * [`bitstream`] — an actual serialized bitstream with round-trip decode,
//!   so compressed sizes are measured on real bits rather than estimated.
//!
//! The codec is numerically lossless: `decode(encode(frame)) == frame`.
//!
//! # Examples
//!
//! ```
//! use pvc_bdc::{BdConfig, BdEncoder};
//! use pvc_color::Srgb8;
//! use pvc_frame::{Dimensions, SrgbFrame};
//!
//! let frame = SrgbFrame::filled(Dimensions::new(16, 16), Srgb8::new(120, 130, 140));
//! let encoder = BdEncoder::new(BdConfig::default());
//! let encoded = encoder.encode_frame(&frame);
//! assert_eq!(encoded.decode(), frame);
//! // A flat frame compresses extremely well.
//! assert!(encoded.stats().compressed_bits < frame.uncompressed_bytes() as u64 * 8 / 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod decoder;
pub mod frame_codec;
pub mod stats;
pub mod temporal;
pub mod tile_codec;

pub use bitstream::{BitReader, BitWriter, BitstreamError};
pub use decoder::{BdDecoder, DEFAULT_MAX_PIXELS};
pub use frame_codec::{BdConfig, BdEncodedFrame, BdEncoder};
pub use stats::{CompressionStats, SizeBreakdown};
pub use temporal::{
    encode_temporal_frame_into, is_temporal_bitstream, FrameKind, TemporalFrameStats,
};
pub use tile_codec::{channel_range, decode_tile, encode_tile, ChannelEncoding, TileEncoding};
