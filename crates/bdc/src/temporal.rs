//! Temporal (inter-frame) coding: per-tile Skip / Delta / Intra records.
//!
//! A temporal ("predicted") frame encodes against the previous *decoded*
//! frame. Because the BD codec is lossless over the perceptually adjusted
//! frame, the encoder's reference (its own previous adjusted frame) and
//! the decoder's reference (its previous reconstruction) are bit-identical
//! — prediction never drifts and output quality is provably unchanged
//! from intra-only coding.
//!
//! # Bitstream layout
//!
//! A predicted frame begins with a 16-bit zero marker. Intra frames start
//! with their 16-bit width, which a valid intra header forbids to be zero,
//! so the first 16 bits of any frame unambiguously select the parser.
//!
//! ```text
//! marker(16)=0 | width(16) | height(16) | tile_size(16)
//! per tile, grid order:
//!   mode(2):
//!     0 = Skip   — nothing follows; the tile reuses the reference
//!     1 = Delta  — per channel: base(8) | delta_bits(4) | zigzag
//!                  residual deltas (delta_bits each)
//!     2 = Intra  — per channel: base(8) | delta_bits(4) | deltas,
//!                  identical to the intra-frame tile layout
//!     3 = invalid
//! ```
//!
//! Delta residuals are the wrapping byte difference `cur - prev`,
//! zigzag-mapped so small signed residuals become small unsigned codes,
//! then BD-encoded exactly like an intra channel. Reconstruction is
//! `prev + unzigzag(base + delta)` with wrapping arithmetic — lossless
//! for any byte pair.
//!
//! # Mode decision
//!
//! Deterministic and content-only: a tile is `Skip` iff it is
//! bit-identical to the reference tile; otherwise the encoder computes
//! the exact bit cost of both the Delta and the Intra record and takes
//! the cheaper one, breaking ties toward Intra. Encoding is sequential
//! regardless of the encoder's thread count, so the emitted bytes are
//! thread-invariant by construction.

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
use crate::decoder::check_delta_payload;
use crate::stats::{CompressionStats, SizeBreakdown};
use crate::tile_codec::{bits_for_range, BASE_BITS, METADATA_BITS};
use pvc_color::lanes::min_max_u8;
use pvc_frame::{Dimensions, SrgbFrame, SrgbTileLanes, TileGrid};
use serde::{Deserialize, Serialize};

/// Bits spent on the per-tile mode selector.
pub(crate) const MODE_BITS: u64 = 2;

/// Tile mode codes as they appear in the bitstream.
const MODE_SKIP: u32 = 0;
const MODE_DELTA: u32 = 1;
const MODE_INTRA: u32 = 2;

/// What kind of frame a decode produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// An intra (key) frame: decodable with no reference.
    Key,
    /// A temporal (predicted) frame: decoded against the reference.
    Predicted,
}

/// Per-frame temporal coding statistics.
///
/// `bits` is the total emitted frame size including the header;
/// `intra_bits` is what the same frame would have cost as a pure intra
/// frame (computed in the same pass), so `intra_bits - bits` is the exact
/// bandwidth the temporal mode saved. On keyframes the two are equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalFrameStats {
    /// True when the frame was emitted as an intra keyframe.
    pub keyframe: bool,
    /// Tiles emitted as `Skip` records.
    pub skip_tiles: u64,
    /// Tiles emitted as `Delta` records.
    pub delta_tiles: u64,
    /// Tiles emitted as `Intra` records (inside a predicted frame, or all
    /// tiles of a keyframe).
    pub intra_tiles: u64,
    /// Total emitted bits for the frame, header included.
    pub bits: u64,
    /// Bits the frame would have cost as a pure intra frame.
    pub intra_bits: u64,
}

/// Returns true when `bytes` begin with the temporal frame marker.
///
/// Intra bitstreams start with a nonzero 16-bit width, so a leading zero
/// 16-bit word identifies a predicted frame. Streams shorter than two
/// bytes are not temporal (and will fail either parser with a typed
/// error).
pub fn is_temporal_bitstream(bytes: &[u8]) -> bool {
    bytes.len() >= 2 && bytes[0] == 0 && bytes[1] == 0
}

/// Maps a wrapping byte residual to an unsigned code with small codes for
/// small signed magnitudes.
#[inline]
fn zigzag(residual: u8) -> u8 {
    let s = residual as i8;
    ((s << 1) ^ (s >> 7)) as u8
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(code: u8) -> u8 {
    (code >> 1) ^ (code & 1).wrapping_neg()
}

/// Exact bit cost of one BD channel record covering `pixels` samples with
/// the given value range.
#[inline]
fn channel_cost(range: u8, pixels: u64) -> u64 {
    BASE_BITS + METADATA_BITS + u64::from(bits_for_range(range)) * pixels
}

/// Encodes `frame` as a predicted frame against `reference`.
///
/// `gather` and `reference_gather` are caller-owned SoA scratch, recycled
/// across frames like the intra encoder's gather buffer; once warm the
/// encode allocates nothing. Both tiles are gathered as per-channel lanes:
/// the intra/delta ranges reduce with the 8-wide lane kernel, and the
/// zigzag residuals form over contiguous `u8` lanes, so everything before
/// the serial bit-write vectorizes. Returns the temporal statistics plus
/// the [`CompressionStats`] of the emitted payload (breakdown excludes the
/// 64-bit header, mirroring the intra accounting which excludes its
/// 48-bit header).
///
/// # Panics
///
/// Panics if `frame` and `reference` dimensions differ — the caller owns
/// the keyframe policy and must emit an intra frame on any dimension
/// change.
pub fn encode_temporal_frame_into(
    tile_size: u32,
    frame: &SrgbFrame,
    reference: &SrgbFrame,
    writer: &mut BitWriter,
    gather: &mut SrgbTileLanes,
    reference_gather: &mut SrgbTileLanes,
) -> (TemporalFrameStats, CompressionStats) {
    assert_eq!(
        frame.dimensions(),
        reference.dimensions(),
        "predicted frames require a same-sized reference"
    );
    let dims = frame.dimensions();
    let grid = TileGrid::new(dims, tile_size);
    writer.clear();
    writer.write_bits(0, 16);
    writer.write_bits(dims.width, 16);
    writer.write_bits(dims.height, 16);
    writer.write_bits(tile_size, 16);

    let mut stats = TemporalFrameStats {
        keyframe: false,
        intra_bits: 48,
        ..TemporalFrameStats::default()
    };
    let mut breakdown = SizeBreakdown::ZERO;
    for tile in grid.tiles() {
        frame.tile_lanes_into(tile, gather);
        reference.tile_lanes_into(tile, reference_gather);
        let pixels = gather.len() as u64;

        // The intra baseline is accounted for every tile, including the
        // ones that end up skipped, so `intra_bits` is exactly what an
        // intra-only frame would have cost.
        let mut intra_cost = MODE_BITS;
        let mut intra_ranges = [(0u8, 0u8); 3];
        for (channel, ranges) in intra_ranges.iter_mut().enumerate() {
            let (min, max) = min_max_u8(gather.channel(channel));
            *ranges = (min, max);
            intra_cost += channel_cost(max - min, pixels);
        }
        stats.intra_bits += intra_cost - MODE_BITS;

        if gather == reference_gather {
            writer.write_bits(MODE_SKIP, 2);
            breakdown.metadata_bits += MODE_BITS;
            stats.skip_tiles += 1;
            continue;
        }

        // Zigzag residuals overwrite the reference scratch in place: after
        // the skip comparison the raw reference samples are only needed to
        // form `cur - prev`. Each channel is a contiguous u8 lane, so the
        // wrapping subtract + zigzag loop vectorizes.
        for (cur, prev) in [
            (&gather.r, &mut reference_gather.r),
            (&gather.g, &mut reference_gather.g),
            (&gather.b, &mut reference_gather.b),
        ] {
            for (c, p) in cur.iter().zip(prev.iter_mut()) {
                *p = zigzag(c.wrapping_sub(*p));
            }
        }
        let mut delta_cost = MODE_BITS;
        let mut delta_ranges = [(0u8, 0u8); 3];
        for (channel, ranges) in delta_ranges.iter_mut().enumerate() {
            let (min, max) = min_max_u8(reference_gather.channel(channel));
            *ranges = (min, max);
            delta_cost += channel_cost(max - min, pixels);
        }

        let (mode, source, ranges) = if delta_cost < intra_cost {
            stats.delta_tiles += 1;
            (MODE_DELTA, &*reference_gather, delta_ranges)
        } else {
            stats.intra_tiles += 1;
            (MODE_INTRA, &*gather, intra_ranges)
        };
        writer.write_bits(mode, 2);
        breakdown.metadata_bits += MODE_BITS;
        for (channel, &(min, max)) in ranges.iter().enumerate() {
            let delta_bits = bits_for_range(max - min);
            writer.write_bits(u32::from(min), BASE_BITS as u32);
            writer.write_bits(u32::from(delta_bits), METADATA_BITS as u32);
            for &v in source.channel(channel) {
                writer.write_bits(u32::from(v - min), u32::from(delta_bits));
            }
            breakdown += SizeBreakdown {
                base_bits: BASE_BITS,
                metadata_bits: METADATA_BITS,
                delta_bits: u64::from(delta_bits) * pixels,
            };
        }
    }
    stats.bits = writer.bits_written();
    (
        stats,
        CompressionStats::from_breakdown(dims.pixel_count(), breakdown),
    )
}

/// Validated temporal frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TemporalHeader {
    pub dimensions: Dimensions,
    pub tile_size: u32,
}

/// Reads and validates the 64-bit temporal header, mirroring the intra
/// header's safety ladder: zero dimensions/tile size are rejected, frames
/// over `max_pixels` are rejected, and the declared tile grid must fit the
/// remaining input (every tile costs at least [`MODE_BITS`]) — all before
/// any allocation.
pub(crate) fn read_temporal_header(
    r: &mut BitReader<'_>,
    max_pixels: u64,
) -> Result<TemporalHeader, BitstreamError> {
    let marker = r.read_bits(16)?;
    if marker != 0 {
        return Err(BitstreamError::InvalidHeader {
            field: "temporal marker",
        });
    }
    let width = r.read_bits(16)?;
    let height = r.read_bits(16)?;
    let tile_size = r.read_bits(16)?;
    if width == 0 || height == 0 {
        return Err(BitstreamError::InvalidHeader {
            field: "dimensions",
        });
    }
    if tile_size == 0 {
        return Err(BitstreamError::InvalidHeader { field: "tile size" });
    }
    let pixels = u64::from(width) * u64::from(height);
    if pixels > max_pixels {
        return Err(BitstreamError::FrameTooLarge { pixels, max_pixels });
    }
    let tile_count = u64::from(width.div_ceil(tile_size)) * u64::from(height.div_ceil(tile_size));
    let required_bits = tile_count * MODE_BITS;
    if required_bits > r.remaining_bits() {
        return Err(BitstreamError::InsufficientInput {
            required_bits,
            remaining_bits: r.remaining_bits(),
        });
    }
    Ok(TemporalHeader {
        dimensions: Dimensions::new(width, height),
        tile_size,
    })
}

/// Applies a predicted frame to `reference` in place.
///
/// The reference must be valid and dimension-matched; both are checked
/// (after header validation, before any pixel is touched) and reported as
/// [`BitstreamError::MissingReference`] /
/// [`BitstreamError::ReferenceMismatch`]. On a mid-apply error the
/// reference is left partially updated — the caller must invalidate it.
pub(crate) fn apply_temporal_frame(
    bytes: &[u8],
    max_pixels: u64,
    reference: &mut SrgbFrame,
    reference_valid: bool,
) -> Result<(), BitstreamError> {
    let mut r = BitReader::new(bytes);
    let header = read_temporal_header(&mut r, max_pixels)?;
    if !reference_valid {
        return Err(BitstreamError::MissingReference);
    }
    if reference.dimensions() != header.dimensions {
        return Err(BitstreamError::ReferenceMismatch {
            width: header.dimensions.width,
            height: header.dimensions.height,
            ref_width: reference.dimensions().width,
            ref_height: reference.dimensions().height,
        });
    }
    let grid = TileGrid::new(header.dimensions, header.tile_size);
    let width = header.dimensions.width as usize;
    let pixels = reference.pixels_mut();
    for tile in grid.tiles() {
        let mode = r.read_bits(2)?;
        if mode == MODE_SKIP {
            continue;
        }
        if mode != MODE_DELTA && mode != MODE_INTRA {
            return Err(BitstreamError::InvalidHeader { field: "tile mode" });
        }
        for channel in 0..3u8 {
            let base = r.read_bits(8)? as u8;
            let delta_bits = r.read_bits(4)? as u8;
            if delta_bits > 8 {
                return Err(BitstreamError::InvalidHeader {
                    field: "delta bit length",
                });
            }
            check_delta_payload(&r, tile.pixel_count(), delta_bits)?;
            for y in tile.y..tile.y + tile.height {
                let row = y as usize * width;
                for x in tile.x..tile.x + tile.width {
                    let delta = r.read_bits(u32::from(delta_bits))? as u8;
                    let code = base.wrapping_add(delta);
                    let pixel = &mut pixels[row + x as usize];
                    let slot = match channel {
                        0 => &mut pixel.r,
                        1 => &mut pixel.g,
                        _ => &mut pixel.b,
                    };
                    *slot = if mode == MODE_DELTA {
                        slot.wrapping_add(unzigzag(code))
                    } else {
                        code
                    };
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_color::Srgb8;
    use rand::{Rng, SeedableRng};

    fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    fn encode(tile_size: u32, frame: &SrgbFrame, reference: &SrgbFrame) -> Vec<u8> {
        let mut writer = BitWriter::new();
        let (mut a, mut b) = (SrgbTileLanes::new(), SrgbTileLanes::new());
        encode_temporal_frame_into(tile_size, frame, reference, &mut writer, &mut a, &mut b);
        writer.finish()
    }

    #[test]
    fn zigzag_is_a_byte_bijection() {
        for value in 0..=u8::MAX {
            assert_eq!(unzigzag(zigzag(value)), value);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(0xFF), 1); // -1
    }

    #[test]
    fn roundtrip_against_a_reference() {
        let reference = random_frame(24, 16, 7);
        let mut frame = reference.clone();
        // Perturb a few pixels so all three modes plausibly appear.
        let pixels = frame.pixels_mut();
        pixels[0] = Srgb8::new(1, 2, 3);
        pixels[100] = Srgb8::new(250, 0, 128);
        let bytes = encode(4, &frame, &reference);
        assert!(is_temporal_bitstream(&bytes));
        let mut decoded = reference.clone();
        apply_temporal_frame(&bytes, u64::MAX, &mut decoded, true).expect("valid");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn identical_frame_is_all_skip_tiles() {
        let reference = random_frame(16, 16, 3);
        let mut writer = BitWriter::new();
        let (mut a, mut b) = (SrgbTileLanes::new(), SrgbTileLanes::new());
        let (stats, _) =
            encode_temporal_frame_into(4, &reference, &reference, &mut writer, &mut a, &mut b);
        assert_eq!(stats.skip_tiles, 16);
        assert_eq!(stats.delta_tiles, 0);
        assert_eq!(stats.intra_tiles, 0);
        // 64-bit header + 2 bits per tile.
        assert_eq!(stats.bits, 64 + 16 * 2);
        assert!(stats.intra_bits > stats.bits);
        assert_eq!(stats.bits, writer.bits_written());
    }

    #[test]
    fn missing_reference_is_a_typed_error() {
        let reference = random_frame(8, 8, 1);
        let bytes = encode(4, &reference, &reference);
        let mut out = reference.clone();
        assert_eq!(
            apply_temporal_frame(&bytes, u64::MAX, &mut out, false),
            Err(BitstreamError::MissingReference)
        );
    }

    #[test]
    fn mismatched_reference_is_a_typed_error() {
        let reference = random_frame(8, 8, 1);
        let bytes = encode(4, &reference, &reference);
        let mut wrong = random_frame(16, 8, 2);
        assert!(matches!(
            apply_temporal_frame(&bytes, u64::MAX, &mut wrong, true),
            Err(BitstreamError::ReferenceMismatch { .. })
        ));
    }

    #[test]
    fn reserved_tile_mode_is_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(0, 16);
        w.write_bits(8, 16);
        w.write_bits(8, 16);
        w.write_bits(8, 16);
        w.write_bits(3, 2); // reserved mode
        let mut out = random_frame(8, 8, 1);
        assert_eq!(
            apply_temporal_frame(&w.finish(), u64::MAX, &mut out, true),
            Err(BitstreamError::InvalidHeader { field: "tile mode" })
        );
    }

    #[test]
    fn header_budget_and_floor_are_enforced() {
        // Over the pixel budget.
        let mut w = BitWriter::new();
        w.write_bits(0, 16);
        w.write_bits(65535, 16);
        w.write_bits(65535, 16);
        w.write_bits(1, 16);
        let mut out = random_frame(8, 8, 1);
        assert!(matches!(
            apply_temporal_frame(&w.finish(), DEFAULT_MAX_PIXELS_FOR_TEST, &mut out, true),
            Err(BitstreamError::FrameTooLarge { .. })
        ));
        // Declared grid cannot fit the remaining input.
        let mut w = BitWriter::new();
        w.write_bits(0, 16);
        w.write_bits(1024, 16);
        w.write_bits(1024, 16);
        w.write_bits(1, 16);
        assert!(matches!(
            apply_temporal_frame(&w.finish(), DEFAULT_MAX_PIXELS_FOR_TEST, &mut out, true),
            Err(BitstreamError::InsufficientInput { .. })
        ));
    }

    const DEFAULT_MAX_PIXELS_FOR_TEST: u64 = crate::decoder::DEFAULT_MAX_PIXELS;
}
