//! Bit-granular serialization of encoded frames.
//!
//! The size accounting in [`crate::stats`] is exact, but to make the codec
//! honest the encoded frame can also be packed into an actual byte stream
//! and decoded back. The writer packs bits MSB-first.

use serde::{Deserialize, Serialize};

/// Errors produced while reading a bitstream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitstreamError {
    /// The reader ran past the end of the stream.
    UnexpectedEnd {
        /// Number of bits that were requested.
        requested: u32,
        /// Number of bits remaining in the stream.
        remaining: u64,
    },
    /// A header field held an invalid value.
    InvalidHeader {
        /// Description of the offending field.
        field: &'static str,
    },
    /// The header describes a payload that cannot fit in the remaining
    /// input (detected up front, before any allocation).
    InsufficientInput {
        /// Minimum number of bits the declared geometry requires.
        required_bits: u64,
        /// Number of bits actually remaining in the stream.
        remaining_bits: u64,
    },
    /// The header declares a frame larger than the decoder's pixel budget.
    FrameTooLarge {
        /// Number of pixels the header declares.
        pixels: u64,
        /// The decoder's configured pixel budget.
        max_pixels: u64,
    },
    /// A predicted (temporal) frame arrived but the decoder holds no valid
    /// reference frame — the stream is unreconstructable until the next
    /// keyframe.
    MissingReference,
    /// A predicted (temporal) frame's dimensions disagree with the
    /// decoder's reference frame.
    ReferenceMismatch {
        /// Width the predicted frame declares.
        width: u32,
        /// Height the predicted frame declares.
        height: u32,
        /// Width of the decoder's reference frame.
        ref_width: u32,
        /// Height of the decoder's reference frame.
        ref_height: u32,
    },
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::UnexpectedEnd {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "unexpected end of bitstream: requested {requested} bits, {remaining} remain"
                )
            }
            BitstreamError::InvalidHeader { field } => {
                write!(f, "invalid bitstream header field: {field}")
            }
            BitstreamError::InsufficientInput {
                required_bits,
                remaining_bits,
            } => {
                write!(
                    f,
                    "bitstream header declares a payload of at least {required_bits} bits \
                     but only {remaining_bits} remain"
                )
            }
            BitstreamError::FrameTooLarge { pixels, max_pixels } => {
                write!(
                    f,
                    "bitstream header declares {pixels} pixels, \
                     over the decoder budget of {max_pixels}"
                )
            }
            BitstreamError::MissingReference => {
                write!(
                    f,
                    "predicted frame without a valid reference: \
                     unreconstructable until the next keyframe"
                )
            }
            BitstreamError::ReferenceMismatch {
                width,
                height,
                ref_width,
                ref_height,
            } => {
                write!(
                    f,
                    "predicted frame is {width}x{height} but the reference \
                     frame is {ref_width}x{ref_height}"
                )
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

/// An MSB-first bit writer backed by a growable byte buffer.
///
/// # Examples
///
/// ```
/// use pvc_bdc::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(8).unwrap(), 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits already used in the final byte (0–7).
    bit_pos: u8,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
            self.bits_written += 1;
        }
    }

    /// Total number of bits written so far.
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }

    /// The packed bytes written so far (the final byte is zero-padded).
    ///
    /// Together with [`Self::clear`] this lets one writer serve a whole
    /// stream of frames: clear, write, read the bytes, repeat — no
    /// per-frame buffer allocation.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Empties the writer for reuse, keeping the byte buffer's capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bit_pos = 0;
        self.bits_written = 0;
    }

    /// Finishes the stream and returns the packed bytes (the final byte is
    /// zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// An MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_index: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            bit_index: 0,
        }
    }

    /// Number of unread bits remaining (including any final padding bits).
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.bit_index)
    }

    /// Reads `count` bits, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::UnexpectedEnd`] if fewer than `count` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, BitstreamError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if u64::from(count) > self.remaining_bits() {
            return Err(BitstreamError::UnexpectedEnd {
                requested: count,
                remaining: self.remaining_bits(),
            });
        }
        let mut value = 0u32;
        for _ in 0..count {
            let byte = self.bytes[(self.bit_index / 8) as usize];
            let bit = (byte >> (7 - (self.bit_index % 8))) & 1;
            value = (value << 1) | u32::from(bit);
            self.bit_index += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let fields: Vec<(u32, u32)> = vec![
            (0b1, 1),
            (0b10, 2),
            (0xABC, 12),
            (0, 5),
            (0xFFFF_FFFF, 32),
            (42, 7),
        ];
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let total: u32 = fields.iter().map(|&(_, c)| c).sum();
        assert_eq!(w.bits_written(), u64::from(total));
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 32 { u32::MAX } else { (1u32 << c) - 1 };
            assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }

    #[test]
    fn zero_bit_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bits_written(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn reading_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        // 5 padding bits remain in the byte; asking for 8 must fail.
        let err = r.read_bits(8).unwrap_err();
        assert!(matches!(
            err,
            BitstreamError::UnexpectedEnd { requested: 8, .. }
        ));
        assert!(err.to_string().contains("unexpected end"));
    }

    #[test]
    fn cleared_writer_produces_identical_bytes_without_reallocating() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        w.write_bits(0b101, 3);
        let first = w.as_bytes().to_vec();
        assert_eq!(w.finish(), first);

        let mut reused = BitWriter::new();
        for _ in 0..3 {
            reused.clear();
            reused.write_bits(0xABCD, 16);
            reused.write_bits(0b101, 3);
            assert_eq!(reused.as_bytes(), first.as_slice());
            assert_eq!(reused.bits_written(), 19);
        }
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    #[should_panic]
    fn oversized_write_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0, 33);
    }
}
