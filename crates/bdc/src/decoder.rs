//! Byte-level decoding of BD bitstreams with reusable scratch.
//!
//! [`crate::BdEncodedFrame::from_bitstream`] materializes the full
//! per-tile structure (a `Vec` of deltas per channel per tile) on every
//! call. A streaming client only wants the pixels back, so [`BdDecoder`]
//! parses the same bitstream layout and writes code values straight into a
//! caller-owned [`SrgbFrame`] — once the frame's buffer has warmed up to
//! the session's dimensions, the per-frame decode allocates nothing,
//! mirroring the encoder's `encode_frame_into` discipline.
//!
//! Both decode entry points validate the header *before* allocating:
//! untrusted input gets to spend memory only in proportion to the bytes it
//! actually supplies (plus the configured [`BdDecoder::with_max_pixels`]
//! frame budget).

use crate::bitstream::{BitReader, BitstreamError};
use crate::temporal::{apply_temporal_frame, is_temporal_bitstream, FrameKind};
use crate::tile_codec::{BASE_BITS, METADATA_BITS};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame, TileGrid};

/// Default frame budget: 2^25 pixels (~33.5 Mpx), comfortably above the
/// Vision-class native 3660×3200 (~11.7 Mpx) but small enough that a
/// crafted 65535×65535 header (~4.3 Gpx) is rejected before any
/// allocation.
pub const DEFAULT_MAX_PIXELS: u64 = 1 << 25;

/// Validated bitstream header: dimensions plus tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrameHeader {
    pub dimensions: Dimensions,
    pub tile_size: u32,
}

/// Reads and validates the 48-bit frame header.
///
/// Rejects zero dimensions/tile size, frames over `max_pixels`, and —
/// crucially — headers whose declared tile grid cannot possibly be backed
/// by the remaining input: every channel of every tile costs at least
/// `BASE_BITS + METADATA_BITS` bits, so `tile_count × 3 × 12` bits is a
/// hard lower bound on the payload. This bounds every later allocation to
/// a small multiple of the input length.
pub(crate) fn read_frame_header(
    r: &mut BitReader<'_>,
    max_pixels: u64,
) -> Result<FrameHeader, BitstreamError> {
    let width = r.read_bits(16)?;
    let height = r.read_bits(16)?;
    let tile_size = r.read_bits(16)?;
    if width == 0 || height == 0 {
        return Err(BitstreamError::InvalidHeader {
            field: "dimensions",
        });
    }
    if tile_size == 0 {
        return Err(BitstreamError::InvalidHeader { field: "tile size" });
    }
    let pixels = u64::from(width) * u64::from(height);
    if pixels > max_pixels {
        return Err(BitstreamError::FrameTooLarge { pixels, max_pixels });
    }
    let tile_count = u64::from(width.div_ceil(tile_size)) * u64::from(height.div_ceil(tile_size));
    let required_bits = tile_count * 3 * (BASE_BITS + METADATA_BITS);
    if required_bits > r.remaining_bits() {
        return Err(BitstreamError::InsufficientInput {
            required_bits,
            remaining_bits: r.remaining_bits(),
        });
    }
    Ok(FrameHeader {
        dimensions: Dimensions::new(width, height),
        tile_size,
    })
}

/// Checks that a channel's declared delta payload fits the remaining input
/// before any of it is read (or, in `from_bitstream`, allocated).
pub(crate) fn check_delta_payload(
    r: &BitReader<'_>,
    pixel_count: usize,
    delta_bits: u8,
) -> Result<(), BitstreamError> {
    let required_bits = pixel_count as u64 * u64::from(delta_bits);
    if required_bits > r.remaining_bits() {
        return Err(BitstreamError::InsufficientInput {
            required_bits,
            remaining_bits: r.remaining_bits(),
        });
    }
    Ok(())
}

/// A reusable byte-level BD decoder.
///
/// Intra decoding ([`decode_bitstream`](Self::decode_bitstream),
/// [`decode_bitstream_into`](Self::decode_bitstream_into)) is stateless:
/// the only decoder state it touches is the pixel budget, and the scratch
/// that matters — the output frame's pixel buffer — is owned by the caller
/// and recycled across frames.
///
/// Temporal streams are stateful: the decoder owns the reference frame
/// (its previous reconstruction) that predicted frames apply against.
/// [`decode_frame_into`](Self::decode_frame_into) sniffs the frame kind
/// from the first 16 bits, updates the reference, and reports whether the
/// frame was a keyframe. A predicted frame arriving while the reference is
/// absent (fresh decoder, prior decode error, or an explicit
/// [`invalidate_reference`](Self::invalidate_reference) after a stream
/// gap) fails with [`BitstreamError::MissingReference`] rather than
/// reconstructing wrong pixels.
///
/// # Examples
///
/// ```
/// use pvc_bdc::{BdConfig, BdDecoder, BdEncoder};
/// use pvc_color::Srgb8;
/// use pvc_frame::{Dimensions, SrgbFrame};
///
/// let frame = SrgbFrame::filled(Dimensions::new(8, 8), Srgb8::new(1, 2, 3));
/// let bytes = BdEncoder::new(BdConfig::default())
///     .encode_frame(&frame)
///     .to_bitstream();
/// let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
/// BdDecoder::new().decode_bitstream_into(&bytes, &mut out).unwrap();
/// assert_eq!(out, frame);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BdDecoder {
    max_pixels: u64,
    /// The previous reconstruction, applied against by predicted frames.
    reference: SrgbFrame,
    reference_valid: bool,
}

impl Default for BdDecoder {
    fn default() -> Self {
        BdDecoder::new()
    }
}

impl BdDecoder {
    /// Creates a decoder with the default [`DEFAULT_MAX_PIXELS`] budget.
    pub fn new() -> Self {
        BdDecoder {
            max_pixels: DEFAULT_MAX_PIXELS,
            reference: SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default()),
            reference_valid: false,
        }
    }

    /// Returns a copy with an explicit per-frame pixel budget. Headers
    /// declaring more pixels are rejected with
    /// [`BitstreamError::FrameTooLarge`] before any allocation.
    pub fn with_max_pixels(mut self, max_pixels: u64) -> Self {
        self.max_pixels = max_pixels;
        self
    }

    /// The configured per-frame pixel budget.
    pub fn max_pixels(&self) -> u64 {
        self.max_pixels
    }

    /// Decodes a bitstream produced by
    /// [`crate::BdEncodedFrame::to_bitstream`] into a fresh frame.
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] if the stream is truncated, its header
    /// is invalid, or the frame exceeds the pixel budget.
    pub fn decode_bitstream(&self, bytes: &[u8]) -> Result<SrgbFrame, BitstreamError> {
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        self.decode_bitstream_into(bytes, &mut out)?;
        Ok(out)
    }

    /// Decodes a bitstream into a caller-owned frame, reusing its pixel
    /// buffer.
    ///
    /// `out` is resized (in place, keeping capacity) to the decoded
    /// dimensions; once it has warmed up to the session's frame size the
    /// decode performs no allocation. On error the frame's contents are
    /// unspecified (its dimensions may already reflect the header).
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] if the stream is truncated, its header
    /// is invalid, or the frame exceeds the pixel budget.
    pub fn decode_bitstream_into(
        &self,
        bytes: &[u8],
        out: &mut SrgbFrame,
    ) -> Result<(), BitstreamError> {
        decode_intra_into(self.max_pixels, bytes, out)
    }

    /// Decodes either frame kind into a caller-owned frame, maintaining
    /// the decoder's reference state.
    ///
    /// The first 16 bits select the parser: zero means a predicted
    /// (temporal) frame, anything else an intra keyframe. A successful
    /// decode of either kind leaves the reconstruction as the new
    /// reference and copies it into `out`; once `out` and the reference
    /// have warmed up to the session's dimensions the decode allocates
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] for truncated or invalid input, for a
    /// predicted frame without a valid reference
    /// ([`BitstreamError::MissingReference`]) and for a predicted frame
    /// whose dimensions disagree with the reference
    /// ([`BitstreamError::ReferenceMismatch`]). Any error invalidates the
    /// reference: the stream is unreconstructable until the next
    /// keyframe, and further predicted frames keep failing rather than
    /// emitting wrong pixels.
    pub fn decode_frame_into(
        &mut self,
        bytes: &[u8],
        out: &mut SrgbFrame,
    ) -> Result<FrameKind, BitstreamError> {
        let kind = if is_temporal_bitstream(bytes) {
            let valid = self.reference_valid;
            // Pessimistically poison the reference: apply mutates it in
            // place, so any mid-apply error leaves it partial.
            self.reference_valid = false;
            apply_temporal_frame(bytes, self.max_pixels, &mut self.reference, valid)?;
            FrameKind::Predicted
        } else {
            self.reference_valid = false;
            decode_intra_into(self.max_pixels, bytes, &mut self.reference)?;
            FrameKind::Key
        };
        self.reference_valid = true;
        out.clone_from(&self.reference);
        Ok(kind)
    }

    /// Drops the reference frame, e.g. after a detected stream gap.
    /// Predicted frames fail with [`BitstreamError::MissingReference`]
    /// until the next keyframe decodes.
    pub fn invalidate_reference(&mut self) {
        self.reference_valid = false;
    }

    /// Whether the decoder currently holds a valid reference frame.
    pub fn has_reference(&self) -> bool {
        self.reference_valid
    }
}

/// Stateless intra decode into a caller-owned frame (the body shared by
/// [`BdDecoder::decode_bitstream_into`] and the keyframe arm of
/// [`BdDecoder::decode_frame_into`]).
fn decode_intra_into(
    max_pixels: u64,
    bytes: &[u8],
    out: &mut SrgbFrame,
) -> Result<(), BitstreamError> {
    let mut r = BitReader::new(bytes);
    let header = read_frame_header(&mut r, max_pixels)?;
    out.reset(header.dimensions, Srgb8::default());
    let grid = TileGrid::new(header.dimensions, header.tile_size);
    let width = header.dimensions.width as usize;
    let pixels = out.pixels_mut();
    for tile in grid.tiles() {
        for channel in 0..3u8 {
            let base = r.read_bits(8)? as u8;
            let delta_bits = r.read_bits(4)? as u8;
            if delta_bits > 8 {
                return Err(BitstreamError::InvalidHeader {
                    field: "delta bit length",
                });
            }
            check_delta_payload(&r, tile.pixel_count(), delta_bits)?;
            for y in tile.y..tile.y + tile.height {
                let row = y as usize * width;
                for x in tile.x..tile.x + tile.width {
                    let delta = r.read_bits(u32::from(delta_bits))? as u8;
                    let value = base.wrapping_add(delta);
                    let pixel = &mut pixels[row + x as usize];
                    match channel {
                        0 => pixel.r = value,
                        1 => pixel.g = value,
                        _ => pixel.b = value,
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BdConfig, BdEncodedFrame, BdEncoder};
    use rand::{Rng, SeedableRng};

    fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dims = Dimensions::new(width, height);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
    }

    #[test]
    fn decodes_what_the_encoder_wrote() {
        for (w, h, tile_size) in [(24, 16, 4), (13, 9, 4), (17, 23, 8), (5, 5, 7)] {
            let frame = random_frame(w, h, u64::from(w * h));
            let bytes = BdEncoder::new(BdConfig::with_tile_size(tile_size))
                .encode_frame(&frame)
                .to_bitstream();
            let decoded = BdDecoder::new().decode_bitstream(&bytes).expect("valid");
            assert_eq!(decoded, frame, "{w}x{h} tile {tile_size}");
        }
    }

    #[test]
    fn scratch_frame_is_reused_across_dimensions() {
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        let decoder = BdDecoder::new();
        for (w, h) in [(16, 16), (8, 24), (24, 8)] {
            let frame = random_frame(w, h, 99);
            let bytes = BdEncoder::default().encode_frame(&frame).to_bitstream();
            decoder
                .decode_bitstream_into(&bytes, &mut out)
                .expect("valid");
            assert_eq!(out, frame);
        }
    }

    #[test]
    fn matches_the_materialized_decode_path() {
        let frame = random_frame(21, 14, 3);
        let encoded = BdEncoder::new(BdConfig::with_tile_size(4)).encode_frame(&frame);
        let bytes = encoded.to_bitstream();
        let via_struct = BdEncodedFrame::from_bitstream(&bytes)
            .expect("valid")
            .decode();
        let via_decoder = BdDecoder::new().decode_bitstream(&bytes).expect("valid");
        assert_eq!(via_decoder, via_struct);
    }

    #[test]
    fn oversized_header_is_rejected_before_allocating() {
        // width=65535, height=65535, tile_size=1: ~4.3 Gpx from 9 bytes.
        let mut w = crate::BitWriter::new();
        w.write_bits(65535, 16);
        w.write_bits(65535, 16);
        w.write_bits(1, 16);
        w.write_bits(0, 24);
        let err = BdDecoder::new().decode_bitstream(&w.finish()).unwrap_err();
        assert!(matches!(err, BitstreamError::FrameTooLarge { .. }));
    }

    #[test]
    fn undersized_payload_is_rejected_before_allocating() {
        // A frame within the pixel budget whose tile grid still cannot fit
        // in the input: 1024x1024 with 1x1 tiles needs >= 36 bits per tile.
        let mut w = crate::BitWriter::new();
        w.write_bits(1024, 16);
        w.write_bits(1024, 16);
        w.write_bits(1, 16);
        w.write_bits(0, 24);
        let err = BdDecoder::new().decode_bitstream(&w.finish()).unwrap_err();
        assert!(matches!(err, BitstreamError::InsufficientInput { .. }));
    }

    #[test]
    fn pixel_budget_is_configurable() {
        let frame = random_frame(16, 16, 1);
        let bytes = BdEncoder::default().encode_frame(&frame).to_bitstream();
        let tight = BdDecoder::new().with_max_pixels(100);
        assert!(matches!(
            tight.decode_bitstream(&bytes).unwrap_err(),
            BitstreamError::FrameTooLarge {
                pixels: 256,
                max_pixels: 100
            }
        ));
        let exact = BdDecoder::new().with_max_pixels(256);
        assert_eq!(exact.decode_bitstream(&bytes).expect("fits"), frame);
    }

    #[test]
    fn stateful_decode_tracks_the_reference_across_a_gop() {
        let encoder = BdEncoder::new(BdConfig::with_tile_size(4));
        let key = random_frame(16, 16, 11);
        let mut predicted = key.clone();
        predicted.pixels_mut()[40] = Srgb8::new(9, 9, 9);

        let key_bytes = encoder.encode_frame(&key).to_bitstream();
        let mut writer = crate::BitWriter::new();
        let (mut a, mut b) = (
            pvc_frame::SrgbTileLanes::new(),
            pvc_frame::SrgbTileLanes::new(),
        );
        crate::temporal::encode_temporal_frame_into(
            4,
            &predicted,
            &key,
            &mut writer,
            &mut a,
            &mut b,
        );
        let predicted_bytes = writer.finish();

        let mut decoder = BdDecoder::new();
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        assert!(!decoder.has_reference());
        // Predicted before any keyframe: typed error, reference stays absent.
        assert_eq!(
            decoder.decode_frame_into(&predicted_bytes, &mut out),
            Err(BitstreamError::MissingReference)
        );
        assert_eq!(
            decoder.decode_frame_into(&key_bytes, &mut out),
            Ok(crate::FrameKind::Key)
        );
        assert_eq!(out, key);
        assert!(decoder.has_reference());
        assert_eq!(
            decoder.decode_frame_into(&predicted_bytes, &mut out),
            Ok(crate::FrameKind::Predicted)
        );
        assert_eq!(out, predicted);
        // An explicit invalidation (stream gap) blocks further prediction.
        decoder.invalidate_reference();
        assert_eq!(
            decoder.decode_frame_into(&predicted_bytes, &mut out),
            Err(BitstreamError::MissingReference)
        );
        // A failed decode poisons the reference too.
        assert_eq!(
            decoder.decode_frame_into(&key_bytes, &mut out),
            Ok(crate::FrameKind::Key)
        );
        assert!(decoder
            .decode_frame_into(&predicted_bytes[..predicted_bytes.len() - 1], &mut out)
            .is_err());
        assert!(!decoder.has_reference());
        assert_eq!(
            decoder.decode_frame_into(&predicted_bytes, &mut out),
            Err(BitstreamError::MissingReference)
        );
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let frame = random_frame(16, 16, 5);
        let bytes = BdEncoder::default().encode_frame(&frame).to_bitstream();
        let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
        for len in [3, 6, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                BdDecoder::new()
                    .decode_bitstream_into(&bytes[..len], &mut out)
                    .is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }
}
