//! The per-tile, per-channel Base+Delta codec.

use crate::stats::SizeBreakdown;
use pvc_color::lanes::min_max_u8;
use pvc_color::Srgb8;
use pvc_frame::SrgbTileLanes;
use serde::{Deserialize, Serialize};

/// Number of bits used to store a base value (one 8-bit sRGB code value).
pub const BASE_BITS: u64 = 8;

/// Number of metadata bits per channel per tile: a 4-bit field holding the
/// delta bit-length (0–8).
pub const METADATA_BITS: u64 = 4;

/// Number of bits needed to encode any unsigned value in `0..=range`.
///
/// This is `⌈log₂(range + 1)⌉`, the per-Δ bit length of Eq. 6 (with the
/// ceiling that an actual encoder needs; a single bit-length is shared by
/// every Δ of the tile, so it must accommodate the worst case).
#[inline]
pub fn bits_for_range(range: u8) -> u8 {
    if range == 0 {
        0
    } else {
        (8 - range.leading_zeros() as u8).max(1)
    }
}

/// The Base+Delta encoding of one color channel of one tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelEncoding {
    /// The base value (the minimum code value of the tile).
    pub base: u8,
    /// Bit length shared by every Δ of the tile.
    pub delta_bits: u8,
    /// Per-pixel offsets from the base, in tile row-major order.
    pub deltas: Vec<u8>,
}

impl ChannelEncoding {
    /// Size of this channel encoding.
    pub fn size(&self) -> SizeBreakdown {
        SizeBreakdown {
            base_bits: BASE_BITS,
            metadata_bits: METADATA_BITS,
            delta_bits: self.delta_bits as u64 * self.deltas.len() as u64,
        }
    }

    /// Reconstructs the original code values.
    pub fn decode(&self) -> Vec<u8> {
        self.deltas
            .iter()
            .map(|&d| self.base.wrapping_add(d))
            .collect()
    }
}

/// The Base+Delta encoding of one pixel tile (all three channels).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileEncoding {
    /// Per-channel encodings in `(R, G, B)` order.
    pub channels: [ChannelEncoding; 3],
    /// Number of pixels in the tile.
    pub pixel_count: usize,
}

impl TileEncoding {
    /// Size of the encoded tile.
    pub fn size(&self) -> SizeBreakdown {
        self.channels.iter().map(ChannelEncoding::size).sum()
    }

    /// The largest per-channel delta bit length of the tile; a proxy for how
    /// compressible the tile is.
    pub fn max_delta_bits(&self) -> u8 {
        self.channels
            .iter()
            .map(|c| c.delta_bits)
            .max()
            .unwrap_or(0)
    }
}

/// Encodes one tile of sRGB pixels with the Base+Delta scheme.
///
/// The base of each channel is the minimum code value of the tile, so every
/// Δ is non-negative; the shared Δ bit-length is the number of bits needed
/// for the largest offset (`max − min`), exactly the quantity the
/// perceptual color adjustment tries to minimize.
///
/// # Panics
///
/// Panics if `pixels` is empty.
pub fn encode_tile(pixels: &[Srgb8]) -> TileEncoding {
    assert!(!pixels.is_empty(), "cannot encode an empty tile");
    // SoA: transpose once, then compute each channel's range and deltas over
    // a contiguous lane so the min/max reduction and the delta subtraction
    // vectorize. Integer min/max is order-independent, so the result is
    // bit-identical to the scalar [`channel_range`] walk.
    let mut lanes = SrgbTileLanes::new();
    lanes.fill_from_pixels(pixels);
    let channels = std::array::from_fn(|c| {
        let lane = lanes.channel(c);
        let (min, max) = min_max_u8(lane);
        ChannelEncoding {
            base: min,
            delta_bits: bits_for_range(max - min),
            deltas: lane.iter().map(|&v| v - min).collect(),
        }
    });
    TileEncoding {
        channels,
        pixel_count: pixels.len(),
    }
}

/// The `(min, max)` code values of one channel over a tile.
///
/// Scalar reference walk over AoS pixels; the hot paths use the lane kernel
/// [`pvc_color::lanes::min_max_u8`] over an SoA gather instead, and the
/// equivalence suites compare the two.
///
/// # Panics
///
/// Panics if `pixels` is empty.
pub fn channel_range(pixels: &[Srgb8], channel: usize) -> (u8, u8) {
    assert!(!pixels.is_empty(), "cannot encode an empty tile");
    let mut min = u8::MAX;
    let mut max = u8::MIN;
    for p in pixels {
        let v = p.channel(channel);
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

/// Decodes a tile back into sRGB pixels. BD is numerically lossless, so this
/// returns exactly the pixels passed to [`encode_tile`].
pub fn decode_tile(tile: &TileEncoding) -> Vec<Srgb8> {
    let r = tile.channels[0].decode();
    let g = tile.channels[1].decode();
    let b = tile.channels[2].decode();
    (0..tile.pixel_count)
        .map(|i| Srgb8::new(r[i], g[i], b[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_range_matches_manual_table() {
        assert_eq!(bits_for_range(0), 0);
        assert_eq!(bits_for_range(1), 1);
        assert_eq!(bits_for_range(2), 2);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 3);
        assert_eq!(bits_for_range(7), 3);
        assert_eq!(bits_for_range(8), 4);
        assert_eq!(bits_for_range(255), 8);
    }

    #[test]
    fn bits_for_range_always_sufficient() {
        for range in 0..=255u8 {
            let bits = bits_for_range(range);
            if bits < 8 {
                assert!(
                    u16::from(range) < (1u16 << bits).max(1),
                    "range {range} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn flat_tile_needs_no_delta_bits() {
        let pixels = vec![Srgb8::new(95, 12, 200); 16];
        let tile = encode_tile(&pixels);
        assert_eq!(tile.max_delta_bits(), 0);
        assert_eq!(tile.size().delta_bits, 0);
        assert_eq!(tile.size().base_bits, 24);
        assert_eq!(tile.size().metadata_bits, 12);
        assert_eq!(decode_tile(&tile), pixels);
    }

    #[test]
    fn figure_4_like_tile() {
        // Pixels clustered around 95 with small offsets: the deltas should
        // take only a few bits.
        let codes = [
            95u8, 97, 96, 95, 98, 99, 95, 96, 97, 95, 98, 95, 96, 97, 95, 99,
        ];
        let pixels: Vec<Srgb8> = codes.iter().map(|&v| Srgb8::new(v, v, v)).collect();
        let tile = encode_tile(&pixels);
        assert_eq!(tile.channels[0].base, 95);
        assert_eq!(tile.channels[0].delta_bits, 3); // range 4 → 3 bits
        assert_eq!(decode_tile(&tile), pixels);
        let bpp = tile.size().bits_per_pixel(16);
        assert!(bpp < 12.0, "bits per pixel {bpp}");
    }

    #[test]
    fn noisy_tile_costs_more_than_smooth_tile() {
        let smooth: Vec<Srgb8> = (0..16).map(|i| Srgb8::new(100 + i % 2, 50, 60)).collect();
        let noisy: Vec<Srgb8> = (0..16u8)
            .map(|i| Srgb8::new(i.wrapping_mul(37), i.wrapping_mul(91), i))
            .collect();
        let s = encode_tile(&smooth).size().total_bits();
        let n = encode_tile(&noisy).size().total_bits();
        assert!(n > s);
    }

    #[test]
    fn roundtrip_is_lossless_for_extremes() {
        let pixels = vec![
            Srgb8::new(0, 255, 128),
            Srgb8::new(255, 0, 127),
            Srgb8::new(1, 254, 126),
            Srgb8::new(254, 1, 129),
        ];
        let tile = encode_tile(&pixels);
        assert_eq!(decode_tile(&tile), pixels);
        assert_eq!(tile.channels[0].delta_bits, 8);
    }

    #[test]
    fn channel_encoding_size_accounts_every_delta() {
        let pixels: Vec<Srgb8> = (0..36).map(|i| Srgb8::new(i as u8, 0, 0)).collect();
        let tile = encode_tile(&pixels);
        assert_eq!(tile.channels[0].deltas.len(), 36);
        assert_eq!(tile.channels[0].delta_bits, 6);
        assert_eq!(tile.channels[0].size().delta_bits, 36 * 6);
    }

    #[test]
    #[should_panic]
    fn empty_tile_panics() {
        let _ = encode_tile(&[]);
    }

    #[test]
    fn lane_range_matches_scalar_reference() {
        // Pixel counts around the 8-wide lane blocking, including remainders.
        for len in 1..=33usize {
            let pixels: Vec<Srgb8> = (0..len)
                .map(|i| {
                    let v = (i * 37 % 256) as u8;
                    Srgb8::new(v, v.wrapping_mul(3), v.wrapping_add(91))
                })
                .collect();
            let mut lanes = SrgbTileLanes::new();
            lanes.fill_from_pixels(&pixels);
            for channel in 0..3 {
                assert_eq!(
                    min_max_u8(lanes.channel(channel)),
                    channel_range(&pixels, channel),
                    "len {len} channel {channel}"
                );
            }
        }
    }
}
