//! Property-based tests for the Base+Delta codec.

use proptest::prelude::*;
use pvc_bdc::{decode_tile, encode_tile, BdConfig, BdEncodedFrame, BdEncoder};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame};

fn arb_pixel() -> impl Strategy<Value = Srgb8> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Srgb8::new(r, g, b))
}

proptest! {
    #[test]
    fn tile_roundtrip_is_lossless(pixels in proptest::collection::vec(arb_pixel(), 1..64)) {
        let tile = encode_tile(&pixels);
        prop_assert_eq!(decode_tile(&tile), pixels);
    }

    #[test]
    fn tile_size_is_bounded_by_uncompressed_plus_overhead(
        pixels in proptest::collection::vec(arb_pixel(), 1..64)
    ) {
        let tile = encode_tile(&pixels);
        let size = tile.size();
        // Worst case: 8 delta bits per channel per pixel, plus 36 bits of
        // base+metadata overhead.
        prop_assert!(size.total_bits() <= pixels.len() as u64 * 24 + 36);
        // And never less than the base+metadata overhead itself.
        prop_assert!(size.total_bits() >= 36);
    }

    #[test]
    fn frame_roundtrip_is_lossless(
        width in 1u32..40,
        height in 1u32..40,
        tile_size in 1u32..9,
        seed in any::<u64>(),
    ) {
        let dims = Dimensions::new(width, height);
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let frame = SrgbFrame::from_pixels(dims, pixels).unwrap();
        let encoded = BdEncoder::new(BdConfig::with_tile_size(tile_size)).encode_frame(&frame);
        prop_assert_eq!(encoded.decode(), frame);
    }

    #[test]
    fn bitstream_roundtrip_preserves_encoding(
        width in 1u32..24,
        height in 1u32..24,
        seed in any::<u64>(),
    ) {
        let dims = Dimensions::new(width, height);
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pixels = (0..dims.pixel_count())
            .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let frame = SrgbFrame::from_pixels(dims, pixels).unwrap();
        let encoded = BdEncoder::new(BdConfig::default()).encode_frame(&frame);
        let parsed = BdEncodedFrame::from_bitstream(&encoded.to_bitstream()).unwrap();
        prop_assert_eq!(&parsed, &encoded);
        prop_assert_eq!(parsed.decode(), frame);
    }
}
