//! Adversarial decoder suite: no byte string may panic the decoders or
//! make them allocate unboundedly.
//!
//! The decode entry points (`BdEncodedFrame::from_bitstream` and
//! `BdDecoder`) face *untrusted* input once a wire stream exists, so the
//! contract is: return `Err` or a frame — never panic — and keep every
//! allocation proportional to the input (plus the decoder's configured
//! pixel budget, which is what bounds legitimate flat frames whose output
//! is intrinsically much larger than their input).
//!
//! Allocation is asserted with a *byte-counting* global allocator whose
//! counter is thread-local (a const-initialized `Cell<u64>` has no drop
//! glue, so the thread-local access itself never allocates or recurses).
//! Unlike the process-global event counter in
//! `crates/core/tests/alloc_regression.rs`, per-thread counters stay
//! accurate when the test harness runs these cases concurrently.

use proptest::prelude::*;
use pvc_bdc::{BdConfig, BdDecoder, BdEncodedFrame, BdEncoder, BitWriter, BitstreamError};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Bytes allocated by this thread since it started.
    static BYTES_ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator with a per-thread byte counter in front.
struct ByteCountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter has no effect on the returned memory.
unsafe impl GlobalAlloc for ByteCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.with(|b| b.set(b.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.with(|b| b.set(b.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: ByteCountingAllocator = ByteCountingAllocator;

/// Runs `f`, returning its result and the bytes it allocated.
fn measured<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = BYTES_ALLOCATED.with(Cell::get);
    let result = f();
    let after = BYTES_ALLOCATED.with(Cell::get);
    (result, after - before)
}

/// A small pixel budget for the strict byte-bound assertions: decoding
/// into at most 64×64 pixels caps the frame scratch at ~12 KiB.
const TIGHT_BUDGET: u64 = 64 * 64;

/// Allocation allowance for a decode of `input_len` bytes under
/// [`TIGHT_BUDGET`]: a small multiple of the input plus the budgeted
/// frame (and `Vec` growth slack).
fn allowance(input_len: usize) -> u64 {
    128 * input_len as u64 + 64 * 1024
}

/// The width×height the input's header declares (0 when too short to
/// have one), capped at the decoder budget — beyond the budget the
/// decode dies in header validation without allocating.
fn declared_pixels(bytes: &[u8]) -> u64 {
    if bytes.len() < 4 {
        return 0;
    }
    let width = u64::from(bytes[0]) << 8 | u64::from(bytes[1]);
    let height = u64::from(bytes[2]) << 8 | u64::from(bytes[3]);
    (width * height).min(pvc_bdc::DEFAULT_MAX_PIXELS)
}

fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let dims = Dimensions::new(width, height);
    let pixels = (0..dims.pixel_count())
        .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
}

fn valid_stream() -> Vec<u8> {
    BdEncoder::new(BdConfig::with_tile_size(4))
        .encode_frame(&random_frame(16, 16, 42))
        .to_bitstream()
}

/// Decodes `bytes` through both entry points, asserting neither panics
/// and both stay inside the allocation allowance.
///
/// `from_bitstream` materializes the declared frame's per-pixel deltas,
/// and for a *valid* flat stream (`delta_bits = 0` everywhere) that
/// output is legitimately much larger than the input — so its bound is
/// the input allowance plus a per-declared-pixel term (itself capped by
/// the decoder's pixel budget). The tight-budget `BdDecoder` bound below
/// needs no such term: the budget alone caps its only allocation.
fn decode_both_ways(bytes: &[u8]) {
    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(bytes).map(drop));
    assert!(
        allocated <= allowance(bytes.len()) + 8 * declared_pixels(bytes),
        "from_bitstream allocated {allocated} bytes for {} input bytes ({result:?})",
        bytes.len()
    );
    let decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
    let (result, allocated) = measured(|| decoder.decode_bitstream(bytes).map(drop));
    assert!(
        allocated <= allowance(bytes.len()),
        "BdDecoder allocated {allocated} bytes for {} input bytes ({result:?})",
        bytes.len()
    );
}

/// The original decompression bomb: a 9-byte stream whose header declares
/// 65535×65535 (~4.3 Gpx, ~12 GiB of pixels) and whose single-tile,
/// `delta_bits = 0` channels used to be materialized without reading a
/// single further input bit. Both decoders must reject it after only
/// trivial allocation.
#[test]
fn delta_bits_zero_bomb_is_rejected_before_allocating() {
    let mut w = BitWriter::new();
    w.write_bits(65535, 16);
    w.write_bits(65535, 16);
    w.write_bits(65535, 16); // one giant tile, so the 36-bit floor passes
    w.write_bits(0, 24); // base + delta_bits = 0 for the first channel
    let bytes = w.finish();
    assert_eq!(bytes.len(), 9);

    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::FrameTooLarge { .. }
    ));
    assert!(
        allocated < 4096,
        "the bomb must die in header validation, allocated {allocated} bytes"
    );

    let (result, allocated) = measured(|| BdDecoder::new().decode_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::FrameTooLarge { .. }
    ));
    assert!(allocated < 4096, "allocated {allocated} bytes");
}

/// The tile-count variant of the bomb: dimensions inside the pixel budget
/// but a 1×1 tile grid whose per-tile minimum cost (36 bits) already
/// exceeds the input. Must be rejected before the tile vector exists.
#[test]
fn tile_count_bomb_is_rejected_before_allocating() {
    let mut w = BitWriter::new();
    w.write_bits(1024, 16);
    w.write_bits(1024, 16);
    w.write_bits(1, 16); // 2^20 tiles × 36 bits ≫ 9 bytes of input
    w.write_bits(0, 24);
    let bytes = w.finish();

    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::InsufficientInput { .. }
    ));
    assert!(allocated < 4096, "allocated {allocated} bytes");
}

/// Every single-byte truncation of a valid stream must fail cleanly (a
/// truncation can never land exactly on a frame boundary, because the
/// only boundary is the full stream).
#[test]
fn every_truncation_of_a_valid_stream_is_rejected() {
    let bytes = valid_stream();
    assert!(BdEncodedFrame::from_bitstream(&bytes).is_ok());
    for len in 0..bytes.len() {
        let truncated = &bytes[..len];
        let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(truncated).map(drop));
        assert!(result.is_err(), "truncation to {len} bytes must fail");
        assert!(
            allocated <= allowance(len),
            "truncation to {len} allocated {allocated} bytes"
        );
        let decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
        assert!(decoder.decode_bitstream(truncated).is_err());
    }
}

/// Every single-bit flip in the 48-bit header must yield `Err` or a
/// (garbage) frame — never a panic, never a blow-up.
#[test]
fn every_header_bit_flip_is_survivable() {
    let bytes = valid_stream();
    for bit in 0..48 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        decode_both_ways(&flipped);
    }
}

/// Every single-bit flip in the body likewise: a flipped `delta_bits`
/// field or delta payload may shift every later read, but the decoders
/// must stay panic-free and allocation-bounded.
#[test]
fn every_body_bit_flip_is_survivable() {
    let bytes = valid_stream();
    for bit in 48..bytes.len() * 8 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        decode_both_ways(&flipped);
    }
}

/// A decoded-then-re-encoded frame survives a round trip even when the
/// decode input was bit-flipped into a *different but valid* stream:
/// whatever `from_bitstream` accepts, `decode()` must handle.
#[test]
fn accepted_streams_always_decode() {
    let bytes = valid_stream();
    let mut decoded_count = 0usize;
    for bit in 0..bytes.len() * 8 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        if let Ok(frame) = BdEncodedFrame::from_bitstream(&flipped) {
            let _ = frame.decode();
            decoded_count += 1;
        }
    }
    // Plenty of body flips (e.g. inside delta payloads) still parse.
    assert!(decoded_count > 0, "some flips must still parse");
}

proptest! {
    /// Arbitrary byte strings: `Err` or a frame, never a panic, never
    /// more than a small multiple of the input in allocations.
    #[test]
    fn random_bytes_never_panic_or_blow_up(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        decode_both_ways(&bytes);
    }

    /// Arbitrary byte strings with a plausible header in front, so the
    /// fuzz spends its time in the tile loop rather than dying on
    /// dimension checks.
    #[test]
    fn random_bodies_never_panic_or_blow_up(
        width in 1u32..48,
        height in 1u32..48,
        tile_size in 1u32..10,
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut w = BitWriter::new();
        w.write_bits(width, 16);
        w.write_bits(height, 16);
        w.write_bits(tile_size, 16);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&body);
        decode_both_ways(&bytes);
    }
}
