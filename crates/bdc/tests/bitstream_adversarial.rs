//! Adversarial decoder suite: no byte string may panic the decoders or
//! make them allocate unboundedly.
//!
//! The decode entry points (`BdEncodedFrame::from_bitstream` and
//! `BdDecoder`) face *untrusted* input once a wire stream exists, so the
//! contract is: return `Err` or a frame — never panic — and keep every
//! allocation proportional to the input (plus the decoder's configured
//! pixel budget, which is what bounds legitimate flat frames whose output
//! is intrinsically much larger than their input).
//!
//! Allocation is asserted with a *byte-counting* global allocator whose
//! counter is thread-local (a const-initialized `Cell<u64>` has no drop
//! glue, so the thread-local access itself never allocates or recurses).
//! Unlike the process-global event counter in
//! `crates/core/tests/alloc_regression.rs`, per-thread counters stay
//! accurate when the test harness runs these cases concurrently.

use proptest::prelude::*;
use pvc_bdc::{
    encode_temporal_frame_into, is_temporal_bitstream, BdConfig, BdDecoder, BdEncodedFrame,
    BdEncoder, BitWriter, BitstreamError, FrameKind,
};
use pvc_color::Srgb8;
use pvc_frame::{Dimensions, SrgbFrame, SrgbTileLanes};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Bytes allocated by this thread since it started.
    static BYTES_ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator with a per-thread byte counter in front.
struct ByteCountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter has no effect on the returned memory.
unsafe impl GlobalAlloc for ByteCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.with(|b| b.set(b.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.with(|b| b.set(b.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: ByteCountingAllocator = ByteCountingAllocator;

/// Runs `f`, returning its result and the bytes it allocated.
fn measured<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = BYTES_ALLOCATED.with(Cell::get);
    let result = f();
    let after = BYTES_ALLOCATED.with(Cell::get);
    (result, after - before)
}

/// A small pixel budget for the strict byte-bound assertions: decoding
/// into at most 64×64 pixels caps the frame scratch at ~12 KiB.
const TIGHT_BUDGET: u64 = 64 * 64;

/// Allocation allowance for a decode of `input_len` bytes under
/// [`TIGHT_BUDGET`]: a small multiple of the input plus the budgeted
/// frame (and `Vec` growth slack).
fn allowance(input_len: usize) -> u64 {
    128 * input_len as u64 + 64 * 1024
}

/// The width×height the input's header declares (0 when too short to
/// have one), capped at the decoder budget — beyond the budget the
/// decode dies in header validation without allocating.
fn declared_pixels(bytes: &[u8]) -> u64 {
    if bytes.len() < 4 {
        return 0;
    }
    let width = u64::from(bytes[0]) << 8 | u64::from(bytes[1]);
    let height = u64::from(bytes[2]) << 8 | u64::from(bytes[3]);
    (width * height).min(pvc_bdc::DEFAULT_MAX_PIXELS)
}

fn random_frame(width: u32, height: u32, seed: u64) -> SrgbFrame {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let dims = Dimensions::new(width, height);
    let pixels = (0..dims.pixel_count())
        .map(|_| Srgb8::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    SrgbFrame::from_pixels(dims, pixels).expect("sized correctly")
}

fn valid_stream() -> Vec<u8> {
    BdEncoder::new(BdConfig::with_tile_size(4))
        .encode_frame(&random_frame(16, 16, 42))
        .to_bitstream()
}

/// Decodes `bytes` through both entry points, asserting neither panics
/// and both stay inside the allocation allowance.
///
/// `from_bitstream` materializes the declared frame's per-pixel deltas,
/// and for a *valid* flat stream (`delta_bits = 0` everywhere) that
/// output is legitimately much larger than the input — so its bound is
/// the input allowance plus a per-declared-pixel term (itself capped by
/// the decoder's pixel budget). The tight-budget `BdDecoder` bound below
/// needs no such term: the budget alone caps its only allocation.
fn decode_both_ways(bytes: &[u8]) {
    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(bytes).map(drop));
    assert!(
        allocated <= allowance(bytes.len()) + 8 * declared_pixels(bytes),
        "from_bitstream allocated {allocated} bytes for {} input bytes ({result:?})",
        bytes.len()
    );
    let decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
    let (result, allocated) = measured(|| decoder.decode_bitstream(bytes).map(drop));
    assert!(
        allocated <= allowance(bytes.len()),
        "BdDecoder allocated {allocated} bytes for {} input bytes ({result:?})",
        bytes.len()
    );
}

/// The original decompression bomb: a 9-byte stream whose header declares
/// 65535×65535 (~4.3 Gpx, ~12 GiB of pixels) and whose single-tile,
/// `delta_bits = 0` channels used to be materialized without reading a
/// single further input bit. Both decoders must reject it after only
/// trivial allocation.
#[test]
fn delta_bits_zero_bomb_is_rejected_before_allocating() {
    let mut w = BitWriter::new();
    w.write_bits(65535, 16);
    w.write_bits(65535, 16);
    w.write_bits(65535, 16); // one giant tile, so the 36-bit floor passes
    w.write_bits(0, 24); // base + delta_bits = 0 for the first channel
    let bytes = w.finish();
    assert_eq!(bytes.len(), 9);

    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::FrameTooLarge { .. }
    ));
    assert!(
        allocated < 4096,
        "the bomb must die in header validation, allocated {allocated} bytes"
    );

    let (result, allocated) = measured(|| BdDecoder::new().decode_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::FrameTooLarge { .. }
    ));
    assert!(allocated < 4096, "allocated {allocated} bytes");
}

/// The tile-count variant of the bomb: dimensions inside the pixel budget
/// but a 1×1 tile grid whose per-tile minimum cost (36 bits) already
/// exceeds the input. Must be rejected before the tile vector exists.
#[test]
fn tile_count_bomb_is_rejected_before_allocating() {
    let mut w = BitWriter::new();
    w.write_bits(1024, 16);
    w.write_bits(1024, 16);
    w.write_bits(1, 16); // 2^20 tiles × 36 bits ≫ 9 bytes of input
    w.write_bits(0, 24);
    let bytes = w.finish();

    let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(&bytes).map(drop));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::InsufficientInput { .. }
    ));
    assert!(allocated < 4096, "allocated {allocated} bytes");
}

/// Every single-byte truncation of a valid stream must fail cleanly (a
/// truncation can never land exactly on a frame boundary, because the
/// only boundary is the full stream).
#[test]
fn every_truncation_of_a_valid_stream_is_rejected() {
    let bytes = valid_stream();
    assert!(BdEncodedFrame::from_bitstream(&bytes).is_ok());
    for len in 0..bytes.len() {
        let truncated = &bytes[..len];
        let (result, allocated) = measured(|| BdEncodedFrame::from_bitstream(truncated).map(drop));
        assert!(result.is_err(), "truncation to {len} bytes must fail");
        assert!(
            allocated <= allowance(len),
            "truncation to {len} allocated {allocated} bytes"
        );
        let decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
        assert!(decoder.decode_bitstream(truncated).is_err());
    }
}

/// Every single-bit flip in the 48-bit header must yield `Err` or a
/// (garbage) frame — never a panic, never a blow-up.
#[test]
fn every_header_bit_flip_is_survivable() {
    let bytes = valid_stream();
    for bit in 0..48 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        decode_both_ways(&flipped);
    }
}

/// Every single-bit flip in the body likewise: a flipped `delta_bits`
/// field or delta payload may shift every later read, but the decoders
/// must stay panic-free and allocation-bounded.
#[test]
fn every_body_bit_flip_is_survivable() {
    let bytes = valid_stream();
    for bit in 48..bytes.len() * 8 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        decode_both_ways(&flipped);
    }
}

/// A decoded-then-re-encoded frame survives a round trip even when the
/// decode input was bit-flipped into a *different but valid* stream:
/// whatever `from_bitstream` accepts, `decode()` must handle.
#[test]
fn accepted_streams_always_decode() {
    let bytes = valid_stream();
    let mut decoded_count = 0usize;
    for bit in 0..bytes.len() * 8 {
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        if let Ok(frame) = BdEncodedFrame::from_bitstream(&flipped) {
            let _ = frame.decode();
            decoded_count += 1;
        }
    }
    // Plenty of body flips (e.g. inside delta payloads) still parse.
    assert!(decoded_count > 0, "some flips must still parse");
}

// ---------------------------------------------------------------------
// Temporal records: the stateful decoder faces the same untrusted wire,
// with two extra attack surfaces — the tile-mode records and the
// reference state a predicted frame depends on.
// ---------------------------------------------------------------------

/// A valid temporal fixture: the reference's intra stream, a dependent
/// predicted-frame stream exercising all three tile modes, and the frame
/// that stream must reconstruct.
fn temporal_fixture() -> (Vec<u8>, Vec<u8>, SrgbFrame) {
    let reference = random_frame(16, 16, 42);
    // Derive the next frame so Skip, Delta and Intra records all occur:
    // leave the top tiles untouched, nudge the middle rows by ±1, and
    // re-randomize the bottom rows.
    let mut pixels = reference.pixels().to_vec();
    for (index, pixel) in pixels.iter_mut().enumerate() {
        let row = index / 16;
        if (6..10).contains(&row) {
            pixel.r = pixel.r.wrapping_add(1);
            pixel.b = pixel.b.wrapping_sub(1);
        }
    }
    let noisy = random_frame(16, 16, 43);
    pixels[12 * 16..].copy_from_slice(&noisy.pixels()[12 * 16..]);
    let frame = SrgbFrame::from_pixels(Dimensions::new(16, 16), pixels).expect("sized correctly");

    let reference_stream = BdEncoder::new(BdConfig::with_tile_size(4))
        .encode_frame(&reference)
        .to_bitstream();
    let mut writer = BitWriter::new();
    let (mut gather, mut reference_gather) = (SrgbTileLanes::new(), SrgbTileLanes::new());
    let (stats, _) = encode_temporal_frame_into(
        4,
        &frame,
        &reference,
        &mut writer,
        &mut gather,
        &mut reference_gather,
    );
    assert!(stats.skip_tiles > 0 && stats.delta_tiles > 0 && stats.intra_tiles > 0);
    let temporal_stream = writer.finish();
    assert!(is_temporal_bitstream(&temporal_stream));
    (reference_stream, temporal_stream, frame)
}

/// A tight-budget stateful decoder whose reference was seeded by decoding
/// `reference_stream`.
fn seeded_decoder(reference_stream: &[u8]) -> BdDecoder {
    let mut decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    let kind = decoder
        .decode_frame_into(reference_stream, &mut out)
        .expect("the reference stream decodes");
    assert_eq!(kind, FrameKind::Key);
    decoder
}

/// Stateful decode of untrusted `bytes` on a freshly seeded decoder:
/// never a panic, never more than the input allowance in allocations
/// (the tight budget caps both the output frame and the reference clone).
fn decode_stateful(reference_stream: &[u8], bytes: &[u8]) -> Result<FrameKind, BitstreamError> {
    let mut decoder = seeded_decoder(reference_stream);
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    let (result, allocated) = measured(|| decoder.decode_frame_into(bytes, &mut out));
    assert!(
        allocated <= allowance(bytes.len()),
        "stateful decode allocated {allocated} bytes for {} input bytes ({result:?})",
        bytes.len()
    );
    result
}

/// Every single-byte truncation of a valid temporal stream must fail with
/// a typed error — `BitWriter::finish` emits no data-free trailing byte,
/// so every truncation loses real record bits.
#[test]
fn every_truncation_of_a_temporal_stream_is_rejected() {
    let (reference_stream, temporal_stream, frame) = temporal_fixture();
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    let mut decoder = seeded_decoder(&reference_stream);
    decoder
        .decode_frame_into(&temporal_stream, &mut out)
        .expect("the intact stream decodes");
    assert_eq!(out, frame);
    for len in 0..temporal_stream.len() {
        let result = decode_stateful(&reference_stream, &temporal_stream[..len]);
        assert!(result.is_err(), "truncation to {len} bytes must fail");
    }
}

/// Every single-bit flip of a valid temporal stream must yield `Err` or a
/// (garbage) frame — never a panic, never a blow-up. A marker flip turns
/// the stream into a bogus intra header; a mode flip can poison every
/// later read; both must die typed.
#[test]
fn every_temporal_bit_flip_is_survivable() {
    let (reference_stream, temporal_stream, _) = temporal_fixture();
    for bit in 0..temporal_stream.len() * 8 {
        let mut flipped = temporal_stream.clone();
        flipped[bit / 8] ^= 1 << (7 - bit % 8);
        let _ = decode_stateful(&reference_stream, &flipped);
    }
}

/// A predicted frame with no reference at all is a typed error, after
/// only trivial allocation.
#[test]
fn temporal_stream_without_a_reference_is_a_typed_error() {
    let (_, temporal_stream, _) = temporal_fixture();
    let mut decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    let (result, allocated) = measured(|| decoder.decode_frame_into(&temporal_stream, &mut out));
    assert_eq!(result, Err(BitstreamError::MissingReference));
    assert!(allocated < 4096, "allocated {allocated} bytes");
}

/// A predicted frame whose declared dimensions disagree with the held
/// reference is a typed error naming both geometries.
#[test]
fn temporal_stream_with_a_mismatched_reference_is_a_typed_error() {
    let (_, temporal_stream, _) = temporal_fixture();
    let small_reference = BdEncoder::new(BdConfig::with_tile_size(4))
        .encode_frame(&random_frame(8, 8, 7))
        .to_bitstream();
    let result = decode_stateful(&small_reference, &temporal_stream);
    assert_eq!(
        result,
        Err(BitstreamError::ReferenceMismatch {
            width: 16,
            height: 16,
            ref_width: 8,
            ref_height: 8,
        })
    );
}

/// A failed predicted-frame decode poisons the reference pessimistically:
/// later predicted frames are rejected (never built on half-applied
/// pixels) until a keyframe re-seeds the chain.
#[test]
fn poisoned_reference_rejects_dependents_until_a_keyframe() {
    let (reference_stream, temporal_stream, frame) = temporal_fixture();
    let mut decoder = seeded_decoder(&reference_stream);
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    // Mid-apply failure: the truncation dies after some tiles already
    // landed in the reference buffer.
    let truncated = &temporal_stream[..temporal_stream.len() - 1];
    assert!(decoder.decode_frame_into(truncated, &mut out).is_err());
    assert!(!decoder.has_reference());
    // The intact stream is now rejected too — the decoder refuses to
    // reconstruct from a half-applied reference.
    assert_eq!(
        decoder.decode_frame_into(&temporal_stream, &mut out),
        Err(BitstreamError::MissingReference)
    );
    // A keyframe repairs the chain and the dependent decodes bit-exactly.
    assert_eq!(
        decoder.decode_frame_into(&reference_stream, &mut out),
        Ok(FrameKind::Key)
    );
    assert_eq!(
        decoder.decode_frame_into(&temporal_stream, &mut out),
        Ok(FrameKind::Predicted)
    );
    assert_eq!(out, frame);
}

/// The temporal cousin of the decompression bomb: a predicted-frame
/// header declaring 65535×65535 must die in header validation (against
/// the pixel budget) before the decoder allocates anything.
#[test]
fn temporal_dimension_bomb_is_rejected_before_allocating() {
    let mut w = BitWriter::new();
    w.write_bits(0, 16); // temporal marker
    w.write_bits(65535, 16);
    w.write_bits(65535, 16);
    w.write_bits(65535, 16); // one giant tile
    w.write_bits(0, 24);
    let bytes = w.finish();
    assert!(is_temporal_bitstream(&bytes));

    let mut decoder = BdDecoder::new().with_max_pixels(TIGHT_BUDGET);
    let mut out = SrgbFrame::filled(Dimensions::new(1, 1), Srgb8::default());
    let (result, allocated) = measured(|| decoder.decode_frame_into(&bytes, &mut out));
    assert!(matches!(
        result.unwrap_err(),
        BitstreamError::FrameTooLarge { .. }
    ));
    assert!(
        allocated < 4096,
        "the bomb must die in header validation, allocated {allocated} bytes"
    );
}

proptest! {
    /// Arbitrary byte strings: `Err` or a frame, never a panic, never
    /// more than a small multiple of the input in allocations.
    #[test]
    fn random_bytes_never_panic_or_blow_up(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        decode_both_ways(&bytes);
    }

    /// Arbitrary byte strings with a plausible header in front, so the
    /// fuzz spends its time in the tile loop rather than dying on
    /// dimension checks.
    #[test]
    fn random_bodies_never_panic_or_blow_up(
        width in 1u32..48,
        height in 1u32..48,
        tile_size in 1u32..10,
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut w = BitWriter::new();
        w.write_bits(width, 16);
        w.write_bits(height, 16);
        w.write_bits(tile_size, 16);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&body);
        decode_both_ways(&bytes);
    }

    /// Arbitrary bytes behind a well-formed temporal header, decoded
    /// statefully against a matching reference: the tile-mode loop and
    /// delta payloads must stay panic-free and allocation-bounded no
    /// matter what the records claim.
    #[test]
    fn random_temporal_bodies_never_panic_or_blow_up(
        tile_size in 1u32..10,
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let reference_stream = BdEncoder::new(BdConfig::with_tile_size(4))
            .encode_frame(&random_frame(16, 16, 42))
            .to_bitstream();
        let mut w = BitWriter::new();
        w.write_bits(0, 16); // temporal marker
        w.write_bits(16, 16);
        w.write_bits(16, 16);
        w.write_bits(tile_size, 16);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&body);
        let _ = decode_stateful(&reference_stream, &bytes);
    }
}
