//! Edge-case pins for `LatencyHistogram`: empty percentiles, single
//! sample, saturating top bucket, merge associativity, and a property pin
//! that the recorded count always equals the sum of the bucket counts.

use proptest::prelude::*;
use pvc_trace::{LatencyHistogram, BUCKET_COUNT};

#[test]
fn empty_histogram_reads_none() {
    let h = LatencyHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), None);
    assert_eq!(h.p90(), None);
    assert_eq!(h.p99(), None);
    assert_eq!(h.percentile(1.0), None);
    assert_eq!(h.min_nanos(), None);
    assert_eq!(h.max_nanos(), None);
    assert_eq!(h.mean_nanos(), None);
}

#[test]
fn single_sample_pins_every_readout() {
    let mut h = LatencyHistogram::new();
    h.record(12_345);
    assert_eq!(h.count(), 1);
    assert_eq!(h.min_nanos(), Some(12_345));
    assert_eq!(h.max_nanos(), Some(12_345));
    assert_eq!(h.mean_nanos(), Some(12_345.0));
    // Every percentile of a single-sample histogram is that sample: the
    // bucket upper bound is capped at the exact max.
    for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.percentile(q), Some(12_345), "q = {q}");
    }
}

#[test]
fn zero_sample_lands_in_bucket_zero() {
    let mut h = LatencyHistogram::new();
    h.record(0);
    assert_eq!(h.bucket_counts()[0], 1);
    assert_eq!(h.p50(), Some(0));
    assert_eq!(h.max_nanos(), Some(0));
}

#[test]
fn top_bucket_saturates() {
    // Everything from 2^(BUCKET_COUNT-2) ns upward lands in the last
    // bucket rather than indexing out of bounds.
    let low_edge = 1u64 << (BUCKET_COUNT - 2);
    let mut h = LatencyHistogram::new();
    h.record(low_edge);
    h.record(low_edge * 3);
    h.record(u64::MAX);
    assert_eq!(h.bucket_counts()[BUCKET_COUNT - 1], 3);
    assert_eq!(h.count(), 3);
    assert_eq!(h.max_nanos(), Some(u64::MAX));
    // The saturating bucket's upper bound is clamped to the exact max.
    assert_eq!(h.percentile(1.0), Some(u64::MAX));
    assert_eq!(h.p50(), Some(u64::MAX));
}

#[test]
fn merge_is_associative_and_matches_direct_recording() {
    let samples_a = [0u64, 1, 7, 900, 1_000_000];
    let samples_b = [3u64, 3, 65_536];
    let samples_c = [u64::MAX, 42];

    let build = |samples: &[u64]| {
        let mut h = LatencyHistogram::new();
        for &sample in samples {
            h.record(sample);
        }
        h
    };
    let (a, b, c) = (build(&samples_a), build(&samples_b), build(&samples_c));

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right, "merge must be associative");

    // And identical to recording every sample into one histogram.
    let mut direct = LatencyHistogram::new();
    for &sample in samples_a.iter().chain(&samples_b).chain(&samples_c) {
        direct.record(sample);
    }
    assert_eq!(left, direct, "merge must be lossless");

    // Merging an empty histogram is the identity.
    let mut with_empty = left.clone();
    with_empty.merge(&LatencyHistogram::new());
    assert_eq!(with_empty, left);
}

proptest! {
    #[test]
    fn count_equals_sum_of_buckets(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut h = LatencyHistogram::new();
        for &sample in &samples {
            h.record(sample);
        }
        let bucket_sum: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(h.count(), bucket_sum);
        prop_assert_eq!(h.count(), samples.len() as u64);
        if let Some(p99) = h.p99() {
            let max = h.max_nanos().unwrap();
            prop_assert!(p99 <= max);
        }
    }

    #[test]
    fn merge_count_is_additive(
        left in proptest::collection::vec(any::<u64>(), 0..64),
        right in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut a = LatencyHistogram::new();
        for &sample in &left {
            a.record(sample);
        }
        let mut b = LatencyHistogram::new();
        for &sample in &right {
            b.record(sample);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), (left.len() + right.len()) as u64);
        let bucket_sum: u64 = a.bucket_counts().iter().sum();
        prop_assert_eq!(a.count(), bucket_sum);
    }
}
