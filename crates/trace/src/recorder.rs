//! Per-thread recorders, stage tables, and the run-level trace report.

use crate::histogram::LatencyHistogram;
use crate::ring::{EventKind, EventRing, TraceEvent};
use crate::stage::{Marker, Stage, TIER_CLASS_COUNT};
use std::time::Instant;

/// The instant all trace timestamps are measured from: captured once when
/// the runtime starts and shared by every thread, so spans recorded on
/// different threads line up on one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEpoch(Instant);

impl TraceEpoch {
    /// Captures the current instant as the epoch.
    pub fn now() -> Self {
        TraceEpoch(Instant::now())
    }

    /// Nanoseconds from the epoch to `instant`, saturating at 0 for
    /// instants before the epoch.
    pub fn nanos_since(&self, instant: Instant) -> u64 {
        instant
            .checked_duration_since(self.0)
            .map_or(0, |elapsed| elapsed.as_nanos() as u64)
    }

    /// Nanoseconds from the epoch to now.
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Which pipeline thread a [`ThreadTrace`] came from; fixes the Chrome
/// `tid` lane and its display name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// A shard's producer thread (renders frames).
    Producer,
    /// A shard's worker thread (encodes and emits frames).
    Worker,
    /// The runtime's control plane (admit/retire/cancel markers).
    Control,
    /// A client replaying wire streams (link transit + decode).
    Client,
}

impl Lane {
    /// Stable display name for trace export.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Producer => "render",
            Lane::Worker => "encode",
            Lane::Control => "control",
            Lane::Client => "client",
        }
    }
}

/// A fixed `TIER_CLASS_COUNT × Stage::COUNT` grid of latency histograms,
/// allocated once at construction. Recording indexes straight into the
/// grid — no allocation, no hashing.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTables {
    tables: Vec<LatencyHistogram>,
}

impl Default for StageTables {
    fn default() -> Self {
        StageTables::new()
    }
}

impl StageTables {
    /// Creates an empty grid (every histogram pre-allocated).
    pub fn new() -> Self {
        StageTables {
            tables: vec![LatencyHistogram::new(); TIER_CLASS_COUNT * Stage::COUNT],
        }
    }

    fn slot(class: u8, stage: Stage) -> usize {
        (class as usize).min(TIER_CLASS_COUNT - 1) * Stage::COUNT + stage.index()
    }

    /// The histogram for one (tier class, stage) cell. Classes beyond the
    /// grid clamp to the catch-all [`crate::CLASS_OTHER`] row.
    pub fn get(&self, class: u8, stage: Stage) -> &LatencyHistogram {
        &self.tables[Self::slot(class, stage)]
    }

    /// Records a sample into one cell.
    pub fn record(&mut self, class: u8, stage: Stage, nanos: u64) {
        self.tables[Self::slot(class, stage)].record(nanos);
    }

    /// Folds another grid into this one, cell by cell.
    pub fn merge(&mut self, other: &StageTables) {
        for (mine, theirs) in self.tables.iter_mut().zip(other.tables.iter()) {
            mine.merge(theirs);
        }
    }

    /// One stage's histogram merged across every tier class.
    pub fn stage_merged(&self, stage: Stage) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for class in 0..TIER_CLASS_COUNT {
            merged.merge(self.get(class as u8, stage));
        }
        merged
    }

    /// Total samples across the whole grid.
    pub fn total_count(&self) -> u64 {
        self.tables.iter().map(LatencyHistogram::count).sum()
    }
}

/// One pipeline thread's tracing state: an event ring plus stage tables,
/// all storage pre-allocated by [`Recorder::new`]. Recording a span or a
/// marker is a few integer stores — the hot path never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    epoch: TraceEpoch,
    ring: EventRing,
    tables: StageTables,
}

impl Recorder {
    /// Creates a recorder with a ring of `ring_capacity` events. All
    /// allocation happens here, before the hot path starts.
    pub fn new(epoch: TraceEpoch, ring_capacity: usize) -> Self {
        Recorder {
            epoch,
            ring: EventRing::with_capacity(ring_capacity),
            tables: StageTables::new(),
        }
    }

    /// The epoch this recorder's timestamps are relative to.
    pub fn epoch(&self) -> TraceEpoch {
        self.epoch
    }

    /// Records a span that began at `started` and ends now.
    pub fn span(&mut self, stage: Stage, class: u8, session: u64, frame: u32, started: Instant) {
        let duration_nanos = started.elapsed().as_nanos() as u64;
        let start_nanos = self.epoch.nanos_since(started);
        self.span_nanos(stage, class, session, frame, start_nanos, duration_nanos);
    }

    /// Records a span from pre-computed epoch-relative nanoseconds (used
    /// for virtual-time stages like simulated link transit).
    pub fn span_nanos(
        &mut self,
        stage: Stage,
        class: u8,
        session: u64,
        frame: u32,
        start_nanos: u64,
        duration_nanos: u64,
    ) {
        self.ring.record(TraceEvent {
            kind: EventKind::Span(stage),
            session,
            class,
            frame,
            start_nanos,
            duration_nanos,
        });
        self.tables.record(class, stage, duration_nanos);
    }

    /// Records an instant control-plane marker, stamped now.
    pub fn mark(&mut self, marker: Marker, class: u8, session: u64) {
        self.ring.record(TraceEvent {
            kind: EventKind::Mark(marker),
            session,
            class,
            frame: 0,
            start_nanos: self.epoch.elapsed_nanos(),
            duration_nanos: 0,
        });
    }

    /// The stage tables accumulated so far.
    pub fn tables(&self) -> &StageTables {
        &self.tables
    }

    /// Events recorded so far (including any that scrolled out).
    pub fn recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Seals the recorder into its thread's finished trace.
    pub fn into_thread(self, shard: usize, lane: Lane) -> ThreadTrace {
        let dropped = self.ring.dropped();
        ThreadTrace {
            shard,
            lane,
            events: self.ring.into_ordered(),
            stages: self.tables,
            dropped,
        }
    }
}

/// One finished thread's trace: ordered events plus its stage tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// The shard the thread belonged to (clients use their replay index).
    pub shard: usize,
    /// Which pipeline lane the thread was.
    pub lane: Lane,
    /// Events oldest → newest (at most the ring capacity).
    pub events: Vec<TraceEvent>,
    /// Per-stage, per-tier latency histograms (never truncated — every
    /// span is counted even when its event scrolled out of the ring).
    pub stages: StageTables,
    /// Events that scrolled out of the ring.
    pub dropped: u64,
}

/// The whole run's trace: every thread's sealed trace plus the shared
/// epoch, attached to `ServiceReport` and consumed by the exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The epoch all event timestamps are relative to.
    pub epoch: TraceEpoch,
    /// Every collected thread trace, sorted by (shard, lane order).
    pub threads: Vec<ThreadTrace>,
}

impl TraceReport {
    /// Creates an empty report anchored at `epoch`.
    pub fn new(epoch: TraceEpoch) -> Self {
        TraceReport {
            epoch,
            threads: Vec::new(),
        }
    }

    /// One stage's histogram merged across all threads and tier classes.
    pub fn stage_histogram(&self, stage: Stage) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for thread in &self.threads {
            merged.merge(&thread.stages.stage_merged(stage));
        }
        merged
    }

    /// One (tier class, stage) cell merged across all threads.
    pub fn class_stage_histogram(&self, class: u8, stage: Stage) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for thread in &self.threads {
            merged.merge(thread.stages.get(class, stage));
        }
        merged
    }

    /// Total events recorded across all threads, including scrolled-out.
    pub fn total_events(&self) -> u64 {
        self.threads
            .iter()
            .map(|thread| thread.events.len() as u64 + thread.dropped)
            .sum()
    }

    /// Total events that scrolled out of their rings.
    pub fn dropped_events(&self) -> u64 {
        self.threads.iter().map(|thread| thread.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::CLASS_OTHER;
    use std::time::Duration;

    #[test]
    fn epoch_saturates_before_start() {
        let later = Instant::now();
        let epoch = TraceEpoch(later + Duration::from_secs(1));
        assert_eq!(epoch.nanos_since(later), 0);
    }

    #[test]
    fn class_clamps_to_other() {
        let mut tables = StageTables::new();
        tables.record(200, Stage::Render, 10);
        assert_eq!(tables.get(CLASS_OTHER, Stage::Render).count(), 1);
        assert_eq!(tables.total_count(), 1);
    }

    #[test]
    fn report_merges_across_threads() {
        let epoch = TraceEpoch::now();
        let mut report = TraceReport::new(epoch);
        for shard in 0..2 {
            let mut recorder = Recorder::new(epoch, 8);
            recorder.span_nanos(Stage::BdEncode, 0, 1, 0, 0, 1_000);
            recorder.span_nanos(Stage::BdEncode, 1, 2, 0, 0, 2_000);
            recorder.mark(Marker::Admit, 0, 1);
            report
                .threads
                .push(recorder.into_thread(shard, Lane::Worker));
        }
        let merged = report.stage_histogram(Stage::BdEncode);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max_nanos(), Some(2_000));
        assert_eq!(report.class_stage_histogram(0, Stage::BdEncode).count(), 2);
        assert_eq!(report.total_events(), 6);
        assert_eq!(report.dropped_events(), 0);
    }
}
