//! Fixed-capacity event rings: pre-allocated at spawn, overwrite-oldest.

use crate::stage::{Marker, Stage};

/// What kind of trace record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed pipeline stage (Chrome `ph: "X"` complete event).
    Span(Stage),
    /// A zero-duration control-plane moment (Chrome `ph: "i"` instant).
    Mark(Marker),
}

/// One recorded event: a `Copy` bundle of integers, cheap to store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or marker, and which one.
    pub kind: EventKind,
    /// The session the event belongs to (0 for shard-wide events).
    pub session: u64,
    /// Tier class (`ResolutionTier::ALL` position, or
    /// [`crate::CLASS_OTHER`]).
    pub class: u8,
    /// Frame index within the session (0 for markers).
    pub frame: u32,
    /// Start, in nanoseconds since the run's [`crate::TraceEpoch`].
    pub start_nanos: u64,
    /// Duration in nanoseconds (0 for markers).
    pub duration_nanos: u64,
}

/// A fixed-capacity ring of [`TraceEvent`]s.
///
/// The backing storage is allocated once, up front, by
/// [`EventRing::with_capacity`]; recording never allocates. When the ring
/// is full, the oldest event is overwritten, so the ring always holds the
/// *most recent* `capacity` events and [`EventRing::dropped`] counts what
/// scrolled out.
///
/// # Examples
///
/// ```
/// use pvc_trace::{EventKind, EventRing, Stage, TraceEvent};
///
/// let mut ring = EventRing::with_capacity(2);
/// for frame in 0..3u32 {
///     ring.record(TraceEvent {
///         kind: EventKind::Span(Stage::Render),
///         session: 1,
///         class: 0,
///         frame,
///         start_nanos: u64::from(frame) * 100,
///         duration_nanos: 50,
///     });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// let frames: Vec<u32> = ring.iter().map(|event| event.frame).collect();
/// assert_eq!(frames, vec![1, 2], "oldest event scrolled out first");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventRing {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    recorded: u64,
}

impl EventRing {
    /// Creates a ring whose backing storage is fully allocated up front.
    /// A zero-capacity ring drops everything (histograms still record).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records one event: an index bump and a struct store, no allocation.
    pub fn record(&mut self, event: TraceEvent) {
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else if self.capacity > 0 {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events that scrolled out of the ring (recorded − held).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Consumes the ring into a chronologically ordered vector.
    pub fn into_ordered(mut self) -> Vec<TraceEvent> {
        self.events.rotate_left(self.head);
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(frame: u32) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span(Stage::BdEncode),
            session: 9,
            class: 1,
            frame,
            start_nanos: u64::from(frame) * 10,
            duration_nanos: 5,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut ring = EventRing::with_capacity(3);
        for frame in 0..7 {
            ring.record(span(frame));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 7);
        assert_eq!(ring.dropped(), 4);
        let frames: Vec<u32> = ring.iter().map(|event| event.frame).collect();
        assert_eq!(frames, vec![4, 5, 6]);
        assert_eq!(
            ring.into_ordered()
                .iter()
                .map(|event| event.frame)
                .collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut ring = EventRing::with_capacity(0);
        ring.record(span(0));
        ring.record(span(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2);
    }
}
