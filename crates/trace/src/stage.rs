//! The closed taxonomy of pipeline stages and control-plane markers.

/// One stage of the serving pipeline, from the producer's render to the
/// client's decode.
///
/// The set is closed on purpose: every histogram table is a fixed
/// `TIER_CLASS_COUNT × Stage::COUNT` grid allocated up front, so adding a
/// stage is a deliberate schema change, not an ad-hoc string key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Producer: rendering one linear frame for a session.
    Render,
    /// Producer: popping (or waiting on) the recycled frame pool.
    PoolRecycle,
    /// Time a frame job sat in the bounded queue before the worker
    /// dequeued it (enqueue → dequeue).
    QueueWait,
    /// Worker: eccentricity-based chroma/precision adjustment.
    Adjust,
    /// Worker: linear → sRGB gamma conversion.
    Gamma,
    /// Worker: BD entropy encode into the bitstream.
    BdEncode,
    /// Worker: framing the payload into digest/payload/wire sinks.
    WireEmit,
    /// Client: simulated link occupancy (stream time, not wall time).
    LinkTransit,
    /// Client: BD decode of a received payload.
    Decode,
}

impl Stage {
    /// How many stages exist; the row width of every stage table.
    pub const COUNT: usize = 9;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Render,
        Stage::PoolRecycle,
        Stage::QueueWait,
        Stage::Adjust,
        Stage::Gamma,
        Stage::BdEncode,
        Stage::WireEmit,
        Stage::LinkTransit,
        Stage::Decode,
    ];

    /// The stage's position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        match self {
            Stage::Render => 0,
            Stage::PoolRecycle => 1,
            Stage::QueueWait => 2,
            Stage::Adjust => 3,
            Stage::Gamma => 4,
            Stage::BdEncode => 5,
            Stage::WireEmit => 6,
            Stage::LinkTransit => 7,
            Stage::Decode => 8,
        }
    }

    /// Stable snake_case name, used for table rows and trace export.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Render => "render",
            Stage::PoolRecycle => "pool_recycle",
            Stage::QueueWait => "queue_wait",
            Stage::Adjust => "adjust",
            Stage::Gamma => "gamma",
            Stage::BdEncode => "bd_encode",
            Stage::WireEmit => "wire_emit",
            Stage::LinkTransit => "link_transit",
            Stage::Decode => "decode",
        }
    }
}

/// A control-plane moment with no duration: rendered as an instant event
/// in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Marker {
    /// A session was admitted to a shard.
    Admit,
    /// A session was asked to retire after its current frame.
    Retire,
    /// A session was hard-cancelled mid-stream.
    Cancel,
    /// A session was downgraded a resolution tier to shed load.
    Shed,
    /// A session was migrated between shards.
    Migrate,
    /// The autoscaler spawned a shard (`session` carries the shard index).
    ShardSpawn,
    /// The autoscaler drained a shard (`session` carries the shard index).
    ShardDrain,
}

impl Marker {
    /// Every marker.
    pub const ALL: [Marker; 7] = [
        Marker::Admit,
        Marker::Retire,
        Marker::Cancel,
        Marker::Shed,
        Marker::Migrate,
        Marker::ShardSpawn,
        Marker::ShardDrain,
    ];

    /// Stable snake_case name for trace export.
    pub fn name(self) -> &'static str {
        match self {
            Marker::Admit => "admit",
            Marker::Retire => "retire",
            Marker::Cancel => "cancel",
            Marker::Shed => "shed",
            Marker::Migrate => "migrate",
            Marker::ShardSpawn => "shard_spawn",
            Marker::ShardDrain => "shard_drain",
        }
    }
}

/// How many tier classes a stage table distinguishes: one per
/// `ResolutionTier` (in `ResolutionTier::ALL` order) plus [`CLASS_OTHER`].
pub const TIER_CLASS_COUNT: usize = 4;

/// The catch-all tier class for events with no session tier (control-plane
/// spans, untyped sessions). Classes `>= CLASS_OTHER` are clamped here.
pub const CLASS_OTHER: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (position, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), position);
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Stage::ALL {
            for b in Stage::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
        for a in Marker::ALL {
            for b in Marker::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }

    #[test]
    fn other_class_is_last() {
        assert_eq!(CLASS_OTHER as usize, TIER_CLASS_COUNT - 1);
    }
}
