//! Allocation-free per-stage tracing for the serving pipeline.
//!
//! The serving runtime reports end-of-run aggregates, which say *how much*
//! work happened but not *where a frame's time went*. This crate supplies
//! the missing substrate:
//!
//! - [`Stage`] / [`Marker`]: a closed taxonomy of pipeline stages (render,
//!   queue wait, adjust, gamma, BD encode, wire emit, link transit, decode)
//!   and control-plane markers (admit, retire, cancel).
//! - [`LatencyHistogram`]: a fixed-bucket, log₂-scaled latency histogram
//!   with lossless merge and p50/p90/p99/max readouts.
//! - [`EventRing`]: a fixed-capacity, pre-allocated ring of
//!   [`TraceEvent`]s. Recording is a handful of stores — **zero heap
//!   allocation** — so the hot path stays pinned allocation-free with
//!   tracing enabled.
//! - [`Recorder`]: one per pipeline thread, owning a ring plus per-stage,
//!   per-tier histogram tables; sealed into a [`ThreadTrace`] when the
//!   thread exits and collected into a [`TraceReport`].
//!
//! Timestamps are nanoseconds relative to a shared [`TraceEpoch`], which
//! maps directly onto the microsecond `ts`/`dur` fields of the Chrome
//! trace-event format (the export itself lives in `pvc_bench`, keeping
//! this crate dependency-free).
//!
//! # Examples
//!
//! ```
//! use pvc_trace::{Lane, Recorder, Stage, TraceEpoch, TraceReport};
//!
//! let epoch = TraceEpoch::now();
//! let mut recorder = Recorder::new(epoch, 128);
//! let started = std::time::Instant::now();
//! // ... do the stage's work ...
//! recorder.span(Stage::BdEncode, 0, 7, 0, started);
//!
//! let mut report = TraceReport::new(epoch);
//! report.threads.push(recorder.into_thread(0, Lane::Worker));
//! assert_eq!(report.stage_histogram(Stage::BdEncode).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod recorder;
mod ring;
mod stage;

pub use histogram::{LatencyHistogram, BUCKET_COUNT};
pub use recorder::{Lane, Recorder, StageTables, ThreadTrace, TraceEpoch, TraceReport};
pub use ring::{EventKind, EventRing, TraceEvent};
pub use stage::{Marker, Stage, CLASS_OTHER, TIER_CLASS_COUNT};
