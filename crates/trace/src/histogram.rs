//! Fixed-bucket, log₂-scaled latency histograms.

/// Number of buckets in a [`LatencyHistogram`]. Bucket 0 holds the value
/// 0; bucket `i >= 1` holds `[2^(i-1), 2^i)` nanoseconds; the top bucket
/// saturates, absorbing everything from `2^(BUCKET_COUNT-2)` ns (~9.2
/// minutes) upward.
pub const BUCKET_COUNT: usize = 40;

/// A fixed-footprint latency histogram over nanosecond samples.
///
/// The bucket layout is log₂-scaled, so relative error of a percentile
/// readout is bounded by one octave; exact `min`/`max`/`sum` ride along so
/// the tails and the mean stay exact. Two histograms recorded on
/// different threads merge losslessly bucket-by-bucket — merging then
/// reading is identical to recording everything into one histogram.
///
/// # Examples
///
/// ```
/// use pvc_trace::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for nanos in [100, 200, 400, 800] {
///     h.record(nanos);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max_nanos(), Some(800));
/// assert!(h.p50().unwrap() >= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    /// The bucket a sample lands in.
    pub fn bucket_index(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            (64 - nanos.leading_zeros() as usize).min(BUCKET_COUNT - 1)
        }
    }

    /// The exclusive upper bound of a bucket, `u64::MAX` for the
    /// saturating top bucket.
    fn bucket_upper_bound(index: usize) -> u64 {
        if index >= BUCKET_COUNT - 1 {
            u64::MAX
        } else {
            // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i).
            (1u64 << index) - 1
        }
    }

    /// Records one sample. A handful of stores — no allocation.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds `other` into `self`, bucket by bucket. Lossless: the merged
    /// histogram reads exactly as if every sample had been recorded here.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (testing / export).
    pub fn bucket_counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Exact smallest sample, `None` when empty.
    pub fn min_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_nanos)
    }

    /// Exact largest sample, `None` when empty.
    pub fn max_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_nanos)
    }

    /// Exact mean in nanoseconds, `None` when empty.
    pub fn mean_nanos(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_nanos as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper bound of the bucket the
    /// rank lands in, capped at the exact maximum so the readout never
    /// exceeds any recorded sample. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(index).min(self.max_nanos));
            }
        }
        Some(self.max_nanos)
    }

    /// Median readout, `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 90th-percentile readout, `None` when empty.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    /// 99th-percentile readout, `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn percentile_is_bounded_by_samples() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        h.record(1_000_000);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!(p <= 1_000_000, "p{q} = {p} exceeds max sample");
        }
    }
}
