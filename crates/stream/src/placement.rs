//! Pluggable session→shard placement policies.
//!
//! When a session is admitted, the runtime must pick the shard worker that
//! will own it for its whole stream. Which shard that is never affects the
//! session's encoded bits — each session is encoded in frame order by
//! exactly one worker from its own config — it only affects *load*: how
//! evenly sessions, their queued frames and (under heterogeneous profiles)
//! their **pixels** spread across workers.
//!
//! Four policies ship with the crate:
//!
//! * [`Static`] — the modulo routing of the original batch service
//!   (`session_id % shards`). Fully deterministic and oblivious to load;
//!   the baseline every determinism test pins against.
//! * [`PowerOfTwoChoices`] — samples two distinct shards with a seeded
//!   RNG and places the session on the one with the lower *depth-based*
//!   score (queue depth plus live session count). The classic result is
//!   that this "two choices" step drops the maximum load exponentially
//!   compared to random placement, at the cost of reading just two load
//!   gauges.
//! * [`LeastLoaded`] — scans every shard and places the session on the
//!   one with the lowest *pixel-weighted* [`ShardLoad::cost`]. The
//!   cost-aware policy heterogeneous workloads need (see the fairness
//!   caveat below).
//! * [`Predictive`] — scans every shard and places the session on the one
//!   with the least *expected remaining work*
//!   ([`ShardLoad::remaining_pixels`] = Σ pixel_cost × remaining frames).
//!   Where [`LeastLoaded`] reads the instantaneous commitment, this reads
//!   how long each shard will stay busy — the signal that matters when
//!   session lifetimes differ wildly.
//!
//! Under the elastic control plane, shards can also be *draining*
//! (winding down before decommission). Every policy skips draining shards;
//! [`plan_migration`] is the companion planner that proposes moving a
//! session off the busiest shard when the fleet's remaining work is badly
//! skewed.
//!
//! # Fairness caveat: depth-based scores under mixed pixel costs
//!
//! [`ShardLoad::score`] counts *items* — sessions and queued frames — so
//! any policy comparing it (notably [`PowerOfTwoChoices`]) treats a
//! 32×32-per-frame session and a Vision-class session rendering ~3.3× the
//! pixels as equal load. Under a bimodal mix that balance-by-count can
//! systematically route the expensive half of the population onto one
//! shard: session counts look even while one worker encodes several times
//! the pixels of another. When session profiles are heterogeneous, prefer
//! a policy that compares [`ShardLoad::cost`] (pixel-weighted), like
//! [`LeastLoaded`]; the unit tests pin the bimodal scenario where
//! count-balancing collapses and cost-balancing does not.
//!
//! Policies see only [`ShardLoad`] snapshots, so custom implementations
//! (locality-aware, SLA-aware, …) plug in without touching the runtime.

use crate::session::SessionConfig;

/// A moment-in-time load snapshot of one shard, as sampled at admission.
///
/// The item gauges (`sessions`, `queue_depth`) and the pixel gauges
/// (`session_pixels`, `queued_pixels`) describe the same load in two
/// units; [`Self::score`] and [`Self::cost`] are the respective scalar
/// summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard index.
    pub shard: usize,
    /// Sessions currently placed on the shard (admitted, not yet
    /// completed).
    pub sessions: usize,
    /// Messages pending in the shard's render→encode queue — rendered
    /// frames awaiting encode, plus the session open/close markers that
    /// travel the same queue (at most two per session lifetime).
    pub queue_depth: usize,
    /// Sum of the live sessions' per-frame pixel costs
    /// ([`SessionConfig::pixel_cost`]) — the shard's committed encode
    /// rate in pixels per round-robin turn. Updated synchronously at
    /// admission, so back-to-back placements see each other.
    pub session_pixels: u64,
    /// Pixels of rendered frames currently sitting in the render→encode
    /// queue — the congestion signal, in pixels.
    pub queued_pixels: u64,
    /// Expected remaining work: Σ over live sessions of `pixel_cost ×
    /// frames not yet rendered`. Decays as producers render and is
    /// decommitted on cancel/migrate, so it predicts how long the shard
    /// stays busy rather than how busy it is right now.
    pub remaining_pixels: u64,
    /// True while the shard is winding down before decommission: it still
    /// finishes (or hands off) its current sessions but must not receive
    /// new ones. Every shipped policy skips draining shards.
    pub draining: bool,
}

impl ShardLoad {
    /// The depth-based load score: queued items plus live sessions. Queue
    /// depth is the fast congestion signal, session count the steady
    /// commitment signal; summing them keeps an idle-but-crowded shard
    /// distinguishable from a busy-but-emptying one.
    ///
    /// Counts items, not work: see the [fairness caveat](self) before
    /// comparing scores across shards serving mixed resolutions.
    pub fn score(&self) -> usize {
        self.sessions + self.queue_depth
    }

    /// The pixel-weighted load cost: committed session pixels plus queued
    /// frame pixels. The unit-consistent analogue of [`Self::score`] for
    /// heterogeneous profiles — a Vision-class session weighs ~3.3× a
    /// Quest-2 one instead of counting as one item.
    pub fn cost(&self) -> u64 {
        self.session_pixels + self.queued_pixels
    }
}

/// A session→shard placement policy.
///
/// Implementations may keep internal state (an RNG, a round-robin cursor);
/// the runtime calls [`Placement::place`] once per admission with live
/// load snapshots for every shard.
pub trait Placement: Send {
    /// Picks the shard for a newly admitted session.
    ///
    /// Must return the [`ShardLoad::shard`] id of a non-draining entry of
    /// `loads`; the runtime asserts this. `loads` always contains at
    /// least one non-draining shard. Note shard ids are stable across
    /// spawn/drain cycles and therefore not necessarily contiguous or
    /// equal to positions in `loads`.
    fn place(&mut self, session_id: usize, config: &SessionConfig, loads: &[ShardLoad]) -> usize;

    /// A short human-readable policy name for reports and CLI output.
    fn name(&self) -> &'static str;
}

/// The deterministic modulo baseline: `session_id % shards`.
///
/// Oblivious to load in either unit; exists so determinism tests have a
/// placement whose decisions depend on nothing but the session id.
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

/// The non-draining subset of `loads`, in order.
fn serving(loads: &[ShardLoad]) -> impl Iterator<Item = &ShardLoad> {
    loads.iter().filter(|load| !load.draining)
}

impl Placement for Static {
    fn place(&mut self, session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        let serving: Vec<&ShardLoad> = serving(loads).collect();
        serving[session_id % serving.len()].shard
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Load-aware placement: sample two distinct shards, take the emptier one
/// by depth-based [`ShardLoad::score`].
///
/// The candidate pair comes from a seeded SplitMix64 stream, so a given
/// seed yields a reproducible *choice sequence*; the chosen shard still
/// depends on live load, which is timing-dependent. Encoded output is
/// placement-independent either way.
///
/// Because the comparison is item-count-based, this policy can misjudge
/// heterogeneous workloads — see the [fairness caveat](self). For mixed
/// pixel costs, [`LeastLoaded`] compares pixel-weighted cost instead.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    state: u64,
}

impl PowerOfTwoChoices {
    /// Creates the policy with an RNG seed.
    pub fn new(seed: u64) -> PowerOfTwoChoices {
        PowerOfTwoChoices { state: seed }
    }

    /// SplitMix64 step: cheap, full-period, good dispersion — the same
    /// generator the synthetic session seeds use.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for PowerOfTwoChoices {
    /// Seeds the RNG with a fixed constant, for reproducible choice
    /// sequences out of the box.
    fn default() -> Self {
        PowerOfTwoChoices::new(0x70F2_C401_5EED_0002)
    }
}

impl Placement for PowerOfTwoChoices {
    fn place(&mut self, _session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        let serving: Vec<&ShardLoad> = serving(loads).collect();
        let shards = serving.len();
        if shards == 1 {
            return serving[0].shard;
        }
        let first = (self.next_u64() % shards as u64) as usize;
        // Sample the second candidate from the remaining shards so the two
        // choices are always distinct.
        let mut second = (self.next_u64() % (shards as u64 - 1)) as usize;
        if second >= first {
            second += 1;
        }
        // Lower score wins; ties break toward the lower shard index so the
        // decision is reproducible given equal loads.
        let (a, b) = (serving[first], serving[second]);
        if (a.score(), a.shard) <= (b.score(), b.shard) {
            a.shard
        } else {
            b.shard
        }
    }

    fn name(&self) -> &'static str {
        "power-of-two-choices"
    }
}

/// Cost-aware placement: scan every shard, take the one with the lowest
/// pixel-weighted [`ShardLoad::cost`] (ties break toward the lower shard
/// index, so equal-load decisions are reproducible).
///
/// This is the policy that makes heterogeneous mixes balance: admitting a
/// bimodal population, the expensive sessions spread by what they *cost*,
/// not by how many they *are*. The full scan reads one gauge per shard —
/// O(shards) per admission, irrelevant next to the cost of streaming a
/// session — where [`PowerOfTwoChoices`] reads two; pick the latter only
/// when shard counts are large enough for the scan to matter and the
/// workload is homogeneous enough for item counts to be honest.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn place(&mut self, _session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        serving(loads)
            .min_by_key(|load| (load.cost(), load.shard))
            .expect("loads always has a serving shard")
            .shard
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Remaining-work-aware placement: scan every serving shard, take the one
/// with the smallest [`ShardLoad::remaining_pixels`] (ties break toward
/// the lower shard id).
///
/// Where [`LeastLoaded`] balances what shards are committed to *right
/// now*, this balances how long they will *stay* committed: a shard
/// hosting two sessions with three frames left is a better target than a
/// near-idle shard hosting one session with ten thousand frames to go.
/// The score is `Σ pixel_cost × remaining_frames`, maintained by the
/// runtime as producers render frames.
#[derive(Debug, Clone, Copy, Default)]
pub struct Predictive;

impl Placement for Predictive {
    fn place(&mut self, _session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        serving(loads)
            .min_by_key(|load| (load.remaining_pixels, load.shard))
            .expect("loads always has a serving shard")
            .shard
    }

    fn name(&self) -> &'static str {
        "predictive"
    }
}

/// A proposed session move from one shard to another, as computed by
/// [`plan_migration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The overloaded source shard (move one of its sessions away).
    pub from: usize,
    /// The underloaded destination shard.
    pub to: usize,
}

/// Proposes a rebalancing migration when the fleet's expected remaining
/// work is badly skewed: the serving shard with the most
/// [`ShardLoad::remaining_pixels`] hands one session to the one with the
/// least.
///
/// Returns `None` unless all of the following hold — the hysteresis that
/// keeps the planner from thrashing:
///
/// * at least two serving (non-draining) shards exist,
/// * the source hosts at least two sessions (moving a shard's only
///   session just relocates the hot spot), and
/// * the source's remaining work is more than twice the destination's.
pub fn plan_migration(loads: &[ShardLoad]) -> Option<MigrationPlan> {
    let from = serving(loads).max_by_key(|load| (load.remaining_pixels, load.shard))?;
    let to = serving(loads).min_by_key(|load| (load.remaining_pixels, load.shard))?;
    if from.shard == to.shard || from.sessions < 2 {
        return None;
    }
    if from.remaining_pixels <= 2 * to.remaining_pixels {
        return None;
    }
    Some(MigrationPlan {
        from: from.shard,
        to: to.shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ResolutionTier, SessionProfile, WorkloadMix};
    use pvc_frame::Dimensions;

    fn config() -> SessionConfig {
        SessionConfig::synthetic(0, Dimensions::new(32, 32), 4)
    }

    /// Item-count loads with zero pixel weight (the homogeneous legacy
    /// shape).
    fn loads(scores: &[(usize, usize)]) -> Vec<ShardLoad> {
        scores
            .iter()
            .enumerate()
            .map(|(shard, &(sessions, queue_depth))| ShardLoad {
                shard,
                sessions,
                queue_depth,
                session_pixels: 0,
                queued_pixels: 0,
                remaining_pixels: 0,
                draining: false,
            })
            .collect()
    }

    /// Pixel-weighted loads (sessions/queue depth left at zero).
    fn pixel_loads(pixels: &[(u64, u64)]) -> Vec<ShardLoad> {
        pixels
            .iter()
            .enumerate()
            .map(|(shard, &(session_pixels, queued_pixels))| ShardLoad {
                shard,
                sessions: 0,
                queue_depth: 0,
                session_pixels,
                queued_pixels,
                remaining_pixels: 0,
                draining: false,
            })
            .collect()
    }

    /// Remaining-work loads: `(sessions, remaining_pixels, draining)`.
    fn remaining_loads(entries: &[(usize, u64, bool)]) -> Vec<ShardLoad> {
        entries
            .iter()
            .enumerate()
            .map(
                |(shard, &(sessions, remaining_pixels, draining))| ShardLoad {
                    shard,
                    sessions,
                    queue_depth: 0,
                    // Admitted cost tracks remaining work in these fixtures, so
                    // depth-based and predictive scores agree on the ordering.
                    session_pixels: remaining_pixels,
                    queued_pixels: 0,
                    remaining_pixels,
                    draining,
                },
            )
            .collect()
    }

    #[test]
    fn static_placement_is_modulo() {
        let mut policy = Static;
        let loads = loads(&[(9, 9), (0, 0), (5, 5)]);
        for id in 0..12 {
            assert_eq!(policy.place(id, &config(), &loads), id % 3);
        }
    }

    #[test]
    fn power_of_two_prefers_the_emptier_shard() {
        // With exactly two shards the candidate pair is always {0, 1}, so
        // the choice is purely load-driven.
        let mut policy = PowerOfTwoChoices::default();
        let lopsided = loads(&[(8, 3), (1, 0)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &lopsided), 1);
        }
        let reversed = loads(&[(0, 0), (4, 2)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &reversed), 0);
        }
    }

    #[test]
    fn power_of_two_breaks_ties_toward_the_lower_index() {
        let mut policy = PowerOfTwoChoices::default();
        let even = loads(&[(2, 1), (2, 1)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &even), 0);
        }
    }

    #[test]
    fn power_of_two_choice_sequence_is_seed_reproducible() {
        let even = loads(&[(0, 0); 8]);
        let run = |seed: u64| {
            let mut policy = PowerOfTwoChoices::new(seed);
            (0..64)
                .map(|id| policy.place(id, &config(), &even))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should explore different candidate pairs"
        );
    }

    #[test]
    fn power_of_two_single_shard_short_circuits() {
        let mut policy = PowerOfTwoChoices::default();
        assert_eq!(policy.place(5, &config(), &loads(&[(3, 3)])), 0);
    }

    #[test]
    fn score_sums_sessions_and_queue_depth() {
        let load = ShardLoad {
            shard: 0,
            sessions: 3,
            queue_depth: 2,
            session_pixels: 9999,
            queued_pixels: 1,
            remaining_pixels: 777,
            draining: false,
        };
        assert_eq!(load.score(), 5, "score ignores the pixel gauges");
    }

    #[test]
    fn cost_sums_the_pixel_gauges() {
        let load = ShardLoad {
            shard: 0,
            sessions: 3,
            queue_depth: 2,
            session_pixels: 4096,
            queued_pixels: 1024,
            remaining_pixels: 777,
            draining: false,
        };
        assert_eq!(load.cost(), 5120, "cost ignores the item gauges");
    }

    #[test]
    fn least_loaded_picks_the_cheapest_shard_and_breaks_ties_low() {
        let mut policy = LeastLoaded;
        let lopsided = pixel_loads(&[(4096, 0), (1024, 512), (8192, 0)]);
        assert_eq!(policy.place(0, &config(), &lopsided), 1);
        let tied = pixel_loads(&[(2048, 0), (0, 2048), (2048, 1)]);
        assert_eq!(policy.place(1, &config(), &tied), 0, "tie → lower index");
    }

    /// The pin for the pixel-weighted gauge: admit a bimodal mix to two
    /// shards, replaying each policy's decisions against synthetically
    /// maintained loads. Session-count balancing (what a depth-based score
    /// degenerates to here) alternates shards and collapses every
    /// expensive session onto one shard; cost-aware placement keeps the
    /// pixel load spread.
    #[test]
    fn bimodal_mix_does_not_collapse_under_cost_aware_placement() {
        let base = Dimensions::new(96, 96);
        let small = SessionProfile::for_tier(ResolutionTier::Quest2, base, 8);
        let large = SessionProfile::for_tier(ResolutionTier::VisionClass, base, 8);
        assert_eq!(WorkloadMix::Bimodal.tier_for(0), ResolutionTier::Quest2);

        // Replays an admission sequence, maintaining the loads the way the
        // runtime does (synchronously at admission), and returns each
        // shard's committed pixels.
        let admit_all = |policy: &mut dyn Placement| -> Vec<u64> {
            let mut shard_loads = pixel_loads(&[(0, 0), (0, 0)]);
            for index in 0..8 {
                let profile = if WorkloadMix::Bimodal.tier_for(index) == ResolutionTier::Quest2 {
                    small
                } else {
                    large
                };
                let config = config().with_profile(profile);
                let shard = policy.place(index, &config, &shard_loads);
                shard_loads[shard].sessions += 1;
                shard_loads[shard].session_pixels += profile.pixel_cost();
            }
            shard_loads.iter().map(|l| l.session_pixels).collect()
        };

        // Session-count balancing: place on the shard with fewer sessions
        // (ties low) — the degenerate behaviour of any item-count score
        // when queues are empty. The bimodal alternation then routes every
        // Vision-class session to the same shard.
        struct CountBalancer;
        impl Placement for CountBalancer {
            fn place(&mut self, _id: usize, _c: &SessionConfig, loads: &[ShardLoad]) -> usize {
                loads
                    .iter()
                    .min_by_key(|l| (l.sessions, l.shard))
                    .expect("non-empty")
                    .shard
            }
            fn name(&self) -> &'static str {
                "count-balancer"
            }
        }

        let by_count = admit_all(&mut CountBalancer);
        let count_imbalance = by_count.iter().max().unwrap() - by_count.iter().min().unwrap();
        assert_eq!(
            by_count
                .iter()
                .filter(|&&p| p == 4 * large.pixel_cost())
                .count(),
            1,
            "count balancing collapses all four Vision-class sessions onto one shard: {by_count:?}"
        );

        let by_cost = admit_all(&mut LeastLoaded);
        let cost_imbalance = by_cost.iter().max().unwrap() - by_cost.iter().min().unwrap();
        assert!(
            cost_imbalance <= large.pixel_cost(),
            "cost-aware placement must keep shards within one large session: {by_cost:?}"
        );
        assert!(
            cost_imbalance * 4 < count_imbalance,
            "cost-aware spread ({cost_imbalance}) must beat count-balancing ({count_imbalance})"
        );
    }

    #[test]
    fn policies_report_their_names() {
        assert_eq!(Static.name(), "static");
        assert_eq!(PowerOfTwoChoices::default().name(), "power-of-two-choices");
        assert_eq!(LeastLoaded.name(), "least-loaded");
        assert_eq!(Predictive.name(), "predictive");
    }

    #[test]
    fn predictive_minimizes_remaining_work() {
        let mut policy = Predictive;
        // Shard 1 is the most *committed* but has the least left to do.
        let loads = remaining_loads(&[(1, 5_000, false), (4, 1_000, false), (2, 3_000, false)]);
        assert_eq!(policy.place(0, &config(), &loads), 1);
        // Ties break toward the lower shard id.
        let tied = remaining_loads(&[(1, 2_000, false), (1, 2_000, false)]);
        assert_eq!(policy.place(0, &config(), &tied), 0);
    }

    #[test]
    fn every_policy_skips_draining_shards() {
        // Shard 0 is draining and otherwise the most attractive target by
        // every score; shard 2 is the cheapest serving shard.
        let loads = remaining_loads(&[(0, 0, true), (3, 9_000, false), (1, 100, false)]);
        let mut p2c = PowerOfTwoChoices::default();
        for id in 0..16 {
            assert_eq!(Static.place(id, &config(), &loads), [1, 2][id % 2]);
            assert_ne!(p2c.place(id, &config(), &loads), 0);
            assert_eq!(LeastLoaded.place(id, &config(), &loads), 2);
            assert_eq!(Predictive.place(id, &config(), &loads), 2);
        }
    }

    #[test]
    fn migration_planner_moves_work_off_the_skewed_shard() {
        // Balanced fleet: no plan.
        assert_eq!(
            plan_migration(&remaining_loads(&[(2, 1_000, false), (2, 900, false)])),
            None
        );
        // Skewed beyond 2×, source has spare sessions: move one 0 → 1.
        assert_eq!(
            plan_migration(&remaining_loads(&[(3, 10_000, false), (1, 1_000, false)])),
            Some(MigrationPlan { from: 0, to: 1 })
        );
        // Skewed but the hot shard has a single session: relocating it
        // would just move the hot spot.
        assert_eq!(
            plan_migration(&remaining_loads(&[(1, 10_000, false), (0, 0, false)])),
            None
        );
        // One serving shard: nowhere to go (the other is draining).
        assert_eq!(
            plan_migration(&remaining_loads(&[(3, 10_000, false), (0, 0, true)])),
            None
        );
        // Draining shards are neither sources nor destinations.
        assert_eq!(
            plan_migration(&remaining_loads(&[
                (4, 50_000, true),
                (3, 9_000, false),
                (1, 1_000, false)
            ])),
            Some(MigrationPlan { from: 1, to: 2 })
        );
    }
}
