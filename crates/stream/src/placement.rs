//! Pluggable session→shard placement policies.
//!
//! When a session is admitted, the runtime must pick the shard worker that
//! will own it for its whole stream. Which shard that is never affects the
//! session's encoded bits — each session is encoded in frame order by
//! exactly one worker from its own config — it only affects *load*: how
//! evenly sessions and their queued frames spread across workers.
//!
//! Two policies ship with the crate:
//!
//! * [`Static`] — the modulo routing of the original batch service
//!   (`session_id % shards`). Fully deterministic and oblivious to load;
//!   the baseline every determinism test pins against.
//! * [`PowerOfTwoChoices`] — samples two distinct shards with a seeded
//!   RNG and places the session on the less loaded of the two (queue
//!   depth plus live session count). The classic result is that this
//!   "two choices" step drops the maximum load exponentially compared to
//!   random placement, at the cost of reading just two load gauges.
//!
//! Policies see only [`ShardLoad`] snapshots, so custom implementations
//! (locality-aware, size-aware, …) plug in without touching the runtime.

use crate::session::SessionConfig;

/// A moment-in-time load snapshot of one shard, as sampled at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard index.
    pub shard: usize,
    /// Sessions currently placed on the shard (admitted, not yet retired).
    pub sessions: usize,
    /// Messages pending in the shard's render→encode queue — rendered
    /// frames awaiting encode, plus the session open/close markers that
    /// travel the same queue (at most two per session lifetime).
    pub queue_depth: usize,
}

impl ShardLoad {
    /// The scalar load score placement compares: queued frames plus live
    /// sessions. Queue depth is the fast congestion signal, session count
    /// the steady commitment signal; summing them keeps an idle-but-crowded
    /// shard distinguishable from a busy-but-emptying one.
    pub fn score(&self) -> usize {
        self.sessions + self.queue_depth
    }
}

/// A session→shard placement policy.
///
/// Implementations may keep internal state (an RNG, a round-robin cursor);
/// the runtime calls [`Placement::place`] once per admission with live
/// load snapshots for every shard.
pub trait Placement: Send {
    /// Picks the shard for a newly admitted session.
    ///
    /// Must return an index below `loads.len()`; the runtime asserts this.
    /// `loads` is never empty (the runtime always has at least one shard).
    fn place(&mut self, session_id: usize, config: &SessionConfig, loads: &[ShardLoad]) -> usize;

    /// A short human-readable policy name for reports and CLI output.
    fn name(&self) -> &'static str;
}

/// The deterministic modulo baseline: `session_id % shards`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl Placement for Static {
    fn place(&mut self, session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        session_id % loads.len()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Load-aware placement: sample two distinct shards, take the emptier one.
///
/// The candidate pair comes from a seeded SplitMix64 stream, so a given
/// seed yields a reproducible *choice sequence*; the chosen shard still
/// depends on live load, which is timing-dependent. Encoded output is
/// placement-independent either way.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    state: u64,
}

impl PowerOfTwoChoices {
    /// Creates the policy with an RNG seed.
    pub fn new(seed: u64) -> PowerOfTwoChoices {
        PowerOfTwoChoices { state: seed }
    }

    /// SplitMix64 step: cheap, full-period, good dispersion — the same
    /// generator the synthetic session seeds use.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for PowerOfTwoChoices {
    /// Seeds the RNG with a fixed constant, for reproducible choice
    /// sequences out of the box.
    fn default() -> Self {
        PowerOfTwoChoices::new(0x70F2_C401_5EED_0002)
    }
}

impl Placement for PowerOfTwoChoices {
    fn place(&mut self, _session_id: usize, _config: &SessionConfig, loads: &[ShardLoad]) -> usize {
        let shards = loads.len();
        if shards == 1 {
            return 0;
        }
        let first = (self.next_u64() % shards as u64) as usize;
        // Sample the second candidate from the remaining shards so the two
        // choices are always distinct.
        let mut second = (self.next_u64() % (shards as u64 - 1)) as usize;
        if second >= first {
            second += 1;
        }
        // Lower score wins; ties break toward the lower shard index so the
        // decision is reproducible given equal loads.
        let (a, b) = (loads[first], loads[second]);
        if (a.score(), a.shard) <= (b.score(), b.shard) {
            first
        } else {
            second
        }
    }

    fn name(&self) -> &'static str {
        "power-of-two-choices"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_frame::Dimensions;

    fn config() -> SessionConfig {
        SessionConfig::synthetic(0, Dimensions::new(32, 32), 4)
    }

    fn loads(scores: &[(usize, usize)]) -> Vec<ShardLoad> {
        scores
            .iter()
            .enumerate()
            .map(|(shard, &(sessions, queue_depth))| ShardLoad {
                shard,
                sessions,
                queue_depth,
            })
            .collect()
    }

    #[test]
    fn static_placement_is_modulo() {
        let mut policy = Static;
        let loads = loads(&[(9, 9), (0, 0), (5, 5)]);
        for id in 0..12 {
            assert_eq!(policy.place(id, &config(), &loads), id % 3);
        }
    }

    #[test]
    fn power_of_two_prefers_the_emptier_shard() {
        // With exactly two shards the candidate pair is always {0, 1}, so
        // the choice is purely load-driven.
        let mut policy = PowerOfTwoChoices::default();
        let lopsided = loads(&[(8, 3), (1, 0)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &lopsided), 1);
        }
        let reversed = loads(&[(0, 0), (4, 2)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &reversed), 0);
        }
    }

    #[test]
    fn power_of_two_breaks_ties_toward_the_lower_index() {
        let mut policy = PowerOfTwoChoices::default();
        let even = loads(&[(2, 1), (2, 1)]);
        for id in 0..16 {
            assert_eq!(policy.place(id, &config(), &even), 0);
        }
    }

    #[test]
    fn power_of_two_choice_sequence_is_seed_reproducible() {
        let even = loads(&[(0, 0); 8]);
        let run = |seed: u64| {
            let mut policy = PowerOfTwoChoices::new(seed);
            (0..64)
                .map(|id| policy.place(id, &config(), &even))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should explore different candidate pairs"
        );
    }

    #[test]
    fn power_of_two_single_shard_short_circuits() {
        let mut policy = PowerOfTwoChoices::default();
        assert_eq!(policy.place(5, &config(), &loads(&[(3, 3)])), 0);
    }

    #[test]
    fn score_sums_sessions_and_queue_depth() {
        let load = ShardLoad {
            shard: 0,
            sessions: 3,
            queue_depth: 2,
        };
        assert_eq!(load.score(), 5);
    }

    #[test]
    fn policies_report_their_names() {
        assert_eq!(Static.name(), "static");
        assert_eq!(PowerOfTwoChoices::default().name(), "power-of-two-choices");
    }
}
