//! Multi-session streaming service over the perceptual encoder.
//!
//! The paper's encoder lives inside a VR runtime that serves *continuous
//! per-headset frame streams*, not one frame at a time. This crate models
//! that serving layer end to end, deterministically:
//!
//! * [`GazeTrace`] synthesizes realistic gaze streams — fixations,
//!   saccades, smooth pursuit — from a seed, so sessions exercise the
//!   eccentricity-map cache the way real eye trackers do ([`gaze`]).
//! * [`SessionConfig`] describes one headset's stream declaratively:
//!   scene, display size, frame budget, gaze model, seed ([`session`]).
//! * [`StreamRuntime`] is the long-lived serving core: per-shard
//!   producer/worker thread pairs spawned once at `start()`, sessions
//!   admitted and retired dynamically over control channels while frames
//!   are in flight, bounded render→encode queues (backpressure), and
//!   per-session / per-shard / service-wide / churn telemetry
//!   ([`runtime`]).
//! * [`Placement`] policies decide which shard an admitted session lands
//!   on: [`Static`] modulo routing or load-aware [`PowerOfTwoChoices`]
//!   over live queue depth and session count ([`placement`]).
//! * [`StreamService`] is the run-to-completion front end — collect a
//!   roster, `run()` (= start → admit all → drain → shutdown), read the
//!   report ([`service`]).
//!
//! Encoded output is **bit-identical for the same seeds regardless of
//! shard count, placement policy, or admission/retirement timing** — only
//! timing telemetry varies. The `stream_throughput` and `session_churn`
//! binaries in `pvc_bench` drive this crate at scale.
//!
//! # Examples
//!
//! Batch front end:
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{ServiceConfig, StreamService};
//!
//! // Four headsets, two shard workers, eight frames each.
//! let mut service = StreamService::new(ServiceConfig::default().with_shards(2));
//! service.admit_synthetic(4, Dimensions::new(32, 32), 8);
//!
//! let report = service.run();
//! assert_eq!(report.totals.frames, 32);
//! assert!(report.totals.bytes_out < report.totals.bytes_in, "BD always compresses");
//!
//! // Fixation-heavy gaze keeps the per-session map cache hot.
//! let cache = report.aggregate_cache();
//! assert!(cache.hit_rate() > 0.0);
//!
//! // Sessions stay pinned to their shard; per-session rates are real.
//! for session in &report.sessions {
//!     assert_eq!(session.shard, session.session % 2);
//!     assert!(session.throughput.frames_per_second() > 0.0);
//! }
//! ```
//!
//! Long-lived runtime with churn:
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{ServiceConfig, SessionConfig, StreamRuntime};
//!
//! let dims = Dimensions::new(32, 32);
//! let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
//! let first = runtime.admit(SessionConfig::synthetic(0, dims, 6));
//! let _second = runtime.admit(SessionConfig::synthetic(1, dims, 6));
//!
//! // Retire the first session (graceful: it finishes its frame budget)
//! // while the second keeps streaming, then admit a replacement.
//! let report = runtime.retire(first);
//! assert_eq!(report.throughput.frames, 6);
//! let _third = runtime.admit(SessionConfig::synthetic(2, dims, 6));
//!
//! let service_report = runtime.shutdown();
//! assert_eq!(service_report.churn.admitted, 3);
//! assert_eq!(service_report.churn.completed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaze;
pub mod placement;
pub mod runtime;
pub mod service;
pub mod session;

pub use gaze::{FixationSaccadeConfig, GazeModel, GazeTrace, SmoothPursuitConfig};
pub use placement::{Placement, PowerOfTwoChoices, ShardLoad, Static};
pub use runtime::StreamRuntime;
pub use service::{ServiceConfig, ServiceReport, ShardReport, StreamService};
pub use session::{SessionConfig, SessionReport};
