//! Multi-session streaming service over the perceptual encoder.
//!
//! The paper's encoder lives inside a VR runtime that serves *continuous
//! per-headset frame streams*, not one frame at a time — and real fleets
//! are heterogeneous: a Quest-2-class headset streams next to a
//! Vision-class one whose frames cost ~3.3× the pixels. This crate models
//! that serving layer end to end, deterministically:
//!
//! * [`GazeTrace`] synthesizes realistic gaze streams — fixations,
//!   saccades, smooth pursuit — from a seed, so sessions exercise the
//!   eccentricity-map cache the way real eye trackers do ([`gaze`]).
//! * [`SessionConfig`] describes one headset's stream declaratively:
//!   scene + seed (*what* is shown) and a [`SessionProfile`] (*how* it
//!   renders: resolution tier, per-eye size, frame budget, gaze model,
//!   optional tile size). [`ResolutionTier`] and [`WorkloadMix`] provide
//!   the standard tiers and synthetic population mixes ([`session`]).
//! * [`StreamRuntime`] is the long-lived serving core: per-shard
//!   producer/worker thread pairs spawned once at `start()`, sessions
//!   admitted, gracefully retired or hard-cancelled
//!   ([`StreamRuntime::retire_now`]) over control channels while frames
//!   are in flight, bounded render→encode queues (backpressure), and
//!   per-session / per-shard / per-tier / churn telemetry ([`runtime`]).
//! * [`Placement`] policies decide which shard an admitted session lands
//!   on: [`Static`] modulo routing, depth-based [`PowerOfTwoChoices`], or
//!   pixel-cost-aware [`LeastLoaded`] — the one heterogeneous mixes need
//!   ([`placement`], including the fairness caveat).
//! * [`ElasticController`] is the control plane over a live runtime:
//!   admission gating against a fleet pixel budget, tier-shedding under
//!   sustained overload, shard autoscaling on hysteresis thresholds, and
//!   rebalancing migration — all built from runtime verbs that preserve
//!   bit-identical streams ([`controller`]).
//! * [`StreamService`] is the run-to-completion front end — collect a
//!   roster, `run()` (= start → admit all → drain → shutdown), read the
//!   report ([`service`]).
//!
//! Encoded output is **bit-identical for the same `(scene, seed,
//! profile)` regardless of shard count, placement policy,
//! admission/retirement timing, or other sessions being hard-cancelled**
//! — only timing telemetry varies. The `stream_throughput` and
//! `session_churn` binaries in `pvc_bench` drive this crate at scale,
//! including `--mix bimodal` / `--mix heavy-tail` populations.
//!
//! # Examples
//!
//! The long-lived runtime serving a heterogeneous fleet — start, admit
//! one session per tier, gracefully retire one, hard-cancel another,
//! shut down:
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{
//!     ResolutionTier, ServiceConfig, SessionConfig, SessionProfile, StreamRuntime,
//! };
//! use pvc_scenes::SceneId;
//!
//! let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
//!
//! // One session per resolution tier, scaled down from a 32×32
//! // Quest-2-equivalent base so the example stays fast. The Vision-class
//! // session costs ~3.3× the pixels per frame and gets a 96 Hz-scaled
//! // frame budget; `--mix` in the bench binaries builds fleets like this.
//! let base = Dimensions::new(32, 32);
//! let ids: Vec<usize> = ResolutionTier::ALL
//!     .iter()
//!     .enumerate()
//!     .map(|(index, &tier)| {
//!         let profile = SessionProfile::for_tier(tier, base, 4);
//!         runtime.admit(SessionConfig::new(SceneId::by_index(index), 7 + index as u64, profile))
//!     })
//!     .collect();
//!
//! // Pixel-weighted shard loads are live; cost-aware placement reads
//! // them. (They are a moment-in-time snapshot — committed pixels
//! // release as sessions finish — so only the shape is asserted here.)
//! let loads = runtime.shard_loads();
//! assert_eq!(loads.len(), 2);
//! let _committed: u64 = loads.iter().map(|l| l.session_pixels).sum();
//!
//! // Graceful retirement: the Quest-2 session finishes its 4-frame budget.
//! let report = runtime.retire(ids[0]);
//! assert_eq!(report.throughput.frames, 4);
//! assert!(!report.cancelled);
//!
//! // Hard-cancel: the Vision-class session ends early with a partial,
//! // flagged report (its budget was 96 Hz-scaled: 5 frames).
//! let cancelled = runtime.retire_now(ids[2]);
//! assert!(cancelled.throughput.frames <= 5);
//! assert_eq!(cancelled.tier, ResolutionTier::VisionClass);
//!
//! let service_report = runtime.shutdown();
//! assert_eq!(service_report.churn.admitted, 3);
//! assert_eq!(service_report.churn.completed, 3);
//! assert_eq!(service_report.churn.retired, 2);
//! // Per-tier telemetry covers the sessions not handed out above.
//! assert_eq!(service_report.tier_summary().len(), 1);
//! ```
//!
//! Batch front end over a homogeneous roster:
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{ServiceConfig, StreamService};
//!
//! // Four headsets, two shard workers, eight frames each.
//! let mut service = StreamService::new(ServiceConfig::default().with_shards(2));
//! service.admit_synthetic(4, Dimensions::new(32, 32), 8);
//!
//! let report = service.run();
//! assert_eq!(report.totals.frames, 32);
//! assert!(report.totals.bytes_out < report.totals.bytes_in, "BD always compresses");
//!
//! // Fixation-heavy gaze keeps the per-session map cache hot.
//! let cache = report.aggregate_cache();
//! assert!(cache.hit_rate() > 0.0);
//!
//! // Sessions stay pinned to their shard; per-session rates are real.
//! for session in &report.sessions {
//!     assert_eq!(session.shard, session.session % 2);
//!     assert!(session.throughput.frames_per_second() > 0.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod gaze;
pub mod placement;
pub mod runtime;
pub mod service;
pub mod session;
pub mod wire;

pub use controller::{Admission, ElasticConfig, ElasticController, TickActions};
pub use gaze::{FixationSaccadeConfig, GazeModel, GazeTrace, SmoothPursuitConfig};
pub use placement::{
    plan_migration, LeastLoaded, MigrationPlan, Placement, PowerOfTwoChoices, Predictive,
    ShardLoad, Static,
};
pub use runtime::StreamRuntime;
pub use service::{ServiceConfig, ServiceReport, ShardReport, StreamService, TraceConfig};
pub use session::{ResolutionTier, SessionConfig, SessionProfile, SessionReport, WorkloadMix};
pub use wire::{
    FrameSink, WireError, WireReader, WireRecord, WireSessionHeader, WireSink, WireTierChange,
    WIRE_VERSION,
};
