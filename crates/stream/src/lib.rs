//! Multi-session streaming service over the perceptual encoder.
//!
//! The paper's encoder lives inside a VR runtime that serves *continuous
//! per-headset frame streams*, not one frame at a time. This crate models
//! that serving layer end to end, deterministically:
//!
//! * [`GazeTrace`] synthesizes realistic gaze streams — fixations,
//!   saccades, smooth pursuit — from a seed, so sessions exercise the
//!   eccentricity-map cache the way real eye trackers do ([`gaze`]).
//! * [`SessionConfig`] describes one headset's stream declaratively:
//!   scene, display size, frame budget, gaze model, seed ([`session`]).
//! * [`StreamService`] schedules admitted sessions onto a sharded worker
//!   pool with stable per-session routing, bounded render→encode queues
//!   (backpressure), the stream-mode encode path
//!   ([`pvc_core::BatchEncoder::encode_frame_stream`]) and per-session /
//!   per-shard / service-wide telemetry ([`service`]).
//!
//! Encoded output is **bit-identical for the same seeds regardless of the
//! shard count** — only timing telemetry varies. The `stream_throughput`
//! binary in `pvc_bench` drives this crate at scale.
//!
//! # Examples
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{ServiceConfig, StreamService};
//!
//! // Four headsets, two shard workers, eight frames each.
//! let mut service = StreamService::new(ServiceConfig::default().with_shards(2));
//! service.admit_synthetic(4, Dimensions::new(32, 32), 8);
//!
//! let report = service.run();
//! assert_eq!(report.totals.frames, 32);
//! assert!(report.totals.bytes_out < report.totals.bytes_in, "BD always compresses");
//!
//! // Fixation-heavy gaze keeps the per-session map cache hot.
//! let cache = report.aggregate_cache();
//! assert!(cache.hit_rate() > 0.0);
//!
//! // Sessions stay pinned to their shard.
//! for session in &report.sessions {
//!     assert_eq!(session.shard, session.session % 2);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaze;
pub mod service;
pub mod session;

pub use gaze::{FixationSaccadeConfig, GazeModel, GazeTrace, SmoothPursuitConfig};
pub use service::{ServiceConfig, ServiceReport, ShardReport, StreamService};
pub use session::{SessionConfig, SessionReport};
