//! Session descriptions, heterogeneous display profiles, workload mixes
//! and per-session results.
//!
//! A *session* is one headset's stream. It is described declaratively by a
//! [`SessionConfig`] — *what content* (scene + seed) rendered under *which
//! display profile* ([`SessionProfile`]: resolution tier, per-eye render
//! size, frame budget, gaze model, optional encoder tile size) — so the
//! service can re-create a session's renderer, trace and encoder inside
//! whichever shard the session lands on. That is what makes the encoded
//! output a pure function of `(scene, seed, profile)`, independent of
//! shard count, placement policy and churn/cancel timing.
//!
//! Profiles are what make the serving workload *heterogeneous*: a single
//! runtime concurrently serves Quest-2-class sessions next to Vision-class
//! ones whose frames cost ~3.3× the pixels. [`WorkloadMix`] provides the
//! standard synthetic mixes (uniform / bimodal / heavy-tail) the stream
//! benchmarks use to exercise cost-aware placement.

use crate::gaze::GazeModel;
use pvc_core::BatchCacheStats;
use pvc_frame::Dimensions;
use pvc_metrics::{TemporalTotals, ThroughputReport};
use pvc_scenes::SceneId;
use serde::{Deserialize, Serialize};

/// Salt mixed into a session's seed for gaze-trace synthesis, so scene
/// content and gaze randomness are decorrelated. Every component that
/// re-derives a session's trace (shard producers, hand-driven tests) must
/// use the same salt, or the "rebuilt from config alone" determinism
/// argument falls apart.
pub(crate) const GAZE_SEED_SALT: u64 = 0x6A7E_5EED_0BAD_CAFE;

/// A headset display class, used both as the scaling basis for
/// heterogeneous render sizes and as the telemetry label per-tier
/// reporting groups sessions under.
///
/// The per-eye panel sizes and refresh rates are the real devices'
/// (Quest 2: 1832×1920 @ 72 Hz, Quest-Pro-class: 1800×1920 @ 90 Hz,
/// Vision-class: 3660×3200 @ 96 Hz). Benchmarks rarely render at native
/// size; [`ResolutionTier::scale`] maps a Quest-2-equivalent base size to
/// this tier's proportionally scaled size so a scaled-down mix keeps the
/// real *relative* pixel costs (a Vision-class frame ≈ 3.3× a Quest-2
/// frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionTier {
    /// Quest-2 class: 1832×1920 per eye, 72 Hz. The baseline tier.
    Quest2,
    /// Quest-Pro class: 1800×1920 per eye, 90 Hz.
    QuestPro,
    /// Vision-class: 3660×3200 per eye, 96 Hz — ~3.3× the pixels per
    /// frame of the baseline tier.
    VisionClass,
}

impl ResolutionTier {
    /// Every tier, from cheapest to most expensive per frame.
    pub const ALL: [ResolutionTier; 3] = [
        ResolutionTier::Quest2,
        ResolutionTier::QuestPro,
        ResolutionTier::VisionClass,
    ];

    /// The tier's native per-eye panel resolution.
    pub fn per_eye(self) -> Dimensions {
        match self {
            ResolutionTier::Quest2 => Dimensions::new(1832, 1920),
            ResolutionTier::QuestPro => Dimensions::new(1800, 1920),
            ResolutionTier::VisionClass => Dimensions::new(3660, 3200),
        }
    }

    /// The tier's display refresh rate in Hz; scales the frame budget a
    /// fixed-duration session needs.
    pub fn refresh_hz(self) -> u32 {
        match self {
            ResolutionTier::Quest2 => 72,
            ResolutionTier::QuestPro => 90,
            ResolutionTier::VisionClass => 96,
        }
    }

    /// Short telemetry/CLI label.
    pub fn name(self) -> &'static str {
        match self {
            ResolutionTier::Quest2 => "quest2",
            ResolutionTier::QuestPro => "quest-pro",
            ResolutionTier::VisionClass => "vision",
        }
    }

    /// Scales a Quest-2-equivalent base render size to this tier,
    /// preserving the tiers' native per-axis ratios (each axis at least
    /// 1 px). `scale(base)` on [`ResolutionTier::Quest2`] is the identity.
    pub fn scale(self, base: Dimensions) -> Dimensions {
        let reference = ResolutionTier::Quest2.per_eye();
        let native = self.per_eye();
        let scale_axis = |value: u32, from: u32, to: u32| -> u32 {
            ((u64::from(value) * u64::from(to)) / u64::from(from)).max(1) as u32
        };
        Dimensions::new(
            scale_axis(base.width, reference.width, native.width),
            scale_axis(base.height, reference.height, native.height),
        )
    }

    /// Scales a 72 Hz-equivalent frame budget to this tier's refresh rate
    /// (at least 1 frame): a session streaming for the same wall-clock
    /// duration needs proportionally more frames on a faster display.
    pub fn frame_budget(self, base_frames: u32) -> u32 {
        ((u64::from(base_frames) * u64::from(self.refresh_hz())) / 72).max(1) as u32
    }

    /// The encoder tile size this tier overrides, if any. Vision-class
    /// displays use 8×8 tiles (double the paper's 4×4 default): at ~2× the
    /// linear resolution, an 8 px tile covers the same visual angle the
    /// baseline tier's 4 px tile does.
    pub fn tile_size(self) -> Option<u32> {
        match self {
            ResolutionTier::Quest2 | ResolutionTier::QuestPro => None,
            ResolutionTier::VisionClass => Some(8),
        }
    }

    /// The tier's position in [`ResolutionTier::ALL`], as the compact
    /// class key per-tier trace tables index by (see
    /// [`pvc_trace::TIER_CLASS_COUNT`] — classes beyond the tiers are the
    /// catch-all [`pvc_trace::CLASS_OTHER`]).
    pub fn class_index(self) -> u8 {
        match self {
            ResolutionTier::Quest2 => 0,
            ResolutionTier::QuestPro => 1,
            ResolutionTier::VisionClass => 2,
        }
    }

    /// The next-cheaper tier in [`ResolutionTier::ALL`], or `None` for
    /// the baseline tier — the shedding ladder the elastic controller
    /// walks down under sustained overload.
    pub fn lower(self) -> Option<ResolutionTier> {
        let index = ResolutionTier::ALL
            .iter()
            .position(|&tier| tier == self)
            .expect("every tier is in ALL");
        index.checked_sub(1).map(|lower| ResolutionTier::ALL[lower])
    }
}

/// The per-session display profile: everything about *how* a session
/// renders and streams, independent of *what* it shows (scene + seed).
///
/// The profile is part of the determinism contract: a session's encoded
/// stream is a pure function of `(scene, seed, profile)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionProfile {
    /// The display class, used for tier-scaled sizing and as the label
    /// per-tier telemetry groups this session under.
    pub tier: ResolutionTier,
    /// Per-eye render resolution; also the rendered frame size. May be a
    /// scaled-down stand-in for the tier's native size (benchmarks) or the
    /// native size itself.
    pub dimensions: Dimensions,
    /// Frame budget: how many frames the session streams to completion
    /// (hard-cancel can end it earlier).
    pub frames: u32,
    /// How this session's gaze moves.
    pub gaze_model: GazeModel,
    /// Per-session encoder tile size; `None` uses the service-wide
    /// encoder configuration unchanged.
    pub tile_size: Option<u32>,
}

impl SessionProfile {
    /// A profile rendering at exactly `dimensions` for `frames` frames,
    /// labelled as the baseline [`ResolutionTier::Quest2`] tier, with the
    /// default fixation/saccade gaze model for the display size and no
    /// tile-size override. The homogeneous-workload building block.
    pub fn custom(dimensions: Dimensions, frames: u32) -> SessionProfile {
        SessionProfile {
            tier: ResolutionTier::Quest2,
            dimensions,
            frames,
            gaze_model: GazeModel::default_for(dimensions),
            tile_size: None,
        }
    }

    /// A profile for `tier`, sized and budgeted relative to a
    /// Quest-2-equivalent base: render size [`ResolutionTier::scale`]d
    /// from `base`, frame budget [`ResolutionTier::frame_budget`]-scaled
    /// from `base_frames` (72 Hz-equivalent), the tier's default tile
    /// size, and the default gaze model for the scaled display.
    pub fn for_tier(tier: ResolutionTier, base: Dimensions, base_frames: u32) -> SessionProfile {
        let dimensions = tier.scale(base);
        SessionProfile {
            tier,
            dimensions,
            frames: tier.frame_budget(base_frames),
            gaze_model: GazeModel::default_for(dimensions),
            tile_size: tier.tile_size(),
        }
    }

    /// Returns the profile with a different gaze model.
    pub fn with_gaze_model(mut self, gaze_model: GazeModel) -> SessionProfile {
        self.gaze_model = gaze_model;
        self
    }

    /// Returns the profile with a different frame budget.
    pub fn with_frames(mut self, frames: u32) -> SessionProfile {
        self.frames = frames;
        self
    }

    /// Returns the profile with a per-session encoder tile size (`None`
    /// restores the service-wide default).
    pub fn with_tile_size(mut self, tile_size: Option<u32>) -> SessionProfile {
        self.tile_size = tile_size;
        self
    }

    /// The profile's per-frame pixel cost — the weight cost-aware
    /// placement balances across shards.
    pub fn pixel_cost(&self) -> u64 {
        self.dimensions.pixel_count() as u64
    }

    /// The same session one [`ResolutionTier`] down, or `None` when this
    /// profile is already at the baseline tier.
    ///
    /// Every field is re-derived from the *current* profile the same way
    /// [`SessionProfile::for_tier`] derives it from a base: render size
    /// rescaled per-axis by the tiers' native panel ratio, frame budget
    /// rescaled by the refresh-rate ratio (both at least 1), the lower
    /// tier's default tile size, and the default gaze model for the
    /// rescaled display. That by-construction rule is what makes the shed
    /// determinism pin checkable: a solo run started directly on
    /// `profile.downgraded()` produces the exact stream a shed session
    /// produces after its downgrade frame.
    pub fn downgraded(&self) -> Option<SessionProfile> {
        let lower = self.tier.lower()?;
        let from = self.tier.per_eye();
        let to = lower.per_eye();
        let scale_axis = |value: u32, from: u32, to: u32| -> u32 {
            ((u64::from(value) * u64::from(to)) / u64::from(from)).max(1) as u32
        };
        let dimensions = Dimensions::new(
            scale_axis(self.dimensions.width, from.width, to.width),
            scale_axis(self.dimensions.height, from.height, to.height),
        );
        let frames = ((u64::from(self.frames) * u64::from(lower.refresh_hz()))
            / u64::from(self.tier.refresh_hz()))
        .max(1) as u32;
        Some(SessionProfile {
            tier: lower,
            dimensions,
            frames,
            gaze_model: GazeModel::default_for(dimensions),
            tile_size: lower.tile_size(),
        })
    }
}

/// A synthetic population mix over the resolution tiers.
///
/// The mix decides which [`ResolutionTier`] the `index`-th synthetic
/// session gets; everything else about the session still comes from
/// [`SessionConfig::synthetic_mixed`]. Uniform is the homogeneous
/// baseline; bimodal and heavy-tail are the shapes under which
/// session-count-balancing placement visibly mis-routes pixel load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMix {
    /// Every session is Quest-2 class (the homogeneous baseline).
    Uniform,
    /// Alternating Quest-2 / Vision-class sessions: half the fleet costs
    /// ~3.3× the other half per frame.
    Bimodal,
    /// Mostly Quest-2, a quarter Quest-Pro, one Vision-class whale per
    /// eight sessions.
    HeavyTail,
}

impl WorkloadMix {
    /// Every mix, in CLI-listing order.
    pub const ALL: [WorkloadMix; 3] = [
        WorkloadMix::Uniform,
        WorkloadMix::Bimodal,
        WorkloadMix::HeavyTail,
    ];

    /// CLI/report label.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadMix::Uniform => "uniform",
            WorkloadMix::Bimodal => "bimodal",
            WorkloadMix::HeavyTail => "heavy-tail",
        }
    }

    /// Parses a CLI label (`uniform` / `bimodal` / `heavy-tail`).
    pub fn from_name(name: &str) -> Option<WorkloadMix> {
        WorkloadMix::ALL.into_iter().find(|mix| mix.name() == name)
    }

    /// The tier the `index`-th synthetic session of this mix gets.
    pub fn tier_for(self, index: usize) -> ResolutionTier {
        match self {
            WorkloadMix::Uniform => ResolutionTier::Quest2,
            WorkloadMix::Bimodal => {
                if index % 2 == 0 {
                    ResolutionTier::Quest2
                } else {
                    ResolutionTier::VisionClass
                }
            }
            WorkloadMix::HeavyTail => match index % 8 {
                0 => ResolutionTier::VisionClass,
                1 | 2 => ResolutionTier::QuestPro,
                _ => ResolutionTier::Quest2,
            },
        }
    }
}

/// Everything needed to (re)create one headset's stream: *what* is shown
/// (scene + seed) and *how* it renders and streams (the profile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The scene rendered for this headset.
    pub scene: SceneId,
    /// Seed for both the scene's animation content and the gaze trace.
    pub seed: u64,
    /// The display/streaming profile.
    pub profile: SessionProfile,
}

impl SessionConfig {
    /// Creates a session from its three determinism-relevant parts.
    pub fn new(scene: SceneId, seed: u64, profile: SessionProfile) -> SessionConfig {
        SessionConfig {
            scene,
            seed,
            profile,
        }
    }

    /// A synthetic session for load generation: scene dealt round-robin
    /// from the catalogue by `index`, a seed derived from `index`, and a
    /// homogeneous [`SessionProfile::custom`] profile at `dimensions`.
    pub fn synthetic(index: usize, dimensions: Dimensions, frames: u32) -> SessionConfig {
        SessionConfig::new(
            SceneId::by_index(index),
            synthetic_seed(index),
            SessionProfile::custom(dimensions, frames),
        )
    }

    /// A synthetic session drawn from a [`WorkloadMix`]: like
    /// [`Self::synthetic`], but the profile is
    /// [`SessionProfile::for_tier`] for the tier the mix deals to
    /// `index`, with `base`/`base_frames` as the Quest-2-equivalent
    /// render size and 72 Hz-equivalent frame budget.
    pub fn synthetic_mixed(
        index: usize,
        mix: WorkloadMix,
        base: Dimensions,
        base_frames: u32,
    ) -> SessionConfig {
        SessionConfig::new(
            SceneId::by_index(index),
            synthetic_seed(index),
            SessionProfile::for_tier(mix.tier_for(index), base, base_frames),
        )
    }

    /// Returns the session with a different gaze model.
    pub fn with_gaze_model(mut self, gaze_model: GazeModel) -> SessionConfig {
        self.profile.gaze_model = gaze_model;
        self
    }

    /// Returns the session with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SessionConfig {
        self.seed = seed;
        self
    }

    /// Returns the session with a different profile.
    pub fn with_profile(mut self, profile: SessionProfile) -> SessionConfig {
        self.profile = profile;
        self
    }

    /// Per-eye render resolution (from the profile).
    pub fn dimensions(&self) -> Dimensions {
        self.profile.dimensions
    }

    /// Frame budget (from the profile).
    pub fn frames(&self) -> u32 {
        self.profile.frames
    }

    /// Gaze model (from the profile).
    pub fn gaze_model(&self) -> GazeModel {
        self.profile.gaze_model
    }

    /// Per-frame pixel cost (from the profile) — what cost-aware placement
    /// weighs this session by.
    pub fn pixel_cost(&self) -> u64 {
        self.profile.pixel_cost()
    }
}

/// SplitMix64-style dispersion so neighbouring indices get unrelated
/// scene/gaze randomness.
fn synthetic_seed(index: usize) -> u64 {
    (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x5EED_CAFE)
}

/// What one session's stream produced, as observed by the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The session's id (its admission index).
    pub session: usize,
    /// The scene the session streamed.
    pub scene: SceneId,
    /// The session's resolution tier (per-tier telemetry groups by this).
    pub tier: ResolutionTier,
    /// Shard the session was routed to.
    pub shard: usize,
    /// True when the stream was hard-cancelled
    /// ([`crate::StreamRuntime::retire_now`]): the session ended before
    /// its frame budget and `throughput` covers only the frames actually
    /// encoded.
    pub cancelled: bool,
    /// Frame/byte/pixel totals. `wall_seconds` is the session's own
    /// elapsed stream time — from its first frame's encode start to its
    /// last frame's encode end — so per-session `frames_per_second()` and
    /// `output_megabits_per_second()` are meaningful (and non-zero for any
    /// session that encoded at least one frame). Because sessions share a
    /// shard worker, the time includes waiting between the session's own
    /// frames; it measures delivered stream rate, not encoder occupancy.
    pub throughput: ThroughputReport,
    /// The session's eccentricity-map cache counters.
    pub cache: BatchCacheStats,
    /// Temporal-coding totals: keyframe/predicted frame counts, per-mode
    /// tile counts, and emitted vs. would-have-been-intra bits. On an
    /// intra-only session every frame counts as a keyframe and
    /// `bits == intra_bits`.
    #[serde(default)]
    pub temporal: TemporalTotals,
    /// Chained FNV-1a digest over every frame's encoded bitstream, in frame
    /// order — two runs produced bit-identical streams iff digests match.
    pub stream_digest: u64,
    /// The per-frame encoded bitstreams, kept only when
    /// [`crate::ServiceConfig::collect_payloads`] is set (tests, debugging).
    pub payloads: Option<Vec<Vec<u8>>>,
    /// The session's framed byte stream (see [`crate::wire`]), kept only
    /// when [`crate::ServiceConfig::collect_wire`] is set — this is what
    /// a client (the `pvc_client` crate) actually receives and decodes.
    pub wire_stream: Option<Vec<u8>>,
    /// The tier the session was admitted at, when the control plane shed
    /// it to a lower tier mid-stream (`tier` is then the final tier).
    pub downgraded_from: Option<ResolutionTier>,
    /// The frame index (in the *downgraded* profile's numbering) at which
    /// the shed took effect: frames `downgrade_frame..` were encoded at
    /// the lower tier.
    pub downgrade_frame: Option<u32>,
}

/// Seed value of the FNV-1a digest chain.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a digest.
pub(crate) fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sessions_cycle_scenes_and_disperse_seeds() {
        let dims = Dimensions::new(64, 64);
        let a = SessionConfig::synthetic(0, dims, 10);
        let b = SessionConfig::synthetic(1, dims, 10);
        let g = SessionConfig::synthetic(6, dims, 10);
        assert_eq!(a.scene, SceneId::Office);
        assert_eq!(b.scene, SceneId::Fortnite);
        assert_eq!(g.scene, a.scene, "index 6 wraps back to the first scene");
        assert_ne!(a.seed, g.seed, "same scene, different content");
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.profile.tier, ResolutionTier::Quest2);
        assert_eq!(a.dimensions(), dims);
        assert_eq!(a.frames(), 10);
        assert_eq!(a.pixel_cost(), 64 * 64);
    }

    #[test]
    fn builders_override_fields() {
        let dims = Dimensions::new(32, 32);
        let s = SessionConfig::synthetic(0, dims, 5)
            .with_seed(77)
            .with_gaze_model(GazeModel::pursuit(2.0));
        assert_eq!(s.seed, 77);
        assert_eq!(s.gaze_model(), GazeModel::pursuit(2.0));
        let p = SessionProfile::custom(dims, 5)
            .with_frames(9)
            .with_tile_size(Some(8));
        let s = s.with_profile(p);
        assert_eq!(s.frames(), 9);
        assert_eq!(s.profile.tile_size, Some(8));
    }

    #[test]
    fn tier_scaling_preserves_relative_pixel_cost() {
        let base = Dimensions::new(96, 96);
        let quest2 = ResolutionTier::Quest2.scale(base);
        assert_eq!(quest2, base, "the baseline tier is the identity");
        let vision = ResolutionTier::VisionClass.scale(base);
        let ratio = (vision.pixel_count() as f64) / (base.pixel_count() as f64);
        let native_ratio = ResolutionTier::VisionClass.per_eye().pixel_count() as f64
            / ResolutionTier::Quest2.per_eye().pixel_count() as f64;
        assert!(
            (ratio - native_ratio).abs() / native_ratio < 0.05,
            "scaled pixel ratio {ratio:.2} should track the native {native_ratio:.2}"
        );
        // Tiny bases never collapse to zero-size frames.
        let tiny = ResolutionTier::QuestPro.scale(Dimensions::new(1, 1));
        assert!(tiny.width >= 1 && tiny.height >= 1);
    }

    #[test]
    fn frame_budgets_scale_with_refresh_rate() {
        assert_eq!(ResolutionTier::Quest2.frame_budget(12), 12);
        assert_eq!(ResolutionTier::QuestPro.frame_budget(12), 15, "90/72 Hz");
        assert_eq!(ResolutionTier::VisionClass.frame_budget(12), 16, "96/72 Hz");
        assert_eq!(
            ResolutionTier::Quest2.frame_budget(0),
            1,
            "budgets are at least one frame"
        );
    }

    #[test]
    fn for_tier_profiles_carry_tier_defaults() {
        let base = Dimensions::new(96, 96);
        let vision = SessionProfile::for_tier(ResolutionTier::VisionClass, base, 12);
        assert_eq!(vision.tile_size, Some(8));
        assert_eq!(vision.frames, 16);
        assert_eq!(
            vision.gaze_model,
            GazeModel::default_for(vision.dimensions),
            "gaze magnitudes follow the scaled display, not the base"
        );
        let quest2 = SessionProfile::for_tier(ResolutionTier::Quest2, base, 12);
        assert_eq!(quest2.tile_size, None);
        assert!(vision.pixel_cost() > 3 * quest2.pixel_cost());
    }

    #[test]
    fn mixes_deal_the_documented_tier_sequences() {
        assert!((0..16).all(|i| WorkloadMix::Uniform.tier_for(i) == ResolutionTier::Quest2));
        let bimodal: Vec<ResolutionTier> =
            (0..4).map(|i| WorkloadMix::Bimodal.tier_for(i)).collect();
        assert_eq!(
            bimodal,
            [
                ResolutionTier::Quest2,
                ResolutionTier::VisionClass,
                ResolutionTier::Quest2,
                ResolutionTier::VisionClass,
            ]
        );
        let heavy: Vec<ResolutionTier> =
            (0..8).map(|i| WorkloadMix::HeavyTail.tier_for(i)).collect();
        assert_eq!(heavy[0], ResolutionTier::VisionClass, "one whale per eight");
        assert_eq!(heavy[1], ResolutionTier::QuestPro);
        assert_eq!(heavy[2], ResolutionTier::QuestPro);
        assert!(heavy[3..].iter().all(|&t| t == ResolutionTier::Quest2));
        // A heavy-tail population of eight spans all three tiers.
        assert_eq!(
            (0..8)
                .map(|i| WorkloadMix::HeavyTail.tier_for(i).name())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn mix_names_round_trip() {
        for mix in WorkloadMix::ALL {
            assert_eq!(WorkloadMix::from_name(mix.name()), Some(mix));
        }
        assert_eq!(WorkloadMix::from_name("gaussian"), None);
    }

    #[test]
    fn synthetic_mixed_sessions_share_seeds_with_uniform_ones() {
        // The mix only moves the profile: scene and seed stay a function
        // of the index, so mixed and uniform rosters are comparable.
        let base = Dimensions::new(96, 96);
        let uniform = SessionConfig::synthetic(5, base, 10);
        let mixed = SessionConfig::synthetic_mixed(5, WorkloadMix::Bimodal, base, 10);
        assert_eq!(uniform.scene, mixed.scene);
        assert_eq!(uniform.seed, mixed.seed);
        assert_eq!(mixed.profile.tier, ResolutionTier::VisionClass);
        assert!(mixed.pixel_cost() > 3 * uniform.pixel_cost());
    }

    #[test]
    fn the_shedding_ladder_walks_all_down_to_the_baseline() {
        assert_eq!(
            ResolutionTier::VisionClass.lower(),
            Some(ResolutionTier::QuestPro)
        );
        assert_eq!(
            ResolutionTier::QuestPro.lower(),
            Some(ResolutionTier::Quest2)
        );
        assert_eq!(ResolutionTier::Quest2.lower(), None);
    }

    #[test]
    fn downgraded_profiles_rederive_every_field() {
        let vision =
            SessionProfile::for_tier(ResolutionTier::VisionClass, Dimensions::new(32, 32), 100);
        let lower = vision.downgraded().expect("vision can shed");
        assert_eq!(lower.tier, ResolutionTier::QuestPro);
        // Per-axis rescale by the native panel ratio: 63·1800/3660 = 30,
        // 53·1920/3200 = 31. Frame budget 133·90/96 = 124.
        assert_eq!(vision.dimensions, Dimensions::new(63, 53));
        assert_eq!(vision.frames, 133);
        assert_eq!(lower.dimensions, Dimensions::new(30, 31));
        assert_eq!(lower.frames, 124);
        assert_eq!(lower.tile_size, None, "QuestPro drops the 8px override");
        assert_eq!(lower.gaze_model, GazeModel::default_for(lower.dimensions));
        assert!(lower.pixel_cost() < vision.pixel_cost());
        // The baseline tier has nowhere left to shed to.
        let quest2 = SessionProfile::custom(Dimensions::new(16, 16), 4);
        assert_eq!(quest2.downgraded(), None);
        // Tiny profiles never collapse to zero size or zero frames.
        let tiny = SessionProfile::for_tier(ResolutionTier::QuestPro, Dimensions::new(1, 1), 0)
            .downgraded()
            .expect("quest-pro can shed");
        assert!(tiny.dimensions.width >= 1 && tiny.dimensions.height >= 1);
        assert!(tiny.frames >= 1);
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        let d1 = fnv1a_update(fnv1a_update(FNV_OFFSET_BASIS, b"ab"), b"cd");
        let d2 = fnv1a_update(fnv1a_update(FNV_OFFSET_BASIS, b"cd"), b"ab");
        assert_ne!(d1, d2);
        // Known FNV-1a vector: empty input leaves the offset basis.
        assert_eq!(fnv1a_update(FNV_OFFSET_BASIS, b""), FNV_OFFSET_BASIS);
    }
}
