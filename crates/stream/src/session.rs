//! Session descriptions and per-session results.
//!
//! A *session* is one headset's stream: a display geometry, a scene being
//! rendered for it, a synthesized gaze trace, and a frame budget. Sessions
//! are described declaratively ([`SessionConfig`]) so the service can
//! re-create a session's renderer, trace and encoder inside whichever
//! shard the session lands on — which is what makes the encoded output
//! independent of the shard count.

use crate::gaze::GazeModel;
use pvc_core::BatchCacheStats;
use pvc_frame::Dimensions;
use pvc_metrics::ThroughputReport;
use pvc_scenes::SceneId;
use serde::{Deserialize, Serialize};

/// Salt mixed into a session's seed for gaze-trace synthesis, so scene
/// content and gaze randomness are decorrelated. Every component that
/// re-derives a session's trace (shard producers, hand-driven tests) must
/// use the same salt, or the "rebuilt from config alone" determinism
/// argument falls apart.
pub(crate) const GAZE_SEED_SALT: u64 = 0x6A7E_5EED_0BAD_CAFE;

/// Everything needed to (re)create one headset's stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The scene rendered for this headset.
    pub scene: SceneId,
    /// Per-eye display resolution; also the rendered frame size.
    pub dimensions: Dimensions,
    /// Number of frames the session streams.
    pub frames: u32,
    /// Seed for both the scene's animation content and the gaze trace.
    pub seed: u64,
    /// How this session's gaze moves.
    pub gaze_model: GazeModel,
}

impl SessionConfig {
    /// A synthetic session for load generation: scene dealt round-robin
    /// from the catalogue by `index`, a seed derived from `index`, and the
    /// default fixation/saccade gaze model for the display size.
    pub fn synthetic(index: usize, dimensions: Dimensions, frames: u32) -> SessionConfig {
        SessionConfig {
            scene: SceneId::by_index(index),
            dimensions,
            frames,
            // SplitMix64-style dispersion so neighbouring indices get
            // unrelated scene/gaze randomness.
            seed: (index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x5EED_CAFE),
            gaze_model: GazeModel::default_for(dimensions),
        }
    }

    /// Returns the session with a different gaze model.
    pub fn with_gaze_model(mut self, gaze_model: GazeModel) -> SessionConfig {
        self.gaze_model = gaze_model;
        self
    }

    /// Returns the session with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SessionConfig {
        self.seed = seed;
        self
    }
}

/// What one session's stream produced, as observed by the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The session's id (its admission index).
    pub session: usize,
    /// The scene the session streamed.
    pub scene: SceneId,
    /// Shard the session was routed to.
    pub shard: usize,
    /// Frame/byte totals. `wall_seconds` is the session's own elapsed
    /// stream time — from its first frame's encode start to its last
    /// frame's encode end — so per-session `frames_per_second()` and
    /// `output_megabits_per_second()` are meaningful (and non-zero for any
    /// session that encoded at least one frame). Because sessions share a
    /// shard worker, the time includes waiting between the session's own
    /// frames; it measures delivered stream rate, not encoder occupancy.
    pub throughput: ThroughputReport,
    /// The session's eccentricity-map cache counters.
    pub cache: BatchCacheStats,
    /// Chained FNV-1a digest over every frame's encoded bitstream, in frame
    /// order — two runs produced bit-identical streams iff digests match.
    pub stream_digest: u64,
    /// The per-frame encoded bitstreams, kept only when
    /// [`crate::ServiceConfig::collect_payloads`] is set (tests, debugging).
    pub payloads: Option<Vec<Vec<u8>>>,
}

/// Seed value of the FNV-1a digest chain.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a digest.
pub(crate) fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sessions_cycle_scenes_and_disperse_seeds() {
        let dims = Dimensions::new(64, 64);
        let a = SessionConfig::synthetic(0, dims, 10);
        let b = SessionConfig::synthetic(1, dims, 10);
        let g = SessionConfig::synthetic(6, dims, 10);
        assert_eq!(a.scene, SceneId::Office);
        assert_eq!(b.scene, SceneId::Fortnite);
        assert_eq!(g.scene, a.scene, "index 6 wraps back to the first scene");
        assert_ne!(a.seed, g.seed, "same scene, different content");
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn builders_override_fields() {
        let dims = Dimensions::new(32, 32);
        let s = SessionConfig::synthetic(0, dims, 5)
            .with_seed(77)
            .with_gaze_model(GazeModel::pursuit(2.0));
        assert_eq!(s.seed, 77);
        assert_eq!(s.gaze_model, GazeModel::pursuit(2.0));
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        let d1 = fnv1a_update(fnv1a_update(FNV_OFFSET_BASIS, b"ab"), b"cd");
        let d2 = fnv1a_update(fnv1a_update(FNV_OFFSET_BASIS, b"cd"), b"ab");
        assert_ne!(d1, d2);
        // Known FNV-1a vector: empty input leaves the offset basis.
        assert_eq!(fnv1a_update(FNV_OFFSET_BASIS, b""), FNV_OFFSET_BASIS);
    }
}
