//! Synthesis of realistic per-headset gaze traces.
//!
//! The eccentricity-map cache inside [`pvc_core::BatchEncoder`] only pays
//! off when the gaze stream *repeats* samples the way real eye-tracking
//! data does: long fixations (the eyes hold one point for tens of frames,
//! and trackers re-send the identical sample) punctuated by ballistic
//! saccades to a new point. A uniformly random gaze per frame — the lazy
//! test input — would defeat the cache entirely and misrepresent serving
//! behaviour.
//!
//! [`GazeTrace::synthesize`] generates such streams deterministically from
//! a seed. Two models are provided:
//!
//! * [`GazeModel::FixationSaccade`] — alternating fixations (duration drawn
//!   uniformly from a configurable frame range) and saccades (amplitude
//!   drawn from an exponential distribution with configurable mean, capped,
//!   direction uniform). This is the cache-friendly common case.
//! * [`GazeModel::SmoothPursuit`] — the gaze tracks a moving target at
//!   constant speed, bouncing off the display edges. Every frame moves the
//!   gaze, which is the cache's worst case; an optional quantization snaps
//!   samples to a pixel grid, recovering hits at slow speeds the way a
//!   discretized tracker would.

use pvc_fovea::GazePoint;
use pvc_frame::Dimensions;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the fixation/saccade gaze model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixationSaccadeConfig {
    /// Shortest fixation, in frames (inclusive).
    pub min_fixation_frames: u32,
    /// Longest fixation, in frames (inclusive).
    pub max_fixation_frames: u32,
    /// Mean saccade amplitude in pixels (exponential distribution).
    pub mean_saccade_px: f64,
    /// Hard cap on the saccade amplitude in pixels.
    pub max_saccade_px: f64,
}

/// Parameters of the smooth-pursuit gaze model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoothPursuitConfig {
    /// Target speed in pixels per frame.
    pub speed_px_per_frame: f64,
    /// Snap samples to this grid pitch in pixels; `0` keeps the continuous
    /// positions (every sample distinct).
    pub quantize_px: f64,
}

/// How a session's gaze moves over its stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GazeModel {
    /// Fixations of configurable duration separated by saccades.
    FixationSaccade(FixationSaccadeConfig),
    /// Continuous tracking of a target moving at constant speed.
    SmoothPursuit(SmoothPursuitConfig),
}

impl GazeModel {
    /// A fixation/saccade model with plausible magnitudes for a display of
    /// the given size: fixations of 4–24 frames (~55–330 ms at 72 Hz) and
    /// saccades averaging a quarter of the display diagonal.
    pub fn default_for(dimensions: Dimensions) -> GazeModel {
        let diagonal = f64::from(dimensions.width).hypot(f64::from(dimensions.height));
        GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 4,
            max_fixation_frames: 24,
            mean_saccade_px: diagonal * 0.25,
            max_saccade_px: diagonal * 0.6,
        })
    }

    /// A smooth-pursuit model tracking at `speed_px_per_frame`, with
    /// samples quantized to whole pixels (so slow pursuit still produces
    /// repeated samples, like a discretized eye tracker).
    pub fn pursuit(speed_px_per_frame: f64) -> GazeModel {
        GazeModel::SmoothPursuit(SmoothPursuitConfig {
            speed_px_per_frame,
            quantize_px: 1.0,
        })
    }
}

/// A deterministic, frame-indexed stream of gaze samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GazeTrace {
    samples: Vec<GazePoint>,
}

impl GazeTrace {
    /// Synthesizes a trace of `frames` samples on a display of the given
    /// dimensions. The same `(model, dimensions, seed, frames)` always
    /// produces the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the model is misconfigured: a fixation range with
    /// `min > max` or `min == 0`, a non-positive mean or max saccade
    /// amplitude, a negative pursuit speed, or a negative quantization
    /// pitch.
    pub fn synthesize(
        model: &GazeModel,
        dimensions: Dimensions,
        seed: u64,
        frames: usize,
    ) -> GazeTrace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples = match model {
            GazeModel::FixationSaccade(config) => {
                fixation_saccade(config, dimensions, &mut rng, frames)
            }
            GazeModel::SmoothPursuit(config) => {
                smooth_pursuit(config, dimensions, &mut rng, frames)
            }
        };
        GazeTrace { samples }
    }

    /// Wraps externally produced samples (e.g. replayed tracker logs).
    pub fn from_samples(samples: Vec<GazePoint>) -> GazeTrace {
        GazeTrace { samples }
    }

    /// The gaze samples, one per frame.
    pub fn samples(&self) -> &[GazePoint] {
        &self.samples
    }

    /// Number of frames in the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of maximal runs of bit-identical consecutive samples — the
    /// number of fixations for a fixation/saccade trace, and an upper bound
    /// on the eccentricity-map cache misses a fresh session will take.
    pub fn fixation_count(&self) -> usize {
        let mut runs = 0;
        let mut previous: Option<GazePoint> = None;
        for &sample in &self.samples {
            if previous.map_or(true, |p| !same_bits(p, sample)) {
                runs += 1;
            }
            previous = Some(sample);
        }
        runs
    }

    /// Mean fixation duration in frames (0 for an empty trace).
    pub fn mean_fixation_frames(&self) -> f64 {
        let runs = self.fixation_count();
        if runs == 0 {
            return 0.0;
        }
        self.samples.len() as f64 / runs as f64
    }
}

fn same_bits(a: GazePoint, b: GazePoint) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

/// Uniform sample in `[0, 1)`.
fn unit<R: RngCore>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

fn fixation_saccade(
    config: &FixationSaccadeConfig,
    dimensions: Dimensions,
    rng: &mut ChaCha8Rng,
    frames: usize,
) -> Vec<GazePoint> {
    assert!(
        config.min_fixation_frames >= 1,
        "fixations must last at least one frame"
    );
    assert!(
        config.min_fixation_frames <= config.max_fixation_frames,
        "fixation frame range must satisfy min <= max"
    );
    assert!(
        config.mean_saccade_px > 0.0,
        "mean saccade amplitude must be positive"
    );
    assert!(
        config.max_saccade_px > 0.0,
        "max saccade amplitude must be positive"
    );
    let width = f64::from(dimensions.width);
    let height = f64::from(dimensions.height);
    let fixation_len = |rng: &mut ChaCha8Rng| -> u32 {
        let span = f64::from(config.max_fixation_frames - config.min_fixation_frames + 1);
        config.min_fixation_frames + (unit(rng) * span) as u32
    };

    let mut samples = Vec::with_capacity(frames);
    let mut current = GazePoint::new(unit(rng) * width, unit(rng) * height);
    let mut remaining = fixation_len(rng);
    while samples.len() < frames {
        if remaining == 0 {
            // Ballistic saccade: exponential amplitude, uniform direction.
            let amplitude =
                (-config.mean_saccade_px * (1.0 - unit(rng)).ln()).min(config.max_saccade_px);
            let angle = unit(rng) * std::f64::consts::TAU;
            current = GazePoint::new(
                (current.x + amplitude * angle.cos()).clamp(0.0, width),
                (current.y + amplitude * angle.sin()).clamp(0.0, height),
            );
            remaining = fixation_len(rng);
        }
        samples.push(current);
        remaining -= 1;
    }
    samples
}

fn smooth_pursuit(
    config: &SmoothPursuitConfig,
    dimensions: Dimensions,
    rng: &mut ChaCha8Rng,
    frames: usize,
) -> Vec<GazePoint> {
    assert!(
        config.speed_px_per_frame >= 0.0,
        "pursuit speed must be non-negative"
    );
    assert!(
        config.quantize_px >= 0.0,
        "quantization pitch must be non-negative"
    );
    let width = f64::from(dimensions.width);
    let height = f64::from(dimensions.height);
    let mut x = unit(rng) * width;
    let mut y = unit(rng) * height;
    let angle = unit(rng) * std::f64::consts::TAU;
    let mut dx = config.speed_px_per_frame * angle.cos();
    let mut dy = config.speed_px_per_frame * angle.sin();

    let quantize = |v: f64| {
        if config.quantize_px > 0.0 {
            (v / config.quantize_px).round() * config.quantize_px
        } else {
            v
        }
    };

    let mut samples = Vec::with_capacity(frames);
    for _ in 0..frames {
        samples.push(GazePoint::new(quantize(x), quantize(y)));
        x += dx;
        y += dy;
        // Reflect off the display edges so the target stays visible.
        if x < 0.0 || x > width {
            dx = -dx;
            x = x.clamp(0.0, width);
        }
        if y < 0.0 || y > height {
            dy = -dy;
            y = y.clamp(0.0, height);
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dimensions {
        Dimensions::new(256, 192)
    }

    fn fixation_model() -> GazeModel {
        GazeModel::default_for(dims())
    }

    #[test]
    fn same_seed_yields_the_same_trace() {
        let a = GazeTrace::synthesize(&fixation_model(), dims(), 42, 200);
        let b = GazeTrace::synthesize(&fixation_model(), dims(), 42, 200);
        assert_eq!(a, b);
        let c = GazeTrace::synthesize(&fixation_model(), dims(), 43, 200);
        assert_ne!(a, c, "different seeds should give different traces");
    }

    #[test]
    fn fixation_trace_repeats_samples_within_fixations() {
        let trace = GazeTrace::synthesize(&fixation_model(), dims(), 7, 300);
        assert_eq!(trace.len(), 300);
        let fixations = trace.fixation_count();
        assert!(
            fixations < trace.len() / 3,
            "fixations ({fixations}) should be far fewer than frames"
        );
        let mean = trace.mean_fixation_frames();
        assert!(
            (4.0..=25.0).contains(&mean),
            "mean fixation {mean} frames should fall inside the configured range"
        );
    }

    #[test]
    fn fixation_durations_respect_the_configured_range() {
        let model = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 5,
            max_fixation_frames: 5,
            mean_saccade_px: 40.0,
            max_saccade_px: 120.0,
        });
        let trace = GazeTrace::synthesize(&model, dims(), 3, 50);
        assert_eq!(trace.fixation_count(), 10, "50 frames / 5-frame fixations");
        assert!((trace.mean_fixation_frames() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_on_the_display() {
        for seed in 0..8 {
            let trace = GazeTrace::synthesize(&fixation_model(), dims(), seed, 400);
            for s in trace.samples() {
                assert!((0.0..=256.0).contains(&s.x), "x out of bounds: {}", s.x);
                assert!((0.0..=192.0).contains(&s.y), "y out of bounds: {}", s.y);
            }
        }
    }

    #[test]
    fn saccade_amplitude_is_capped() {
        let model = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 1,
            max_fixation_frames: 1,
            mean_saccade_px: 30.0,
            max_saccade_px: 35.0,
        });
        let trace = GazeTrace::synthesize(&model, dims(), 11, 200);
        for pair in trace.samples().windows(2) {
            let jump = (pair[1].x - pair[0].x).hypot(pair[1].y - pair[0].y);
            // Clamping to the display can only shorten a jump.
            assert!(jump <= 35.0 + 1e-9, "saccade of {jump}px exceeds the cap");
        }
    }

    #[test]
    fn smooth_pursuit_moves_continuously() {
        let model = GazeModel::SmoothPursuit(SmoothPursuitConfig {
            speed_px_per_frame: 3.0,
            quantize_px: 0.0,
        });
        let trace = GazeTrace::synthesize(&model, dims(), 9, 120);
        assert_eq!(
            trace.fixation_count(),
            120,
            "unquantized pursuit never repeats"
        );
        for pair in trace.samples().windows(2) {
            let step = (pair[1].x - pair[0].x).hypot(pair[1].y - pair[0].y);
            assert!(step <= 3.0 * 2.0 + 1e-9, "step {step} too large");
        }
    }

    #[test]
    fn quantized_slow_pursuit_produces_repeats() {
        let model = GazeModel::SmoothPursuit(SmoothPursuitConfig {
            speed_px_per_frame: 0.25,
            quantize_px: 4.0,
        });
        let trace = GazeTrace::synthesize(&model, dims(), 5, 200);
        assert!(
            trace.fixation_count() < trace.len() / 2,
            "4px quantization at 0.25px/frame must hold samples for many frames"
        );
        for s in trace.samples() {
            assert!((s.x / 4.0 - (s.x / 4.0).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_speed_pursuit_is_a_single_fixation() {
        let model = GazeModel::SmoothPursuit(SmoothPursuitConfig {
            speed_px_per_frame: 0.0,
            quantize_px: 0.0,
        });
        let trace = GazeTrace::synthesize(&model, dims(), 2, 60);
        assert_eq!(trace.fixation_count(), 1);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let trace = GazeTrace::synthesize(&fixation_model(), dims(), 1, 0);
        assert!(trace.is_empty());
        assert_eq!(trace.fixation_count(), 0);
        assert_eq!(trace.mean_fixation_frames(), 0.0);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_fixation_range_panics() {
        let model = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 9,
            max_fixation_frames: 3,
            mean_saccade_px: 10.0,
            max_saccade_px: 20.0,
        });
        let _ = GazeTrace::synthesize(&model, dims(), 0, 10);
    }

    #[test]
    #[should_panic(expected = "max saccade amplitude must be positive")]
    fn zero_max_saccade_panics() {
        let model = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 1,
            max_fixation_frames: 4,
            mean_saccade_px: 10.0,
            max_saccade_px: 0.0,
        });
        let _ = GazeTrace::synthesize(&model, dims(), 0, 10);
    }

    #[test]
    fn from_samples_roundtrips() {
        let samples = vec![GazePoint::new(1.0, 2.0), GazePoint::new(1.0, 2.0)];
        let trace = GazeTrace::from_samples(samples.clone());
        assert_eq!(trace.samples(), samples.as_slice());
        assert_eq!(trace.fixation_count(), 1);
    }
}
