//! The multi-session streaming service.
//!
//! [`StreamService`] models the serving side of the paper's encoder: many
//! headsets (sessions), each with its own scene, gaze trace and
//! [`BatchEncoder`] state, scheduled onto a fixed pool of shard workers.
//! Three properties drive the design:
//!
//! * **Stable routing.** A session is pinned to shard
//!   `session_id % shards` for its whole stream, so its eccentricity-map
//!   cache stays hot on one worker instead of being rebuilt wherever the
//!   next frame happens to land.
//! * **Bounded pipelining.** Within a shard, frame *production* (scene
//!   rendering) runs on a producer thread and frame *encoding* on the shard
//!   worker, connected by a [`pvc_parallel::bounded_queue`]. The queue
//!   depth caps rendered-but-unencoded frames (memory), and its stall
//!   counter is the backpressure signal: stalls mean encoding, not
//!   rendering, is the bottleneck.
//! * **Shard-count invariance.** Each session's frames are encoded in
//!   frame order by exactly one worker, from inputs derived only from the
//!   session's own config — so the encoded streams are bit-identical no
//!   matter how many shards the service runs with. Only wall-clock
//!   telemetry changes.

use crate::gaze::GazeTrace;
use crate::session::{fnv1a_update, SessionConfig, SessionReport, FNV_OFFSET_BASIS};
use pvc_color::SyntheticDiscriminationModel;
use pvc_core::{BatchCacheStats, BatchEncoder, EncoderConfig, DEFAULT_GAZE_CACHE_CAPACITY};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::{Dimensions, LinearFrame};
use pvc_metrics::{SampleSummary, ThroughputReport};
use pvc_parallel::{bounded_queue, shard_map};
use pvc_scenes::{SceneConfig, SceneRenderer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Salt mixed into a session's seed for gaze-trace synthesis, so scene
/// content and gaze randomness are decorrelated.
const GAZE_SEED_SALT: u64 = 0x6A7E_5EED_0BAD_CAFE;

/// Service-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of shard workers; sessions are routed by `id % shards`.
    pub shards: usize,
    /// Depth of each shard's render→encode queue (frames in flight).
    pub queue_depth: usize,
    /// Encoder configuration shared by every session.
    pub encoder: EncoderConfig,
    /// Eccentricity-map cache capacity of each session's encoder.
    pub gaze_cache_capacity: usize,
    /// Keep every frame's encoded bitstream in the session reports.
    /// Memory-hungry; meant for tests and debugging, not serving.
    pub collect_payloads: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            queue_depth: 4,
            encoder: EncoderConfig::default(),
            gaze_cache_capacity: DEFAULT_GAZE_CACHE_CAPACITY,
            collect_payloads: false,
        }
    }
}

impl ServiceConfig {
    /// Returns the configuration with a different shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        self.shards = shards;
        self
    }

    /// Returns the configuration with a different queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be non-zero");
        self.queue_depth = queue_depth;
        self
    }

    /// Returns the configuration with a different encoder configuration.
    pub fn with_encoder(mut self, encoder: EncoderConfig) -> Self {
        self.encoder = encoder;
        self
    }

    /// Returns the configuration with a different per-session gaze-cache
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_gaze_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        self.gaze_cache_capacity = capacity;
        self
    }

    /// Returns the configuration with payload collection switched on/off.
    pub fn with_collect_payloads(mut self, collect: bool) -> Self {
        self.collect_payloads = collect;
        self
    }
}

/// What one shard worker observed over a [`StreamService::run`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Sessions routed to this shard.
    pub sessions: usize,
    /// Frames this shard encoded.
    pub frames: u64,
    /// Seconds the worker spent inside the encoder.
    pub busy_seconds: f64,
    /// Wall-clock seconds from shard start to last frame.
    pub wall_seconds: f64,
    /// Times the producer blocked on a full queue (backpressure events).
    pub queue_stalls: u64,
}

impl ShardReport {
    /// Fraction of the shard's wall-clock spent encoding, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.busy_seconds / self.wall_seconds).clamp(0.0, 1.0)
    }
}

/// Everything a [`StreamService::run`] produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Per-session results, ordered by session id.
    pub sessions: Vec<SessionReport>,
    /// Per-shard telemetry, ordered by shard index.
    pub shards: Vec<ShardReport>,
    /// Service-wide totals; `wall_seconds` is the full run's elapsed time.
    pub totals: ThroughputReport,
}

impl ServiceReport {
    /// Eccentricity-map cache counters summed over every session.
    pub fn aggregate_cache(&self) -> BatchCacheStats {
        let mut total = BatchCacheStats::default();
        for session in &self.sessions {
            total.hits += session.cache.hits;
            total.misses += session.cache.misses;
            total.entries += session.cache.entries;
        }
        total
    }

    /// Mean/spread of per-shard utilization, or `None` with no shards.
    pub fn utilization_summary(&self) -> Option<SampleSummary> {
        if self.shards.is_empty() {
            return None;
        }
        let utilizations: Vec<f64> = self.shards.iter().map(ShardReport::utilization).collect();
        Some(SampleSummary::of(&utilizations))
    }
}

/// One frame travelling through a shard's render→encode queue.
struct FrameJob {
    /// Index into the shard's member list (not the global session id).
    local: usize,
    frame: LinearFrame,
    gaze: GazePoint,
}

/// A deterministic multi-session streaming service over the stream-mode
/// perceptual encoder. See the [crate docs](crate) for an end-to-end
/// example.
#[derive(Debug, Clone)]
pub struct StreamService {
    config: ServiceConfig,
    sessions: Vec<SessionConfig>,
}

impl StreamService {
    /// Creates an empty service.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero shards, queue depth or cache
    /// capacity (the builder methods already enforce this; the assert
    /// guards struct-literal configs).
    pub fn new(config: ServiceConfig) -> StreamService {
        assert!(config.shards > 0, "shard count must be non-zero");
        assert!(config.queue_depth > 0, "queue depth must be non-zero");
        assert!(
            config.gaze_cache_capacity > 0,
            "cache capacity must be non-zero"
        );
        StreamService {
            config,
            sessions: Vec::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The admitted sessions, in admission order.
    pub fn sessions(&self) -> &[SessionConfig] {
        &self.sessions
    }

    /// Admits a session and returns its id (= admission index).
    pub fn admit(&mut self, session: SessionConfig) -> usize {
        self.sessions.push(session);
        self.sessions.len() - 1
    }

    /// Admits `count` synthetic sessions (see [`SessionConfig::synthetic`])
    /// and returns the range of their ids.
    pub fn admit_synthetic(
        &mut self,
        count: usize,
        dimensions: Dimensions,
        frames: u32,
    ) -> std::ops::Range<usize> {
        let first = self.sessions.len();
        for index in first..first + count {
            self.sessions
                .push(SessionConfig::synthetic(index, dimensions, frames));
        }
        first..self.sessions.len()
    }

    /// The shard a session id is routed to.
    pub fn shard_of(&self, session: usize) -> usize {
        session % self.config.shards
    }

    /// Streams every admitted session to completion and reports.
    ///
    /// Per-session encoded output (payload bytes, digests, cache counters)
    /// depends only on the session configs and the encoder configuration —
    /// never on the shard count, queue depth or thread scheduling. Timing
    /// telemetry (utilization, wall seconds, stalls) is of course
    /// machine-dependent.
    pub fn run(&self) -> ServiceReport {
        let start = Instant::now();
        let outputs = shard_map(self.config.shards, |shard| self.run_shard(shard));
        let mut sessions = Vec::with_capacity(self.sessions.len());
        let mut shards = Vec::with_capacity(outputs.len());
        for (mut shard_sessions, shard_report) in outputs {
            sessions.append(&mut shard_sessions);
            shards.push(shard_report);
        }
        sessions.sort_by_key(|report| report.session);
        let mut totals = ThroughputReport::default();
        for session in &sessions {
            totals.merge(&session.throughput);
        }
        totals.wall_seconds = start.elapsed().as_secs_f64();
        ServiceReport {
            sessions,
            shards,
            totals,
        }
    }

    /// Runs one shard: a producer thread renders member sessions' frames
    /// round-robin into the bounded queue; the shard worker (this thread)
    /// drains it through each session's stream-mode [`BatchEncoder`].
    fn run_shard(&self, shard: usize) -> (Vec<SessionReport>, ShardReport) {
        let members: Vec<(usize, &SessionConfig)> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(id, _)| id % self.config.shards == shard)
            .collect();
        let mut shard_report = ShardReport {
            shard,
            sessions: members.len(),
            ..ShardReport::default()
        };
        if members.is_empty() {
            return (Vec::new(), shard_report);
        }
        let wall_start = Instant::now();

        // Deterministic per-session machinery, rebuilt from configs alone.
        let renderers: Vec<SceneRenderer> = members
            .iter()
            .map(|(_, cfg)| {
                SceneRenderer::new(
                    cfg.scene,
                    SceneConfig::new(cfg.dimensions).with_seed(cfg.seed),
                )
            })
            .collect();
        let traces: Vec<GazeTrace> = members
            .iter()
            .map(|(_, cfg)| {
                GazeTrace::synthesize(
                    &cfg.gaze_model,
                    cfg.dimensions,
                    cfg.seed ^ GAZE_SEED_SALT,
                    cfg.frames as usize,
                )
            })
            .collect();
        let mut encoders: Vec<BatchEncoder<SyntheticDiscriminationModel>> = members
            .iter()
            .map(|(_, cfg)| {
                BatchEncoder::new(
                    SyntheticDiscriminationModel::default(),
                    self.config.encoder.clone(),
                    DisplayGeometry::quest2_like(cfg.dimensions),
                )
                .with_cache_capacity(self.config.gaze_cache_capacity)
            })
            .collect();
        let mut reports: Vec<SessionReport> = members
            .iter()
            .map(|(id, cfg)| SessionReport {
                session: *id,
                scene: cfg.scene,
                shard,
                throughput: ThroughputReport::default(),
                cache: BatchCacheStats::default(),
                stream_digest: FNV_OFFSET_BASIS,
                payloads: self.config.collect_payloads.then(Vec::new),
            })
            .collect();

        let max_frames = members.iter().map(|(_, cfg)| cfg.frames).max().unwrap_or(0);
        let (tx, rx, stall_counter) = bounded_queue(self.config.queue_depth);
        let mut busy_seconds = 0.0f64;
        std::thread::scope(|scope| {
            let members = &members;
            let renderers = &renderers;
            let traces = &traces;
            scope.spawn(move || {
                // Frame-major round-robin: session A frame 0, B frame 0, …,
                // A frame 1 — fair interleaving with per-session frame order
                // preserved, which is all determinism needs.
                for t in 0..max_frames {
                    for (local, (_, cfg)) in members.iter().enumerate() {
                        if t >= cfg.frames {
                            continue;
                        }
                        let job = FrameJob {
                            local,
                            frame: renderers[local].render_linear(t),
                            gaze: traces[local].samples()[t as usize],
                        };
                        if tx.send(job).is_err() {
                            return; // worker gone (panic unwinding); stop producing
                        }
                    }
                }
            });
            for job in rx {
                let encode_start = Instant::now();
                let result = encoders[job.local].encode_frame_stream(&job.frame, job.gaze);
                let bitstream = result.encoded.to_bitstream();
                busy_seconds += encode_start.elapsed().as_secs_f64();
                let report = &mut reports[job.local];
                report.throughput.record_frame(
                    result.our_stats().uncompressed_bits / 8,
                    bitstream.len() as u64,
                );
                report.stream_digest = fnv1a_update(report.stream_digest, &bitstream);
                if let Some(payloads) = &mut report.payloads {
                    payloads.push(bitstream);
                }
            }
        });

        for (report, encoder) in reports.iter_mut().zip(&encoders) {
            report.cache = encoder.cache_stats();
        }
        shard_report.frames = reports.iter().map(|r| r.throughput.frames).sum();
        shard_report.busy_seconds = busy_seconds;
        shard_report.wall_seconds = wall_start.elapsed().as_secs_f64();
        shard_report.queue_stalls = stall_counter.stalls();
        (reports, shard_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaze::{FixationSaccadeConfig, GazeModel};

    fn tiny_dims() -> Dimensions {
        Dimensions::new(32, 32)
    }

    fn service_with(
        shards: usize,
        session_count: usize,
        frames: u32,
        collect: bool,
    ) -> StreamService {
        let mut service = StreamService::new(
            ServiceConfig::default()
                .with_shards(shards)
                .with_collect_payloads(collect),
        );
        service.admit_synthetic(session_count, tiny_dims(), frames);
        service
    }

    #[test]
    fn shard_count_does_not_change_encoded_streams() {
        let single = service_with(1, 5, 4, true).run();
        let sharded = service_with(3, 5, 4, true).run();
        assert_eq!(single.sessions.len(), 5);
        assert_eq!(sharded.sessions.len(), 5);
        for (a, b) in single.sessions.iter().zip(&sharded.sessions) {
            assert_eq!(a.session, b.session);
            assert_eq!(a.scene, b.scene);
            assert_eq!(a.stream_digest, b.stream_digest);
            assert_eq!(
                a.payloads, b.payloads,
                "session {} payloads differ",
                a.session
            );
            assert_eq!(a.cache, b.cache);
            assert_eq!(a.throughput.frames, b.throughput.frames);
            assert_eq!(a.throughput.bytes_out, b.throughput.bytes_out);
        }
    }

    #[test]
    fn service_output_matches_a_hand_driven_batch_encoder() {
        let service = service_with(1, 1, 3, true);
        let report = service.run();
        let cfg = &service.sessions()[0];

        // Re-derive the stream exactly the way run_shard documents it.
        let renderer = SceneRenderer::new(
            cfg.scene,
            SceneConfig::new(cfg.dimensions).with_seed(cfg.seed),
        );
        let trace = GazeTrace::synthesize(
            &cfg.gaze_model,
            cfg.dimensions,
            cfg.seed ^ GAZE_SEED_SALT,
            cfg.frames as usize,
        );
        let mut encoder = BatchEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default(),
            DisplayGeometry::quest2_like(cfg.dimensions),
        );
        let mut digest = FNV_OFFSET_BASIS;
        let mut expected_payloads = Vec::new();
        for t in 0..cfg.frames {
            let frame = renderer.render_linear(t);
            let result = encoder.encode_frame_stream(&frame, trace.samples()[t as usize]);
            let bitstream = result.encoded.to_bitstream();
            digest = fnv1a_update(digest, &bitstream);
            expected_payloads.push(bitstream);
        }
        let session = &report.sessions[0];
        assert_eq!(session.stream_digest, digest);
        assert_eq!(
            session.payloads.as_deref(),
            Some(expected_payloads.as_slice())
        );
        assert_eq!(session.cache, encoder.cache_stats());
    }

    #[test]
    fn sessions_are_routed_to_stable_shards() {
        let service = service_with(2, 4, 2, false);
        let report = service.run();
        for session in &report.sessions {
            assert_eq!(session.shard, session.session % 2);
            assert_eq!(service.shard_of(session.session), session.shard);
        }
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].sessions, 2);
        assert_eq!(report.shards[1].sessions, 2);
        assert_eq!(report.shards[0].frames + report.shards[1].frames, 8);
    }

    #[test]
    fn totals_aggregate_every_session() {
        let report = service_with(2, 3, 2, false).run();
        assert_eq!(report.totals.frames, 6);
        assert_eq!(
            report.totals.bytes_out,
            report
                .sessions
                .iter()
                .map(|s| s.throughput.bytes_out)
                .sum::<u64>()
        );
        assert!(report.totals.wall_seconds > 0.0);
        assert!(report.totals.frames_per_second() > 0.0);
        let cache = report.aggregate_cache();
        assert_eq!(cache.hits + cache.misses, 6);
        let summary = report.utilization_summary().expect("two shards ran");
        assert!(summary.mean >= 0.0 && summary.mean <= 1.0);
    }

    #[test]
    fn fixation_heavy_gaze_keeps_the_cache_hot() {
        let mut service = StreamService::new(ServiceConfig::default());
        let pinned_fixation = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 5,
            max_fixation_frames: 5,
            mean_saccade_px: 10.0,
            max_saccade_px: 20.0,
        });
        service
            .admit(SessionConfig::synthetic(0, tiny_dims(), 20).with_gaze_model(pinned_fixation));
        let report = service.run();
        let cache = report.aggregate_cache();
        assert_eq!(cache.misses, 4, "20 frames / 5-frame fixations");
        assert_eq!(cache.hits, 16);
        assert!((cache.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_service_produces_an_empty_report() {
        let report = StreamService::new(ServiceConfig::default().with_shards(2)).run();
        assert!(report.sessions.is_empty());
        assert_eq!(report.totals.frames, 0);
        assert_eq!(report.aggregate_cache(), BatchCacheStats::default());
    }

    #[test]
    fn more_shards_than_sessions_is_fine() {
        let report = service_with(4, 2, 2, false).run();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.totals.frames, 4);
        let occupied: usize = report.shards.iter().map(|s| s.sessions).sum();
        assert_eq!(occupied, 2);
    }

    #[test]
    #[should_panic(expected = "shard count must be non-zero")]
    fn zero_shards_is_rejected() {
        let _ = StreamService::new(ServiceConfig {
            shards: 0,
            ..ServiceConfig::default()
        });
    }

    #[test]
    fn payloads_are_absent_unless_requested() {
        let report = service_with(1, 1, 2, false).run();
        assert!(report.sessions[0].payloads.is_none());
        assert_ne!(report.sessions[0].stream_digest, FNV_OFFSET_BASIS);
    }
}
