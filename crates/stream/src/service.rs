//! The batch-style front end of the streaming subsystem.
//!
//! [`StreamService`] models the simplest serving pattern: collect a roster
//! of sessions, stream all of them to completion, read the report. Since
//! the long-lived [`StreamRuntime`] landed, the
//! service is a thin wrapper over it — `run()` is exactly *start → admit
//! all → drain → shutdown* — so everything pinned against the batch API
//! (determinism across shard counts, cache behaviour, telemetry shapes)
//! holds verbatim for the runtime underneath.
//!
//! Three properties drive the design:
//!
//! * **Stable routing.** A session is placed on one shard at admission and
//!   stays there for its whole stream, so its eccentricity-map cache stays
//!   hot on one worker. `run()` uses the deterministic [`Static`] modulo
//!   policy (`session_id % shards`);
//!   [`run_with_placement`](StreamService::run_with_placement) accepts any
//!   [`Placement`].
//! * **Bounded pipelining.** Within a shard, frame *production* (scene
//!   rendering) runs on a producer thread and frame *encoding* on the shard
//!   worker, connected by a [`pvc_parallel::bounded_queue`]. The queue
//!   depth caps rendered-but-unencoded frames (memory), and its stall
//!   counter is the backpressure signal: stalls mean encoding, not
//!   rendering, is the bottleneck.
//! * **Placement invariance.** Each session's frames are encoded in frame
//!   order by exactly one worker, from inputs derived only from the
//!   session's own config — so the encoded streams are bit-identical no
//!   matter how many shards the service runs with or which placement
//!   policy routes them. Only wall-clock telemetry changes.

use crate::placement::{Placement, Static};
use crate::runtime::StreamRuntime;
use crate::session::{SessionConfig, SessionReport, WorkloadMix};
use pvc_core::{BatchCacheStats, EncoderConfig, DEFAULT_GAZE_CACHE_CAPACITY};
use pvc_frame::Dimensions;
use pvc_metrics::{
    ChurnCounters, ElasticityCounters, SampleSummary, ThroughputReport, TierAggregates,
};
use pvc_trace::TraceReport;
use serde::{Deserialize, Serialize};

/// Configuration of the runtime's per-thread tracing (see [`pvc_trace`]).
///
/// Tracing is structurally allocation-free on the hot path: every ring
/// and histogram table is pre-allocated when the shard threads spawn, so
/// enabling it changes no encoded bit and keeps the `alloc_regression`
/// pin green.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Capacity of each pipeline thread's event ring. When a thread
    /// records more events than this, the oldest scroll out (the
    /// histograms still count every span); [`TraceReport`] reports how
    /// many were dropped.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// Returns the configuration with a different per-thread ring
    /// capacity (0 keeps only histograms, no events).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of shard workers.
    pub shards: usize,
    /// Depth of each shard's render→encode queue (frames in flight).
    pub queue_depth: usize,
    /// Encoder configuration shared by every session.
    pub encoder: EncoderConfig,
    /// Eccentricity-map cache capacity of each session's encoder.
    pub gaze_cache_capacity: usize,
    /// Keep every frame's encoded bitstream in the session reports.
    /// Memory-hungry; meant for tests and debugging, not serving.
    pub collect_payloads: bool,
    /// Keep each session's framed wire stream (see [`crate::wire`]) in
    /// the session reports, for client-side decode. Memory use is the
    /// session's whole compressed stream; enable it when something
    /// actually consumes the bytes (link simulation, round-trip tests).
    pub collect_wire: bool,
    /// Per-stage tracing (event rings + latency histograms). `None`
    /// disables it entirely; `Some` pre-allocates every ring at shard
    /// spawn and attaches a [`TraceReport`] to the service report.
    pub trace: Option<TraceConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            queue_depth: 4,
            encoder: EncoderConfig::default(),
            gaze_cache_capacity: DEFAULT_GAZE_CACHE_CAPACITY,
            collect_payloads: false,
            collect_wire: false,
            trace: None,
        }
    }
}

impl ServiceConfig {
    /// Returns the configuration with a different shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        self.shards = shards;
        self
    }

    /// Returns the configuration with a different queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be non-zero");
        self.queue_depth = queue_depth;
        self
    }

    /// Returns the configuration with a different encoder configuration.
    pub fn with_encoder(mut self, encoder: EncoderConfig) -> Self {
        self.encoder = encoder;
        self
    }

    /// Returns the configuration with a different per-session gaze-cache
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_gaze_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        self.gaze_cache_capacity = capacity;
        self
    }

    /// Returns the configuration with payload collection switched on/off.
    pub fn with_collect_payloads(mut self, collect: bool) -> Self {
        self.collect_payloads = collect;
        self
    }

    /// Returns the configuration with wire-stream collection switched
    /// on/off.
    pub fn with_collect_wire(mut self, collect: bool) -> Self {
        self.collect_wire = collect;
        self
    }

    /// Returns the configuration with per-stage tracing enabled.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// What one shard worker observed over its lifetime (one
/// [`StreamService::run`] or one [`StreamRuntime`] start→shutdown).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Sessions placed on this shard over the run.
    pub sessions: usize,
    /// Frames this shard encoded.
    pub frames: u64,
    /// Pixels this shard encoded. Under heterogeneous session profiles
    /// this — not `frames` — is the comparable per-shard work measure: a
    /// Vision-class frame costs ~3.3× a Quest-2 frame.
    pub pixels: u64,
    /// Seconds the worker spent inside the encoder.
    pub busy_seconds: f64,
    /// Seconds the shard's producer spent rendering frames. Runs on its
    /// own thread, so it overlaps (rather than adds to) `busy_seconds` —
    /// the two answer "which side of the queue is the bottleneck".
    pub render_seconds: f64,
    /// Wall-clock seconds from shard start to worker exit.
    pub wall_seconds: f64,
    /// Times the producer blocked on a full queue (backpressure events).
    pub queue_stalls: u64,
    /// Frames ever enqueued on the shard's render→encode queue.
    pub queue_enqueued: u64,
    /// High-water mark of the queue's occupancy. A peak pinned at the
    /// configured depth means the producer spent time blocked.
    pub queue_peak_depth: usize,
}

impl ShardReport {
    /// Fraction of the shard's wall-clock spent encoding, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.busy_seconds / self.wall_seconds).clamp(0.0, 1.0)
    }

    /// Fraction of the shard's wall-clock its producer spent rendering,
    /// in `[0, 1]` — the render-side twin of [`Self::utilization`].
    pub fn render_utilization(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.render_seconds / self.wall_seconds).clamp(0.0, 1.0)
    }

    /// The shard's pixel throughput in megapixels per second (0 when no
    /// wall-clock elapsed).
    pub fn megapixels_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.pixels as f64 / 1e6 / self.wall_seconds
    }
}

/// Everything a service run (or runtime lifetime) produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Per-session results, ordered by session id. Sessions whose reports
    /// were already handed out by `StreamRuntime::retire` are not
    /// repeated here; `totals` and `churn` still cover them.
    pub sessions: Vec<SessionReport>,
    /// Per-shard telemetry, ordered by shard index.
    pub shards: Vec<ShardReport>,
    /// Service-wide totals; `wall_seconds` is the full run's elapsed time.
    pub totals: ThroughputReport,
    /// Session admission/retirement/completion counters.
    pub churn: ChurnCounters,
    /// What the elastic control plane did over the run: tier sheds,
    /// migrations and shard spawns/drains counted by the runtime, plus —
    /// when the run was driven through `ElasticController` — the
    /// admission-side rejected/queued counts it merges in at shutdown.
    /// All-zero (see [`ElasticityCounters::is_passive`]) for a plain
    /// batch run.
    pub elasticity: ElasticityCounters,
    /// Per-thread trace (events + stage histograms) when the run was
    /// configured with [`ServiceConfig::with_trace`]. Wall-clock
    /// telemetry, machine- and timing-dependent by nature, and skipped by
    /// serde — the JSON-facing digest lives in the bench layer's `trace`
    /// section instead.
    #[serde(skip)]
    pub trace: Option<TraceReport>,
}

impl ServiceReport {
    /// Eccentricity-map cache counters summed over the sessions in this
    /// report. Sessions whose reports were handed out by
    /// `StreamRuntime::retire` are not represented — sum their reports'
    /// `cache` counters separately if a fleet-wide rate is needed.
    pub fn aggregate_cache(&self) -> BatchCacheStats {
        let mut total = BatchCacheStats::default();
        for session in &self.sessions {
            total.hits += session.cache.hits;
            total.misses += session.cache.misses;
            total.entries += session.cache.entries;
        }
        total
    }

    /// Mean/spread of per-shard utilization over the shards that actually
    /// served sessions, or `None` when no shard did.
    ///
    /// Shards that never received a session idle at utilization 0.0 by
    /// construction; including them would drag the mean down whenever
    /// `shards > sessions` and misreport how busy the serving shards were.
    pub fn utilization_summary(&self) -> Option<SampleSummary> {
        self.serving_shard_summary(ShardReport::utilization)
    }

    /// Mean/spread of per-shard **pixel throughput** (megapixels per
    /// second) over the shards that actually served sessions, or `None`
    /// when no shard did.
    ///
    /// This is the spread that stays meaningful when session profiles are
    /// heterogeneous: two shards can run at the same *utilization* while
    /// one pushes several times the pixels of the other. A placement
    /// policy balancing pixel cost should narrow this spread; one
    /// balancing session counts need not.
    pub fn pixel_throughput_summary(&self) -> Option<SampleSummary> {
        self.serving_shard_summary(ShardReport::megapixels_per_second)
    }

    /// Summarizes `metric` over the shards that served at least one
    /// session (idle shards sit at 0 by construction and would drag any
    /// mean down whenever `shards > sessions`).
    fn serving_shard_summary(&self, metric: impl Fn(&ShardReport) -> f64) -> Option<SampleSummary> {
        let values: Vec<f64> = self
            .shards
            .iter()
            .filter(|shard| shard.sessions > 0)
            .map(metric)
            .collect();
        if values.is_empty() {
            return None;
        }
        Some(SampleSummary::of(&values))
    }

    /// Per-tier totals over the sessions in this report, grouped by
    /// [`ResolutionTier::name`](crate::ResolutionTier::name). Sessions
    /// whose reports were handed out by `StreamRuntime::retire` /
    /// `retire_now` are not represented — record their reports into a
    /// [`TierAggregates`] of your own for fleet-wide tables (the
    /// `session_churn` binary does exactly that).
    pub fn tier_summary(&self) -> TierAggregates {
        let mut tiers = TierAggregates::new();
        for session in &self.sessions {
            tiers.record(session.tier.name(), session.cancelled, &session.throughput);
        }
        tiers
    }
}

/// A deterministic multi-session streaming service over the stream-mode
/// perceptual encoder: the run-to-completion front end of
/// [`StreamRuntime`]. See the [crate docs](crate) for an end-to-end
/// example.
#[derive(Debug, Clone)]
pub struct StreamService {
    config: ServiceConfig,
    sessions: Vec<SessionConfig>,
}

impl StreamService {
    /// Creates an empty service.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero shards, queue depth or cache
    /// capacity (the builder methods already enforce this; the assert
    /// guards struct-literal configs).
    pub fn new(config: ServiceConfig) -> StreamService {
        assert!(config.shards > 0, "shard count must be non-zero");
        assert!(config.queue_depth > 0, "queue depth must be non-zero");
        assert!(
            config.gaze_cache_capacity > 0,
            "cache capacity must be non-zero"
        );
        StreamService {
            config,
            sessions: Vec::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The admitted sessions, in admission order.
    pub fn sessions(&self) -> &[SessionConfig] {
        &self.sessions
    }

    /// Admits a session and returns its id (= admission index).
    pub fn admit(&mut self, session: SessionConfig) -> usize {
        self.sessions.push(session);
        self.sessions.len() - 1
    }

    /// Admits `count` synthetic sessions (see [`SessionConfig::synthetic`])
    /// and returns the range of their ids.
    pub fn admit_synthetic(
        &mut self,
        count: usize,
        dimensions: Dimensions,
        frames: u32,
    ) -> std::ops::Range<usize> {
        let first = self.sessions.len();
        for index in first..first + count {
            self.sessions
                .push(SessionConfig::synthetic(index, dimensions, frames));
        }
        first..self.sessions.len()
    }

    /// Admits `count` synthetic sessions drawn from a heterogeneous
    /// [`WorkloadMix`] (see [`SessionConfig::synthetic_mixed`]) and
    /// returns the range of their ids. `dimensions`/`frames` are the
    /// Quest-2-equivalent base render size and 72 Hz-equivalent frame
    /// budget each tier scales from.
    pub fn admit_mixed(
        &mut self,
        count: usize,
        mix: WorkloadMix,
        dimensions: Dimensions,
        frames: u32,
    ) -> std::ops::Range<usize> {
        let first = self.sessions.len();
        for index in first..first + count {
            self.sessions.push(SessionConfig::synthetic_mixed(
                index, mix, dimensions, frames,
            ));
        }
        first..self.sessions.len()
    }

    /// The shard a session id lands on under the default [`Static`]
    /// placement used by [`run`](Self::run).
    pub fn shard_of(&self, session: usize) -> usize {
        session % self.config.shards
    }

    /// Streams every admitted session to completion and reports, routing
    /// sessions with the deterministic [`Static`] modulo placement.
    ///
    /// Per-session encoded output (payload bytes, digests, cache counters)
    /// depends only on the session configs and the encoder configuration —
    /// never on the shard count, queue depth or thread scheduling. Timing
    /// telemetry (utilization, wall seconds, stalls) is of course
    /// machine-dependent.
    pub fn run(&self) -> ServiceReport {
        self.run_with_placement(Box::new(Static))
    }

    /// [`run`](Self::run) with an explicit placement policy.
    ///
    /// The thin wrapper over the long-lived runtime: start, admit every
    /// session, drain, shut down. Encoded output is identical under every
    /// policy; only load distribution (and thus timing telemetry) moves.
    pub fn run_with_placement(&self, placement: Box<dyn Placement>) -> ServiceReport {
        let mut runtime = StreamRuntime::start(self.config.clone(), placement);
        for session in &self.sessions {
            runtime.admit(session.clone());
        }
        runtime.drain();
        runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaze::{FixationSaccadeConfig, GazeModel, GazeTrace};
    use crate::placement::PowerOfTwoChoices;
    use crate::session::{fnv1a_update, FNV_OFFSET_BASIS, GAZE_SEED_SALT};
    use pvc_color::SyntheticDiscriminationModel;
    use pvc_core::BatchEncoder;
    use pvc_fovea::DisplayGeometry;
    use pvc_scenes::{SceneConfig, SceneRenderer};

    fn tiny_dims() -> Dimensions {
        Dimensions::new(32, 32)
    }

    fn service_with(
        shards: usize,
        session_count: usize,
        frames: u32,
        collect: bool,
    ) -> StreamService {
        let mut service = StreamService::new(
            ServiceConfig::default()
                .with_shards(shards)
                .with_collect_payloads(collect),
        );
        service.admit_synthetic(session_count, tiny_dims(), frames);
        service
    }

    #[test]
    fn shard_count_does_not_change_encoded_streams() {
        let single = service_with(1, 5, 4, true).run();
        let sharded = service_with(3, 5, 4, true).run();
        assert_eq!(single.sessions.len(), 5);
        assert_eq!(sharded.sessions.len(), 5);
        for (a, b) in single.sessions.iter().zip(&sharded.sessions) {
            assert_eq!(a.session, b.session);
            assert_eq!(a.scene, b.scene);
            assert_eq!(a.stream_digest, b.stream_digest);
            assert_eq!(
                a.payloads, b.payloads,
                "session {} payloads differ",
                a.session
            );
            assert_eq!(a.cache, b.cache);
            assert_eq!(a.throughput.frames, b.throughput.frames);
            assert_eq!(a.throughput.bytes_out, b.throughput.bytes_out);
        }
    }

    #[test]
    fn tracing_does_not_change_encoded_streams() {
        use crate::session::WorkloadMix;
        use pvc_trace::Stage;

        let build = |trace: bool| {
            let mut config = ServiceConfig::default()
                .with_shards(2)
                .with_collect_payloads(true);
            if trace {
                config = config.with_trace(TraceConfig::default());
            }
            let mut service = StreamService::new(config);
            service.admit_mixed(4, WorkloadMix::Bimodal, tiny_dims(), 2);
            service.run()
        };
        let plain = build(false);
        let traced = build(true);

        assert!(plain.trace.is_none());
        for (a, b) in plain.sessions.iter().zip(&traced.sessions) {
            assert_eq!(a.stream_digest, b.stream_digest);
            assert_eq!(a.payloads, b.payloads, "session {}", a.session);
        }

        let trace = traced.trace.as_ref().expect("tracing was configured");
        // 2 shards × (producer + worker) + the control lane.
        assert_eq!(trace.threads.len(), 5);
        assert_eq!(trace.dropped_events(), 0, "default ring fits this run");
        let frames: u64 = traced.sessions.iter().map(|s| s.throughput.frames).sum();
        for stage in [
            Stage::Render,
            Stage::QueueWait,
            Stage::Adjust,
            Stage::Gamma,
            Stage::BdEncode,
            Stage::WireEmit,
        ] {
            assert_eq!(
                trace.stage_histogram(stage).count(),
                frames,
                "stage {} must cover every frame",
                stage.name()
            );
        }
        // The bimodal mix spans two tier classes; per-tier tables see it.
        let per_class: Vec<u64> = (0..pvc_trace::TIER_CLASS_COUNT as u8)
            .map(|class| trace.class_stage_histogram(class, Stage::BdEncode).count())
            .collect();
        assert_eq!(per_class.iter().sum::<u64>(), frames);
        assert!(
            per_class.iter().filter(|&&count| count > 0).count() >= 2,
            "bimodal mix must populate at least two tier classes: {per_class:?}"
        );
        // Control lane carries one admit marker per admission.
        let control = trace
            .threads
            .iter()
            .find(|thread| thread.lane == pvc_trace::Lane::Control)
            .expect("control lane present");
        assert_eq!(control.events.len(), 4);
    }

    #[test]
    fn placement_policy_does_not_change_encoded_streams() {
        let static_run = service_with(3, 5, 4, true).run();
        let p2c_run =
            service_with(3, 5, 4, true).run_with_placement(Box::new(PowerOfTwoChoices::default()));
        for (a, b) in static_run.sessions.iter().zip(&p2c_run.sessions) {
            assert_eq!(a.session, b.session);
            assert_eq!(a.stream_digest, b.stream_digest);
            assert_eq!(a.payloads, b.payloads);
            assert_eq!(a.cache, b.cache);
        }
    }

    #[test]
    fn service_output_matches_a_hand_driven_batch_encoder() {
        let service = service_with(1, 1, 3, true);
        let report = service.run();
        let cfg = &service.sessions()[0];

        // Re-derive the stream exactly the way the shard pipeline
        // documents it.
        let renderer = SceneRenderer::new(
            cfg.scene,
            SceneConfig::new(cfg.dimensions()).with_seed(cfg.seed),
        );
        let trace = GazeTrace::synthesize(
            &cfg.gaze_model(),
            cfg.dimensions(),
            cfg.seed ^ GAZE_SEED_SALT,
            cfg.frames() as usize,
        );
        let mut encoder = BatchEncoder::new(
            SyntheticDiscriminationModel::default(),
            EncoderConfig::default(),
            DisplayGeometry::quest2_like(cfg.dimensions()),
        );
        let mut digest = FNV_OFFSET_BASIS;
        let mut expected_payloads = Vec::new();
        let mut expected_bytes_in = 0u64;
        for t in 0..cfg.frames() {
            let frame = renderer.render_linear(t);
            let result = encoder.encode_frame_stream(&frame, trace.samples()[t as usize]);
            let bitstream = result.encoded.to_bitstream();
            digest = fnv1a_update(digest, &bitstream);
            expected_payloads.push(bitstream);
            // Input accounting must round partial bytes *up*.
            expected_bytes_in += result.our_stats().uncompressed_bits.div_ceil(8);
        }
        let session = &report.sessions[0];
        assert_eq!(session.stream_digest, digest);
        assert_eq!(
            session.payloads.as_deref(),
            Some(expected_payloads.as_slice())
        );
        assert_eq!(session.cache, encoder.cache_stats());
        assert_eq!(session.throughput.bytes_in, expected_bytes_in);
    }

    #[test]
    fn sessions_are_routed_to_stable_shards() {
        let service = service_with(2, 4, 2, false);
        let report = service.run();
        for session in &report.sessions {
            assert_eq!(session.shard, session.session % 2);
            assert_eq!(service.shard_of(session.session), session.shard);
        }
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].sessions, 2);
        assert_eq!(report.shards[1].sessions, 2);
        assert_eq!(report.shards[0].frames + report.shards[1].frames, 8);
    }

    #[test]
    fn totals_aggregate_every_session() {
        let report = service_with(2, 3, 2, false).run();
        assert_eq!(report.totals.frames, 6);
        assert_eq!(
            report.totals.bytes_out,
            report
                .sessions
                .iter()
                .map(|s| s.throughput.bytes_out)
                .sum::<u64>()
        );
        assert!(report.totals.wall_seconds > 0.0);
        assert!(report.totals.frames_per_second() > 0.0);
        let cache = report.aggregate_cache();
        assert_eq!(cache.hits + cache.misses, 6);
        let summary = report.utilization_summary().expect("two shards served");
        assert!(summary.mean >= 0.0 && summary.mean <= 1.0);
    }

    #[test]
    fn per_session_telemetry_is_nonzero() {
        // Regression: wall_seconds was never assigned per session, so
        // frames_per_second() and output_megabits_per_second() reported 0.
        let report = service_with(2, 3, 2, false).run();
        for session in &report.sessions {
            assert!(
                session.throughput.wall_seconds > 0.0,
                "session {} has zero wall-clock",
                session.session
            );
            assert!(session.throughput.frames_per_second() > 0.0);
            assert!(session.throughput.output_megabits_per_second() > 0.0);
        }
    }

    #[test]
    fn run_reports_churn_counters() {
        let report = service_with(2, 3, 2, false).run();
        assert_eq!(report.churn.admitted, 3);
        assert_eq!(report.churn.completed, 3);
        assert_eq!(report.churn.retired, 0, "run() never retires individually");
        assert_eq!(report.churn.cancelled, 0, "run() never hard-cancels");
        assert!(report.churn.peak_concurrent >= 1);
        assert_eq!(report.churn.in_flight(), 0);
    }

    #[test]
    fn mixed_workloads_report_per_tier_and_pixel_telemetry() {
        use crate::session::{ResolutionTier, WorkloadMix};
        let mut service = StreamService::new(ServiceConfig::default().with_shards(2));
        service.admit_mixed(4, WorkloadMix::Bimodal, tiny_dims(), 2);
        let report = service.run();
        assert_eq!(report.sessions.len(), 4);

        let tiers = report.tier_summary();
        assert_eq!(tiers.len(), 2, "bimodal spans two tiers");
        let quest2 = &tiers.entries()[0];
        assert_eq!(quest2.label, ResolutionTier::Quest2.name());
        assert_eq!(quest2.sessions, 2);
        assert_eq!(quest2.cancelled, 0);
        let vision = &tiers.entries()[1];
        assert_eq!(vision.label, ResolutionTier::VisionClass.name());
        assert_eq!(vision.sessions, 2);
        assert!(
            vision.throughput.pixels > 3 * quest2.throughput.pixels,
            "per-tier pixel totals must reflect the cost gap"
        );

        // Per-shard pixel telemetry adds up and yields a spread summary.
        assert_eq!(
            report.shards.iter().map(|s| s.pixels).sum::<u64>(),
            report.totals.pixels
        );
        let summary = report
            .pixel_throughput_summary()
            .expect("both shards served");
        assert!(summary.mean > 0.0);
        assert!(summary.max >= summary.min);
    }

    #[test]
    fn fixation_heavy_gaze_keeps_the_cache_hot() {
        let mut service = StreamService::new(ServiceConfig::default());
        let pinned_fixation = GazeModel::FixationSaccade(FixationSaccadeConfig {
            min_fixation_frames: 5,
            max_fixation_frames: 5,
            mean_saccade_px: 10.0,
            max_saccade_px: 20.0,
        });
        service
            .admit(SessionConfig::synthetic(0, tiny_dims(), 20).with_gaze_model(pinned_fixation));
        let report = service.run();
        let cache = report.aggregate_cache();
        assert_eq!(cache.misses, 4, "20 frames / 5-frame fixations");
        assert_eq!(cache.hits, 16);
        assert!((cache.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_service_produces_an_empty_report() {
        let report = StreamService::new(ServiceConfig::default().with_shards(2)).run();
        assert!(report.sessions.is_empty());
        assert_eq!(report.totals.frames, 0);
        assert_eq!(report.aggregate_cache(), BatchCacheStats::default());
        assert_eq!(
            report.utilization_summary(),
            None,
            "no shard served a session"
        );
    }

    #[test]
    fn more_shards_than_sessions_is_fine() {
        let report = service_with(4, 2, 2, false).run();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.totals.frames, 4);
        let occupied: usize = report.shards.iter().map(|s| s.sessions).sum();
        assert_eq!(occupied, 2);
        // Regression: idle shards (utilization 0.0 by construction) must
        // not be averaged into the summary. With static placement the two
        // sessions land on shards 0 and 1; shards 2 and 3 stay empty.
        let summary = report.utilization_summary().expect("two shards served");
        let served: Vec<f64> = report
            .shards
            .iter()
            .filter(|shard| shard.sessions > 0)
            .map(ShardReport::utilization)
            .collect();
        assert_eq!(served.len(), 2);
        assert_eq!(summary, SampleSummary::of(&served));
        assert!(
            summary.min >= report.shards[2].utilization(),
            "summary should not include the idle shards' zeros"
        );
    }

    #[test]
    #[should_panic(expected = "shard count must be non-zero")]
    fn zero_shards_is_rejected() {
        let _ = StreamService::new(ServiceConfig {
            shards: 0,
            ..ServiceConfig::default()
        });
    }

    #[test]
    fn payloads_are_absent_unless_requested() {
        let report = service_with(1, 1, 2, false).run();
        assert!(report.sessions[0].payloads.is_none());
        assert_ne!(report.sessions[0].stream_digest, FNV_OFFSET_BASIS);
    }
}
