//! The elastic control plane: admission gating, tier-shedding, shard
//! autoscaling, and rebalancing migration over a live [`StreamRuntime`].
//!
//! The runtime executes verbs (admit, retire, shed, migrate, spawn,
//! drain); this module decides *when* to issue them. An
//! [`ElasticController`] wraps a started runtime and exposes two entry
//! points:
//!
//! * [`ElasticController::submit`] — admission control. Every incoming
//!   [`SessionConfig`] is gated against the fleet-wide pixel budget
//!   ([`ElasticConfig::fleet_pixel_budget`], summed over all live
//!   sessions' per-frame pixel cost). Sessions that fit are admitted
//!   immediately; sessions that don't are queued FIFO up to
//!   [`ElasticConfig::queue_capacity`], and rejected beyond it (or when
//!   a single session could never fit the budget at all).
//! * [`ElasticController::tick`] — the periodic control loop. One tick
//!   promotes queued sessions as budget frees, sheds the most expensive
//!   downgradable session after [`ElasticConfig::shed_after_ticks`]
//!   consecutive overloaded ticks, scales the shard fleet on remaining-
//!   work hysteresis thresholds, and executes at most one rebalancing
//!   migration per tick via [`crate::placement::plan_migration`].
//!
//! Every decision reads only deterministic-commitment gauges (committed
//! and remaining pixels), never wall-clock rates, so a controller
//! trajectory is reproducible for a fixed submission order even though
//! the *encoded streams* are bit-identical regardless of what the
//! controller does — shedding and migration preserve the per-session
//! determinism contract (see [`crate::runtime`]'s determinism notes).
//!
//! # Examples
//!
//! ```
//! use pvc_frame::Dimensions;
//! use pvc_stream::{
//!     Admission, ElasticConfig, ElasticController, ServiceConfig, SessionConfig, StreamRuntime,
//! };
//!
//! // Budget: one 32×32 session's per-frame pixels. The second submission
//! // queues, the third (queue capacity 1) is rejected.
//! let runtime = StreamRuntime::start_static(ServiceConfig::default());
//! let elastic = ElasticConfig::new(32 * 32).with_queue_capacity(1);
//! let mut controller = ElasticController::new(runtime, elastic);
//!
//! let first = controller.submit(SessionConfig::synthetic(0, Dimensions::new(32, 32), 2));
//! assert!(matches!(first, Admission::Admitted(0)));
//! assert_eq!(
//!     controller.submit(SessionConfig::synthetic(1, Dimensions::new(32, 32), 2)),
//!     Admission::Queued
//! );
//! assert_eq!(
//!     controller.submit(SessionConfig::synthetic(2, Dimensions::new(32, 32), 2)),
//!     Admission::Rejected
//! );
//!
//! // Once the first stream finishes, a tick promotes the queued one.
//! controller.drain();
//! let actions = controller.tick();
//! assert_eq!(actions.admitted, vec![1]);
//!
//! controller.drain();
//! let report = controller.shutdown();
//! assert_eq!(report.churn.admitted, 2);
//! assert_eq!(report.elasticity.queued, 1);
//! assert_eq!(report.elasticity.rejected, 1);
//! ```

use crate::placement::plan_migration;
use crate::runtime::StreamRuntime;
use crate::service::{ServiceReport, ShardReport};
use crate::session::{SessionConfig, SessionProfile, SessionReport};
use pvc_metrics::ElasticityCounters;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Tuning knobs of the elastic control plane.
///
/// All thresholds are in *pixels* — per-frame committed pixels for the
/// admission budget, total remaining pixels for the autoscaler — so the
/// controller's decisions are pure functions of workload shape, not
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElasticConfig {
    /// Fleet-wide admission budget: the sum of live sessions' per-frame
    /// pixel costs may not exceed this.
    pub fleet_pixel_budget: u64,
    /// How many sessions may wait in the admission queue before further
    /// submissions are rejected outright.
    pub queue_capacity: usize,
    /// Spawn a shard when remaining work *per serving shard* exceeds
    /// this many pixels (up to [`Self::max_shards`]).
    pub scale_up: u64,
    /// Drain the coldest shard when remaining work per serving shard
    /// falls below this many pixels (down to [`Self::min_shards`]).
    /// Must be strictly below [`Self::scale_up`] — the gap is the
    /// hysteresis band that keeps the fleet from thrashing.
    pub scale_down: u64,
    /// The autoscaler never drains below this many shards.
    pub min_shards: usize,
    /// The autoscaler never spawns above this many shards.
    pub max_shards: usize,
    /// Shed a session's tier after this many *consecutive* overloaded
    /// ticks (ticks that end with the admission queue still non-empty).
    pub shed_after_ticks: u32,
}

impl ElasticConfig {
    /// A controller that only gates admissions: autoscaling thresholds
    /// that never fire, a queue of 8, shedding after 3 overloaded ticks.
    pub fn new(fleet_pixel_budget: u64) -> ElasticConfig {
        ElasticConfig {
            fleet_pixel_budget,
            queue_capacity: 8,
            scale_up: u64::MAX,
            scale_down: 0,
            min_shards: 1,
            max_shards: usize::MAX,
            shed_after_ticks: 3,
        }
    }

    /// Returns the config with a different admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ElasticConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Returns the config with autoscaling hysteresis thresholds
    /// (remaining pixels per serving shard).
    pub fn with_scale_thresholds(mut self, scale_up: u64, scale_down: u64) -> ElasticConfig {
        self.scale_up = scale_up;
        self.scale_down = scale_down;
        self
    }

    /// Returns the config with shard-count bounds for the autoscaler.
    pub fn with_shard_bounds(mut self, min_shards: usize, max_shards: usize) -> ElasticConfig {
        self.min_shards = min_shards;
        self.max_shards = max_shards;
        self
    }

    /// Returns the config with a different overload patience before a
    /// tier shed.
    pub fn with_shed_after_ticks(mut self, ticks: u32) -> ElasticConfig {
        self.shed_after_ticks = ticks;
        self
    }
}

/// The controller's verdict on one submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Admitted immediately; carries the session id the runtime assigned.
    Admitted(usize),
    /// The fleet is at budget: the session waits in the admission queue
    /// and will be promoted by a later [`ElasticController::tick`].
    Queued,
    /// Refused: the queue is full, or the session could never fit the
    /// fleet budget even alone.
    Rejected,
}

/// What one control tick actually did — the bench binaries log these as
/// the controller trajectory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickActions {
    /// Queued sessions promoted to the runtime this tick, in FIFO order.
    pub admitted: Vec<usize>,
    /// Session shed one resolution tier down, if any.
    pub shed: Option<usize>,
    /// Stable id of a shard spawned this tick, if any.
    pub spawned: Option<usize>,
    /// Stable id of a shard drained this tick, if any.
    pub drained: Option<usize>,
    /// A rebalancing migration `(session, from, to)`, if any.
    pub migrated: Option<(usize, usize, usize)>,
}

impl TickActions {
    /// True when the tick changed nothing.
    pub fn is_idle(&self) -> bool {
        self.admitted.is_empty()
            && self.shed.is_none()
            && self.spawned.is_none()
            && self.drained.is_none()
            && self.migrated.is_none()
    }
}

/// The elastic control plane over a started [`StreamRuntime`] — see the
/// [module docs](self) for the policy and an example.
#[derive(Debug)]
pub struct ElasticController {
    runtime: StreamRuntime,
    config: ElasticConfig,
    pending: VecDeque<SessionConfig>,
    /// Profiles of controller-submitted live sessions (pruned each tick);
    /// the shed policy picks its victim from these.
    sessions: BTreeMap<usize, SessionProfile>,
    /// Admission-side counters (rejected/queued); the runtime counts the
    /// verbs it executes itself, and [`Self::shutdown`] merges the two.
    counters: ElasticityCounters,
    overload_ticks: u32,
    /// The last rebalancing migration `(session, from, to)`. The load
    /// gauges transfer only when the destination worker applies the
    /// verb, so for a few ticks the planner sees a pre-migration
    /// snapshot and would undo the move it just made; refusing the
    /// exact reversal breaks that ping-pong.
    last_migration: Option<(usize, usize, usize)>,
}

impl ElasticController {
    /// Wraps a started runtime in the control plane.
    ///
    /// # Panics
    ///
    /// Panics when `config` is inconsistent: `scale_up <= scale_down`
    /// (no hysteresis band), `min_shards == 0`, or
    /// `max_shards < min_shards`.
    pub fn new(runtime: StreamRuntime, config: ElasticConfig) -> ElasticController {
        assert!(
            config.scale_up > config.scale_down,
            "scale_up must exceed scale_down: equal thresholds make the autoscaler thrash"
        );
        assert!(config.min_shards >= 1, "the fleet needs a serving shard");
        assert!(
            config.max_shards >= config.min_shards,
            "max_shards must be at least min_shards"
        );
        ElasticController {
            runtime,
            config,
            pending: VecDeque::new(),
            sessions: BTreeMap::new(),
            counters: ElasticityCounters::default(),
            overload_ticks: 0,
            last_migration: None,
        }
    }

    /// The wrapped runtime (for load/assignment introspection).
    pub fn runtime(&self) -> &StreamRuntime {
        &self.runtime
    }

    /// The wrapped runtime, mutably (e.g. to retire sessions directly).
    pub fn runtime_mut(&mut self) -> &mut StreamRuntime {
        &mut self.runtime
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ElasticConfig {
        &self.config
    }

    /// Number of sessions waiting in the admission queue.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Elasticity counters so far: the runtime's executed verbs merged
    /// with the controller's admission-side decisions.
    pub fn elasticity(&self) -> ElasticityCounters {
        let mut counters = self.runtime.elasticity();
        counters.merge(&self.counters);
        counters
    }

    /// Per-frame pixels currently committed across the fleet.
    pub fn committed_pixels(&self) -> u64 {
        self.runtime
            .shard_loads()
            .iter()
            .map(|load| load.session_pixels)
            .sum()
    }

    /// Gates one session against the fleet budget: admit, queue, or
    /// reject. Queued sessions keep FIFO order — a submission never
    /// jumps ahead of an earlier one already waiting.
    pub fn submit(&mut self, config: SessionConfig) -> Admission {
        let cost = config.pixel_cost();
        if cost > self.config.fleet_pixel_budget {
            self.counters.record_rejection();
            return Admission::Rejected;
        }
        if self.pending.is_empty()
            && self.committed_pixels() + cost <= self.config.fleet_pixel_budget
        {
            return Admission::Admitted(self.admit_now(config));
        }
        if self.pending.len() < self.config.queue_capacity {
            self.counters.record_queued();
            self.pending.push_back(config);
            return Admission::Queued;
        }
        self.counters.record_rejection();
        Admission::Rejected
    }

    /// One pass of the control loop; returns what it did. See the
    /// [module docs](self) for the step order (promote → shed →
    /// autoscale → rebalance).
    pub fn tick(&mut self) -> TickActions {
        let mut actions = TickActions::default();
        let live: BTreeSet<usize> = self.runtime.live_sessions().into_iter().collect();
        self.sessions.retain(|id, _| live.contains(id));

        // Promote queued sessions while the freed budget holds them.
        while let Some(front) = self.pending.front() {
            if self.committed_pixels() + front.pixel_cost() > self.config.fleet_pixel_budget {
                break;
            }
            let config = self.pending.pop_front().expect("front() just succeeded");
            actions.admitted.push(self.admit_now(config));
        }

        // Sustained overload sheds the most expensive downgradable
        // session one tier; its freed pixels let a later tick promote.
        if self.pending.is_empty() {
            self.overload_ticks = 0;
        } else {
            self.overload_ticks += 1;
            if self.overload_ticks >= self.config.shed_after_ticks {
                if let Some(victim) = self.shed_victim() {
                    let lower = self.sessions[&victim]
                        .downgraded()
                        .expect("shed_victim only picks downgradable sessions");
                    if self.runtime.shed(victim, lower) {
                        self.sessions.insert(victim, lower);
                        actions.shed = Some(victim);
                    }
                }
                self.overload_ticks = 0;
            }
        }

        // Autoscale on remaining work per serving shard, inside the
        // hysteresis band.
        let loads = self.runtime.shard_loads();
        let shards = loads.len().max(1);
        let remaining: u64 = loads.iter().map(|load| load.remaining_pixels).sum();
        let per_shard = remaining / shards as u64;
        if per_shard > self.config.scale_up && shards < self.config.max_shards {
            actions.spawned = Some(self.runtime.spawn_shard());
        } else if per_shard < self.config.scale_down && shards > self.config.min_shards {
            let coldest = loads
                .iter()
                .min_by_key(|load| (load.remaining_pixels, load.shard))
                .expect("a serving shard exists")
                .shard;
            self.runtime.drain_shard(coldest);
            actions.drained = Some(coldest);
        }

        // At most one rebalancing migration per tick keeps churn bounded.
        if let Some(plan) = plan_migration(&self.runtime.shard_loads()) {
            let mover = self
                .sessions
                .keys()
                .copied()
                .find(|id| self.runtime.assignment(*id) == Some(plan.from));
            if let Some(session) = mover {
                let reversal = self.last_migration == Some((session, plan.to, plan.from));
                if !reversal && self.runtime.migrate(session, plan.to) {
                    actions.migrated = Some((session, plan.from, plan.to));
                    self.last_migration = actions.migrated;
                }
            }
        }
        actions
    }

    /// Gracefully retires one session (see [`StreamRuntime::retire`]).
    pub fn retire(&mut self, session: usize) -> SessionReport {
        self.sessions.remove(&session);
        self.runtime.retire(session)
    }

    /// Hard-cancels one session (see [`StreamRuntime::retire_now`]).
    pub fn retire_now(&mut self, session: usize) -> SessionReport {
        self.sessions.remove(&session);
        self.runtime.retire_now(session)
    }

    /// Waits for every *admitted* session to finish (queued sessions
    /// stay queued; run [`Self::tick`] to promote them).
    pub fn drain(&mut self) {
        self.runtime.drain();
    }

    /// Drains a specific shard through the runtime (members migrate to
    /// the surviving shards first).
    pub fn drain_shard(&mut self, shard: usize) -> ShardReport {
        self.runtime.drain_shard(shard)
    }

    /// Shuts the fleet down and returns the final report, with the
    /// controller's admission-side counters merged into
    /// [`ServiceReport::elasticity`]. Sessions still waiting in the
    /// admission queue are discarded (they were never admitted, and
    /// stay counted under `queued`).
    pub fn shutdown(self) -> ServiceReport {
        let mut report = self.runtime.shutdown();
        report.elasticity.merge(&self.counters);
        report
    }

    fn admit_now(&mut self, config: SessionConfig) -> usize {
        let profile = config.profile;
        let id = self.runtime.admit(config);
        self.sessions.insert(id, profile);
        id
    }

    /// The most expensive live session that still has a lower tier to
    /// shed to (ties break toward the lowest session id).
    fn shed_victim(&self) -> Option<usize> {
        self.sessions
            .iter()
            .filter(|(_, profile)| profile.downgraded().is_some())
            .max_by_key(|(id, profile)| (profile.pixel_cost(), Reverse(**id)))
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::session::ResolutionTier;
    use pvc_frame::Dimensions;

    fn dims() -> Dimensions {
        Dimensions::new(32, 32)
    }

    fn controller(budget: u64) -> ElasticController {
        ElasticController::new(
            StreamRuntime::start_static(ServiceConfig::default()),
            ElasticConfig::new(budget),
        )
    }

    #[test]
    fn admission_gates_queue_and_reject_against_the_budget() {
        // Budget: exactly one 32×32 session.
        let mut controller = controller(32 * 32);
        assert_eq!(
            controller.submit(SessionConfig::synthetic(0, dims(), 2)),
            Admission::Admitted(0)
        );
        for queued in 0..controller.config().queue_capacity {
            assert_eq!(
                controller.submit(SessionConfig::synthetic(1 + queued, dims(), 2)),
                Admission::Queued
            );
        }
        assert_eq!(
            controller.submit(SessionConfig::synthetic(99, dims(), 2)),
            Admission::Rejected,
            "a full queue rejects"
        );
        assert_eq!(
            controller.submit(SessionConfig::synthetic(100, Dimensions::new(64, 64), 2)),
            Admission::Rejected,
            "a session over the whole budget can never fit"
        );
        let queued = controller.pending_len();
        // As streams finish, ticks promote the queue FIFO one budget
        // slot at a time.
        let mut promoted = Vec::new();
        while promoted.len() < queued {
            controller.drain();
            promoted.extend(controller.tick().admitted);
        }
        assert_eq!(promoted, (1..=queued).collect::<Vec<_>>());
        controller.drain();
        let report = controller.shutdown();
        assert_eq!(report.churn.admitted, 1 + queued as u64);
        assert_eq!(report.elasticity.queued, queued as u64);
        assert_eq!(report.elasticity.rejected, 2);
    }

    #[test]
    fn sustained_overload_sheds_the_most_expensive_tier() {
        let vision = SessionProfile::for_tier(ResolutionTier::VisionClass, dims(), 600);
        let vision_cost = vision.pixel_cost();
        let quest = SessionConfig::synthetic(1, dims(), 2);
        // Budget fits the Vision session alone, not the Quest-2 one too —
        // but fits both once the Vision session sheds a tier.
        let budget = vision_cost + quest.pixel_cost() - 1;
        assert!(vision.downgraded().unwrap().pixel_cost() + quest.pixel_cost() <= budget);
        let mut controller = ElasticController::new(
            StreamRuntime::start_static(ServiceConfig::default()),
            ElasticConfig::new(budget).with_shed_after_ticks(2),
        );
        let admitted =
            controller.submit(SessionConfig::synthetic(0, dims(), 600).with_profile(vision));
        assert_eq!(admitted, Admission::Admitted(0));
        assert_eq!(controller.submit(quest), Admission::Queued);

        assert!(controller.tick().is_idle(), "one overloaded tick: patience");
        let actions = controller.tick();
        assert_eq!(actions.shed, Some(0), "two overloaded ticks: shed");
        // The shed verb is asynchronous: the worker releases the victim's
        // committed pixels when the downgrade lands, and only then can a
        // tick promote the queued session.
        for _ in 0..1_000 {
            if controller.committed_pixels() < vision_cost {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let after = controller.tick();
        assert_eq!(after.admitted, vec![1], "freed pixels promote the queue");

        controller.drain();
        let report = controller.shutdown();
        assert_eq!(report.elasticity.shed, 1);
        assert_eq!(report.elasticity.queued, 1);
        let victim = &report.sessions[0];
        assert_eq!(victim.downgraded_from, Some(ResolutionTier::VisionClass));
    }

    #[test]
    fn autoscaler_spawns_under_load_and_drains_when_idle() {
        let mut controller = ElasticController::new(
            StreamRuntime::start_static(ServiceConfig::default()),
            ElasticConfig::new(u64::MAX)
                .with_scale_thresholds(32 * 32 * 100, 32 * 32)
                .with_shard_bounds(1, 2),
        );
        // Far more remaining work per shard than the scale-up threshold.
        assert_eq!(
            controller.submit(SessionConfig::synthetic(0, dims(), 100_000)),
            Admission::Admitted(0)
        );
        let actions = controller.tick();
        assert_eq!(actions.spawned, Some(1));
        assert_eq!(controller.runtime().shard_count(), 2);
        assert!(
            controller.tick().spawned.is_none(),
            "max_shards bounds the fleet"
        );
        // Cut the stream short: remaining work collapses below the
        // scale-down threshold, so the next tick drains a shard.
        let _ = controller.retire_now(0);
        let actions = controller.tick();
        assert!(actions.drained.is_some());
        assert_eq!(controller.runtime().shard_count(), 1);
        assert!(
            controller.tick().drained.is_none(),
            "min_shards keeps the last shard"
        );
        let report = controller.shutdown();
        assert_eq!(report.elasticity.shards_spawned, 1);
        assert_eq!(report.elasticity.shards_drained, 1);
    }

    #[test]
    fn tick_rebalances_a_skewed_fleet_by_migration() {
        let mut controller = ElasticController::new(
            StreamRuntime::start_static(ServiceConfig::default().with_shards(2)),
            ElasticConfig::new(u64::MAX),
        );
        // Static placement: ids 0 and 2 land on shard 0 with huge
        // remaining budgets; id 1 lands on shard 1 and finishes fast.
        assert_eq!(
            controller.submit(SessionConfig::synthetic(0, dims(), 100_000)),
            Admission::Admitted(0)
        );
        assert_eq!(
            controller.submit(SessionConfig::synthetic(1, dims(), 2)),
            Admission::Admitted(1)
        );
        assert_eq!(
            controller.submit(SessionConfig::synthetic(2, dims(), 100_000)),
            Admission::Admitted(2)
        );
        let actions = controller.tick();
        assert_eq!(
            actions.migrated,
            Some((0, 0, 1)),
            "the lowest-id session moves off the hot shard"
        );
        assert_eq!(controller.runtime().assignment(0), Some(1));
        let _ = controller.retire_now(0);
        let _ = controller.retire_now(2);
        controller.drain();
        let report = controller.shutdown();
        assert_eq!(report.elasticity.migrated, 1);
    }

    #[test]
    #[should_panic(expected = "scale_up must exceed scale_down")]
    fn inverted_hysteresis_band_panics() {
        let runtime = StreamRuntime::start_static(ServiceConfig::default());
        let _ = ElasticController::new(
            runtime,
            ElasticConfig::new(1_000).with_scale_thresholds(10, 10),
        );
    }
}
