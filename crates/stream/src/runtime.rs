//! The long-lived streaming runtime: persistent shard workers, dynamic
//! session churn, pluggable placement.
//!
//! [`StreamRuntime`] is the serving core the batch-style
//! [`crate::StreamService`] wraps. Where the batch service respawned its
//! shard threads per `run()` and streamed a fixed roster to completion,
//! the runtime spawns each shard's **producer** (scene rendering) and
//! **worker** (encoding) thread once at [`StreamRuntime::start`] and keeps
//! them alive until [`StreamRuntime::shutdown`]. In between, sessions are
//! [admitted](StreamRuntime::admit) and [retired](StreamRuntime::retire)
//! dynamically over per-shard control channels while other sessions'
//! frames are still in flight.
//!
//! # Threading model
//!
//! Per shard, two threads connected by a bounded frame queue
//! ([`pvc_parallel::bounded_queue`]):
//!
//! ```text
//!            control channel (admit / cancel / retier / migrate / resume)
//! runtime ──────────────────────────► producer thread
//!                                        │ render, round-robin
//!                                        ▼
//!                              bounded frame queue
//!                                        │ encode, in arrival order
//!                                        ▼
//! runtime ◄────────────────────────── worker thread
//!            event channel (session reports, shard report)
//! ```
//!
//! The producer owns each member session's renderer and gaze trace and
//! interleaves sessions frame-major (A0 B0 A1 B1 …); the worker owns each
//! member session's [`BatchEncoder`] and telemetry. A session's stream
//! travels `Open → Frame×n → Close` through the queue (`Cancel` replaces
//! `Close` when the session is hard-cancelled), so the worker learns about
//! sessions in the exact order the producer committed to.
//!
//! # Steady-state allocation
//!
//! The per-frame path is allocation-free once warm. Rendered frames
//! circulate in a small pool: the worker returns each encoded frame's
//! buffer to the producer on a *recycle channel*, and the producer renders
//! the next frame into it ([`pvc_scenes::SceneRenderer::render_linear_into`]).
//! The worker keeps one [`StreamScratch`] (tile adjustment buffers,
//! adjusted frame, bitstream writer) plus one bitstream buffer alive for
//! its whole lifetime and encodes every session's frames through it
//! ([`BatchEncoder::encode_frame_stream_into`]), so session churn — not
//! frame count — bounds the shard's allocations. None of this moves a
//! single encoded bit: the `alloc_regression` test in `pvc_core` pins the
//! zero-allocation property, the determinism tests here pin the bits.
//!
//! # Heterogeneous sessions
//!
//! Sessions need not look alike: each one carries its own
//! [`SessionProfile`] (resolution tier, render
//! size, frame budget, gaze model, optional tile size), and each shard
//! maintains **pixel gauges** next to its item counters — committed
//! session pixels and queued frame pixels — so cost-aware placement
//! (e.g. [`crate::LeastLoaded`]) can weigh a Vision-class session as the
//! ~3.3× load it actually is.
//!
//! # Retirement: graceful vs hard-cancel
//!
//! [`StreamRuntime::retire`] is graceful — the session finishes its frame
//! budget, so its stream is bit-identical to an uninterrupted run.
//! [`StreamRuntime::retire_now`] models a user yanking the headset: the
//! producer drops the session's not-yet-rendered frames and the final
//! report comes back partial, flagged `cancelled`. Frames already
//! rendered into the shard queue when the cancel lands are still encoded,
//! so the cancelled session's own frame count is timing-dependent — but
//! the *surviving* sessions' streams are not perturbed by a single bit
//! (pinned by `tests/cancel_determinism.rs`).
//!
//! # Elasticity
//!
//! The shard fleet is dynamic. [`StreamRuntime::spawn_shard`] adds a
//! shard mid-flight (stable, never-reused ids); [`StreamRuntime::drain_shard`]
//! migrates a shard's members off and winds its threads down;
//! [`StreamRuntime::migrate`] moves one live session between shards with
//! its digest/wire sinks carried mid-chain and its encoder rebuilt from
//! config on arrival; [`StreamRuntime::shed`] downgrades a live session's
//! resolution tier in place, re-deriving renderer, gaze trace and encoder
//! from the lower profile and stamping a tier-change record into the wire
//! stream. All four are counted in [`ElasticityCounters`] and marked on
//! the control trace lane. The policy loop that decides *when* to do any
//! of this lives one layer up, in [`crate::controller`].
//!
//! # Determinism
//!
//! A session's encoded stream is **bit-identical** regardless of shard
//! count, placement policy, admission order, retirement timing, queue
//! depth, or other sessions being hard-cancelled around it: it is encoded
//! in frame order by exactly one worker, by an encoder built only from
//! the session's own config. Placement and churn move *where* and *when*
//! that happens — never *what* is produced. Migration preserves this
//! (the whole stream stays bit-identical to the solo run), and a shed
//! session's post-downgrade stream is bit-identical to a solo run started
//! at the lower profile from the same frame index — both pinned by
//! `tests/migration_determinism.rs`. Only wall-clock telemetry is
//! machine- and timing-dependent, and only a hard-cancelled session's own
//! stream *length* is timing-dependent (a prefix of its solo stream).

use crate::gaze::GazeTrace;
use crate::placement::{Placement, ShardLoad, Static};
use crate::service::{ServiceConfig, ServiceReport, ShardReport};
use crate::session::{
    SessionConfig, SessionProfile, SessionReport, FNV_OFFSET_BASIS, GAZE_SEED_SALT,
};
use crate::wire::{DigestSink, FrameSink, WireSessionHeader, WireSink, WireTierChange};
use pvc_color::{LinearRgb, SyntheticDiscriminationModel};
use pvc_core::{BatchCacheStats, BatchEncoder, StreamScratch};
use pvc_fovea::{DisplayGeometry, GazePoint};
use pvc_frame::{Dimensions, LinearFrame};
use pvc_metrics::{ChurnCounters, ElasticityCounters, TemporalTotals, ThroughputReport};
use pvc_parallel::{
    bounded_queue, control_channel, BoundedReceiver, BoundedSender, ControlPoll, ControlReceiver,
    ControlSender, Gauge, QueueStats,
};
use pvc_scenes::{SceneConfig, SceneRenderer};
use pvc_trace::{Lane, Marker, Recorder, Stage, ThreadTrace, TraceEpoch, TraceReport, CLASS_OTHER};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the runtime's blocking event waits wake up to check shard
/// thread health. The runtime retains an event sender (so it can spawn
/// shards later), which means the channel never closes on its own — a
/// shard thread panicking is detected by polling
/// [`JoinHandle::is_finished`] on this cadence instead.
const EVENT_POLL: Duration = Duration::from_millis(25);

/// Commands the runtime sends to a shard's producer thread.
enum ShardControl {
    /// Take ownership of a session and start streaming its frames.
    Admit { id: usize, config: SessionConfig },
    /// Hard-cancel a member session: stop rendering its remaining frames
    /// and have the worker finalize a partial, `cancelled` report. A
    /// no-op if the session already finished its stream.
    Cancel { id: usize },
    /// Downgrade a member session to `profile` mid-stream (tier shed):
    /// the producer re-derives its renderer and gaze trace from the new
    /// profile and keeps streaming from the current frame index under the
    /// new numbering. A no-op if the session already finished.
    Retier { id: usize, profile: SessionProfile },
    /// Evict a member session so the runtime can move it to another
    /// shard: the producer stops rendering it and has the worker package
    /// the session's in-progress state into a [`SessionCarry`]. Answered
    /// with [`RuntimeEvent::Migrated`], or [`RuntimeEvent::MigrateRefused`]
    /// when the session is no longer a member (its stream completed).
    Migrate { id: usize },
    /// Adopt a session mid-stream on this shard, continuing exactly where
    /// the carry's `frames_done` says its previous shard stopped.
    Resume { id: usize, carry: Box<SessionCarry> },
    /// Finish every member session's remaining frames, then exit.
    Shutdown,
}

/// One message travelling through a shard's render→encode queue.
///
/// A session's lifetime on the queue is `Open`, then its frames in order,
/// then `Close` (or `Cancel` for a hard-cancelled session) — all emitted
/// by the single producer, so the worker sees them in exactly that order.
enum ShardJob {
    /// The worker should create the session's encoder and report.
    Open { id: usize, config: SessionConfig },
    /// One rendered frame to encode.
    Frame {
        id: usize,
        frame: LinearFrame,
        gaze: GazePoint,
        /// When the producer handed the frame to the queue; the worker's
        /// dequeue-minus-this is the queue-wait stage. Always stamped
        /// (one clock read) — timing never steers any encoded bit.
        enqueued: Instant,
    },
    /// The session's last frame has been sent; finalize its report.
    Close { id: usize },
    /// The session was hard-cancelled; finalize its partial report with
    /// the `cancelled` flag set. No further frames for the id follow.
    Cancel { id: usize },
    /// The session was downgraded to `config`'s profile. Travels through
    /// the queue *behind* every frame rendered under the old profile, so
    /// the worker rebuilds the encoder at exactly the right frame index
    /// and stamps a tier-change record into the wire stream there.
    Retier { id: usize, config: SessionConfig },
    /// The session is leaving this shard: package its in-progress state
    /// into a [`SessionCarry`] and hand it back to the runtime. `config`
    /// and `next` are the producer's authoritative session config (post
    /// any retier) and next-frame index.
    Migrate {
        id: usize,
        config: SessionConfig,
        next: u32,
    },
    /// The session is arriving on this shard mid-stream; rebuild its
    /// worker state from the carry. No further `Open` follows.
    Resume { id: usize, carry: Box<SessionCarry> },
}

/// A mid-stream session's portable state, packaged by the source shard's
/// worker on [`ShardJob::Migrate`] and rebuilt by the destination on
/// [`ShardJob::Resume`].
///
/// The encoder itself is *not* carried: it is rebuilt fresh from `config`
/// on the destination, which is bit-safe because the encoder's
/// eccentricity-map cache only ever changes where intermediates live —
/// never an emitted bit. What must survive the hop is everything
/// cumulative: the report (throughput, digests folded so far), the frame
/// sinks (digest chain state, collected wire bytes), and the cache/shard
/// accounting baselines.
struct SessionCarry {
    /// The session's config as of the migration (reflects any tier shed).
    config: SessionConfig,
    /// Frames fully rendered and encoded before the hop; the destination
    /// producer resumes at this index.
    frames_done: u32,
    /// The in-progress report (throughput counters, downgrade stamps).
    report: SessionReport,
    /// The digest sink mid-chain; folding continues seamlessly.
    digest: DigestSink,
    /// The wire sink mid-stream, when collection is on.
    wire: Option<WireSink>,
    /// Encode-start instant of the session's first frame (on any shard).
    first_frame: Option<Instant>,
    /// Cache counters accumulated by every *previous* encoder incarnation
    /// (retiers and earlier hops); the final report sums these with the
    /// last encoder's own stats.
    carried_cache: BatchCacheStats,
    /// Frames/pixels already attributed to previous shards' reports, so
    /// the finalizing shard only claims its own share.
    counted_frames: u64,
    counted_pixels: u64,
}

/// What shard threads report back to the runtime.
enum RuntimeEvent {
    /// A session's stream completed; here is its final report.
    SessionDone(SessionReport),
    /// A shard worker exited (after queue drain); here is its telemetry.
    ShardDone(ShardReport),
    /// A session's state left its source shard (response to
    /// [`ShardControl::Migrate`]); the runtime re-places it.
    Migrated { id: usize, carry: Box<SessionCarry> },
    /// The migration target session had already completed; its report
    /// arrives (or arrived) as a normal [`RuntimeEvent::SessionDone`].
    MigrateRefused { id: usize },
}

/// A session as the producer thread sees it: config plus the deterministic
/// render-side machinery rebuilt from it.
struct ProducerSession {
    id: usize,
    config: SessionConfig,
    renderer: SceneRenderer,
    trace: GazeTrace,
    /// Next frame index to render.
    next: u32,
    /// Whether `Open` (or `Resume`) has been sent ahead of the first frame.
    opened: bool,
    /// Carried state awaiting delivery to the worker: present between a
    /// [`ShardControl::Resume`] and the lazy [`ShardJob::Resume`] send.
    carry: Option<Box<SessionCarry>>,
}

impl ProducerSession {
    fn admit(id: usize, config: SessionConfig) -> ProducerSession {
        let renderer = SceneRenderer::new(
            config.scene,
            SceneConfig::new(config.dimensions()).with_seed(config.seed),
        );
        let trace = GazeTrace::synthesize(
            &config.gaze_model(),
            config.dimensions(),
            config.seed ^ GAZE_SEED_SALT,
            config.frames() as usize,
        );
        ProducerSession {
            id,
            config,
            renderer,
            trace,
            next: 0,
            opened: false,
            carry: None,
        }
    }

    /// Rebuilds the render side of a migrated session. The renderer and
    /// gaze trace are pure functions of the config, and
    /// `render_linear_into(t, ..)` depends only on `t` — so resuming at
    /// `frames_done` produces exactly the frames the solo run would have.
    fn resume(id: usize, carry: Box<SessionCarry>) -> ProducerSession {
        let mut session = ProducerSession::admit(id, carry.config.clone());
        session.next = carry.frames_done;
        session.carry = Some(carry);
        session
    }
}

/// Sends the session's first queue message (`Open` for a fresh session,
/// `Resume` for a migrated one) if it has not been sent yet. Every path
/// that enqueues anything for the session goes through this first, so the
/// worker always learns about a session before its frames/cancel/migrate.
///
/// Returns `Err` when the worker is gone (queue closed).
fn send_first(session: &mut ProducerSession, jobs: &BoundedSender<ShardJob>) -> Result<(), ()> {
    if session.opened {
        return Ok(());
    }
    session.opened = true;
    let job = match session.carry.take() {
        Some(carry) => ShardJob::Resume {
            id: session.id,
            carry,
        },
        None => ShardJob::Open {
            id: session.id,
            config: session.config.clone(),
        },
    };
    jobs.send(job).map_err(|_| ())
}

/// A session as the worker thread sees it: encoder plus telemetry plus
/// the sinks its encoded frames are emitted through.
struct WorkerSession {
    encoder: BatchEncoder<SyntheticDiscriminationModel>,
    report: SessionReport,
    /// The telemetry sink (digest chain, optional payload collection).
    digest: DigestSink,
    /// The serving sink (framed wire stream), when collection is on.
    wire: Option<WireSink>,
    /// The session's per-frame pixel cost, released from the shard's
    /// committed-pixels gauge when the session finalizes.
    frame_pixels: u64,
    /// Encode-start instant of the session's first frame; per-session
    /// wall-clock runs from here to the end of the last frame's encode.
    first_frame: Option<Instant>,
    /// The session tier's trace class (`ResolutionTier::class_index`),
    /// keying its spans into the per-tier stage tables.
    class: u8,
    /// Cache counters from previous encoder incarnations (tier sheds
    /// rebuild the encoder in place; migrations carry these across
    /// shards). Summed with the live encoder's stats at finalization.
    carried_cache: BatchCacheStats,
    /// Frames/pixels already attributed to previous shards' reports.
    counted_frames: u64,
    counted_pixels: u64,
}

/// Builds a session's encoder from the service config plus the session
/// profile's overrides, returning it with the effective tile size (which
/// the wire header / tier-change record reports). Called at open, resume
/// and retier — always from the session's *current* config, never from
/// carried state, so every incarnation is a pure function of the config.
fn encoder_for(
    service: &ServiceConfig,
    config: &SessionConfig,
) -> (BatchEncoder<SyntheticDiscriminationModel>, u32) {
    // The profile may override the service-wide tile size; everything
    // else about the encoder configuration is shared.
    let mut encoder_config = service.encoder.clone();
    if let Some(tile_size) = config.profile.tile_size {
        encoder_config = encoder_config.with_tile_size(tile_size);
    }
    let tile_size = encoder_config.tile_size;
    let encoder = BatchEncoder::new(
        SyntheticDiscriminationModel::default(),
        encoder_config,
        DisplayGeometry::quest2_like(config.dimensions()),
    )
    .with_cache_capacity(service.gaze_cache_capacity);
    (encoder, tile_size)
}

/// Sums cache counters across encoder incarnations (see
/// [`WorkerSession::carried_cache`]).
fn merge_cache(mut base: BatchCacheStats, current: BatchCacheStats) -> BatchCacheStats {
    base.hits += current.hits;
    base.misses += current.misses;
    base.entries += current.entries;
    base
}

impl WorkerSession {
    fn open(id: usize, shard: usize, service: &ServiceConfig, config: &SessionConfig) -> Self {
        let (encoder, tile_size) = encoder_for(service, config);
        let header = WireSessionHeader {
            session: id as u64,
            tier: config.profile.tier,
            width: config.dimensions().width,
            height: config.dimensions().height,
            tile_size,
            frame_budget: config.frames(),
        };
        let mut session = WorkerSession {
            encoder,
            report: SessionReport {
                session: id,
                scene: config.scene,
                tier: config.profile.tier,
                shard,
                cancelled: false,
                throughput: ThroughputReport::default(),
                cache: BatchCacheStats::default(),
                temporal: TemporalTotals::default(),
                stream_digest: FNV_OFFSET_BASIS,
                payloads: None,
                wire_stream: None,
                downgraded_from: None,
                downgrade_frame: None,
            },
            digest: DigestSink::new(service.collect_payloads),
            wire: service.collect_wire.then(WireSink::new),
            frame_pixels: config.pixel_cost(),
            first_frame: None,
            class: config.profile.tier.class_index(),
            carried_cache: BatchCacheStats::default(),
            counted_frames: 0,
            counted_pixels: 0,
        };
        for sink in session.sinks() {
            sink.start(&header);
        }
        session
    }

    /// Rebuilds a migrated session's worker state from its carry: fresh
    /// encoder (bit-safe — the cache affects performance, never bits),
    /// carried-over report, sinks and accounting baselines. Emits no
    /// header: the source shard already wrote it, and the carried sinks
    /// hold it.
    fn resume(shard: usize, service: &ServiceConfig, carry: SessionCarry) -> Self {
        let SessionCarry {
            config,
            frames_done,
            mut report,
            digest,
            wire,
            first_frame,
            carried_cache,
            counted_frames,
            counted_pixels,
        } = carry;
        let (mut encoder, _tile_size) = encoder_for(service, &config);
        // Seed the temporal frame counter at the resume point. The fresh
        // encoder's reference history is empty, so the first post-hop frame
        // is an intra refresh regardless of the keyframe schedule — which
        // keeps the stream decodable and the keyframe schedule a pure
        // function of the absolute frame index, exactly like a solo run's.
        encoder.set_next_frame_index(frames_done);
        report.shard = shard;
        WorkerSession {
            encoder,
            report,
            digest,
            wire,
            frame_pixels: config.pixel_cost(),
            first_frame,
            class: config.profile.tier.class_index(),
            carried_cache,
            counted_frames,
            counted_pixels,
        }
    }

    /// The session's frame sinks: telemetry first, then (when enabled)
    /// the wire stream. Every encoded frame goes through each.
    fn sinks(&mut self) -> impl Iterator<Item = &mut dyn FrameSink> {
        std::iter::once(&mut self.digest as &mut dyn FrameSink)
            .chain(self.wire.iter_mut().map(|sink| sink as &mut dyn FrameSink))
    }
}

/// What a shard needs to participate in tracing, fixed at spawn time.
struct TracingSpec {
    epoch: TraceEpoch,
    ring_capacity: usize,
    /// Sealed [`ThreadTrace`]s travel back to the runtime on this channel.
    sender: mpsc::Sender<ThreadTrace>,
}

/// One pipeline thread's tracing kit: its pre-allocated recorder plus the
/// way home for the sealed trace. Created on the runtime thread (all
/// allocation up front), moved into the pipeline thread, sealed on exit.
struct ShardTracing {
    shard: usize,
    recorder: Recorder,
    out: mpsc::Sender<ThreadTrace>,
}

impl ShardTracing {
    fn new(shard: usize, spec: &TracingSpec) -> ShardTracing {
        ShardTracing {
            shard,
            recorder: Recorder::new(spec.epoch, spec.ring_capacity),
            out: spec.sender.clone(),
        }
    }

    /// Seals the recorder and ships the thread's trace to the runtime.
    fn finish(self, lane: Lane) {
        self.out
            .send(self.recorder.into_thread(self.shard, lane))
            .ok();
    }
}

/// The runtime's half of tracing: the shared epoch, the control-plane
/// recorder (admit/retire/cancel markers), and the channel the shard
/// threads return their sealed traces on.
struct RuntimeTracing {
    epoch: TraceEpoch,
    control: Recorder,
    collected: mpsc::Receiver<ThreadTrace>,
}

/// Where a migrating session should land: a caller-chosen shard, or
/// wherever the placement policy puts it once the carry (and with it the
/// session config) is back — used by [`StreamRuntime::drain_shard`], which
/// flags the draining shard in the loads it hands the policy.
#[derive(Clone, Copy)]
enum MigrateDest {
    Fixed(usize),
    Rebalance { draining: usize },
}

/// Display order of lanes within a shard's group in the final report.
fn lane_rank(lane: Lane) -> u8 {
    match lane {
        Lane::Producer => 0,
        Lane::Worker => 1,
        Lane::Control => 2,
        Lane::Client => 3,
    }
}

/// The runtime's handle onto one shard's thread pair.
struct ShardHandle {
    /// The shard's stable id: assigned at spawn, never reused. With
    /// dynamic spawn/drain the live handles are not necessarily
    /// contiguous, so placement and assignments speak in these ids, never
    /// in `Vec` positions.
    shard: usize,
    control: ControlSender<ShardControl>,
    queue: QueueStats,
    /// Sessions placed on the shard and not yet completed; incremented at
    /// admission (so back-to-back placements see each other) and
    /// decremented by the worker when a session finalizes.
    sessions: Arc<AtomicUsize>,
    /// Sum of the live sessions' per-frame pixel costs — the
    /// pixel-weighted twin of `sessions`, maintained on the same schedule
    /// (added at admission, released at finalization).
    session_pixels: Gauge,
    /// Pixels of rendered frames currently in the render→encode queue —
    /// the pixel-weighted twin of the queue's depth gauge.
    queued_pixels: Gauge,
    /// Pixels the shard is still *due to render*: `pixel_cost ×
    /// not-yet-rendered frames`, summed over members. Raised at admission
    /// (and on migration arrival), lowered by the producer per rendered
    /// frame and on cancel/retier/migrate — the predictive placement
    /// signal.
    remaining_pixels: Gauge,
    producer: JoinHandle<()>,
    worker: JoinHandle<()>,
}

/// A long-lived, shard-parallel streaming service with dynamic session
/// churn, heterogeneous session profiles and load-aware placement. See
/// the [module docs](self) for the threading model and determinism
/// argument.
///
/// # Examples
///
/// ```
/// use pvc_frame::Dimensions;
/// use pvc_stream::{PowerOfTwoChoices, ServiceConfig, SessionConfig, StreamRuntime};
///
/// let mut runtime = StreamRuntime::start(
///     ServiceConfig::default().with_shards(2),
///     Box::new(PowerOfTwoChoices::default()),
/// );
///
/// // Admit two sessions, retire the first mid-flight (blocks until its
/// // stream completes), admit a third while the second is still going.
/// let dims = Dimensions::new(32, 32);
/// let a = runtime.admit(SessionConfig::synthetic(0, dims, 4));
/// let b = runtime.admit(SessionConfig::synthetic(1, dims, 4));
/// let report_a = runtime.retire(a);
/// assert_eq!(report_a.throughput.frames, 4);
/// assert!(report_a.throughput.frames_per_second() > 0.0);
/// let c = runtime.admit(SessionConfig::synthetic(2, dims, 4));
/// assert_eq!(c, 2);
///
/// let report = runtime.shutdown();
/// assert_eq!(report.sessions.len(), 2, "session a's report was handed to retire()");
/// assert_eq!(report.churn.admitted, 3);
/// assert_eq!(report.churn.retired, 1);
/// assert_eq!(report.totals.frames, 12, "totals still cover the retired session");
/// # let _ = b;
/// ```
pub struct StreamRuntime {
    config: ServiceConfig,
    placement: Box<dyn Placement>,
    /// Live (serving) shards. Drained shards are removed; ids are stable
    /// and never reused, so positions here are *not* shard ids.
    shards: Vec<ShardHandle>,
    events: mpsc::Receiver<RuntimeEvent>,
    /// Retained so [`Self::spawn_shard`] can wire new shards into the
    /// same event channel. Consequence: the channel never closes by
    /// itself; blocking waits poll shard thread health instead.
    event_tx: mpsc::Sender<RuntimeEvent>,
    /// Retained alongside `event_tx` so dynamically spawned shards join
    /// the same trace epoch and collection channel.
    tracing_spec: Option<TracingSpec>,
    /// Final reports of completed sessions awaiting pickup, keyed by id.
    /// [`Self::retire`] removes and hands over the entry — a long-lived
    /// runtime must not accumulate reports (least of all collected
    /// payloads) for every session it ever served — so at shutdown this
    /// holds only the sessions nobody retired individually.
    completed: BTreeMap<usize, SessionReport>,
    /// Frame/byte totals over every session ever completed, merged as
    /// completions arrive so handing reports out in [`Self::retire`] does
    /// not lose them from the service-wide aggregate.
    totals: ThroughputReport,
    /// Shard telemetry, indexed by stable shard id (so it covers drained
    /// shards too); filled in as workers exit during drain or shutdown.
    shard_reports: Vec<Option<ShardReport>>,
    /// Which shard each admitted session was placed on (updated by
    /// migration).
    assignments: BTreeMap<usize, usize>,
    retired: BTreeSet<usize>,
    churn: ChurnCounters,
    /// What the elastic control plane did to this runtime: migrations and
    /// shard spawns/drains are counted here; admission-side counters
    /// (rejected/queued) belong to the policy layer driving the runtime.
    elasticity: ElasticityCounters,
    started: Instant,
    next_id: usize,
    /// The next stable shard id [`Self::spawn_shard`] will hand out; also
    /// the trace index of the control lane at shutdown.
    next_shard_index: usize,
    /// Present when the config enables tracing: the control-plane
    /// recorder plus the channel shard threads return sealed traces on.
    tracing: Option<RuntimeTracing>,
}

impl std::fmt::Debug for StreamRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamRuntime")
            .field("config", &self.config)
            .field("placement", &self.placement.name())
            .field("shards", &self.shards.len())
            .field("churn", &self.churn)
            .finish_non_exhaustive()
    }
}

impl StreamRuntime {
    /// Spawns the shard thread pairs and returns the running (idle)
    /// runtime. `placement` decides which shard each admitted session
    /// lands on.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero shards, queue depth or cache
    /// capacity.
    pub fn start(config: ServiceConfig, placement: Box<dyn Placement>) -> StreamRuntime {
        assert!(config.shards > 0, "shard count must be non-zero");
        assert!(config.queue_depth > 0, "queue depth must be non-zero");
        assert!(
            config.gaze_cache_capacity > 0,
            "cache capacity must be non-zero"
        );
        let (event_tx, events) = mpsc::channel();
        // All tracing storage (rings, stage tables) is allocated here,
        // before any pipeline thread runs a frame.
        let (spec, tracing) = match &config.trace {
            Some(trace) => {
                let epoch = TraceEpoch::now();
                let (trace_tx, trace_rx) = mpsc::channel();
                (
                    Some(TracingSpec {
                        epoch,
                        ring_capacity: trace.ring_capacity,
                        sender: trace_tx,
                    }),
                    Some(RuntimeTracing {
                        epoch,
                        control: Recorder::new(epoch, trace.ring_capacity),
                        collected: trace_rx,
                    }),
                )
            }
            None => (None, None),
        };
        let shards: Vec<ShardHandle> = (0..config.shards)
            .map(|shard| spawn_shard_threads(shard, &config, event_tx.clone(), spec.as_ref()))
            .collect();
        // The runtime keeps `event_tx` and `spec` alive so shards spawned
        // later join the same channels; shard-thread health is therefore
        // detected by join-handle polling, not channel closure.
        let shard_reports = vec![None; config.shards];
        let next_shard_index = config.shards;
        StreamRuntime {
            config,
            placement,
            shards,
            events,
            event_tx,
            tracing_spec: spec,
            completed: BTreeMap::new(),
            totals: ThroughputReport::default(),
            shard_reports,
            assignments: BTreeMap::new(),
            retired: BTreeSet::new(),
            churn: ChurnCounters::default(),
            elasticity: ElasticityCounters::default(),
            started: Instant::now(),
            next_id: 0,
            next_shard_index,
            tracing,
        }
    }

    /// [`Self::start`] with the deterministic [`Static`] modulo placement.
    pub fn start_static(config: ServiceConfig) -> StreamRuntime {
        StreamRuntime::start(config, Box::new(Static))
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The active placement policy's name.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Churn counters as of the runtime's latest bookkeeping. Completion
    /// events are absorbed lazily, so `completed` may trail the shard
    /// workers by a moment.
    pub fn churn(&self) -> ChurnCounters {
        self.churn
    }

    /// Live load snapshots for every *serving* shard, as placement would
    /// see them: item counters (sessions, queue depth), their
    /// pixel-weighted twins (committed session pixels, queued frame
    /// pixels), and the predictive remaining-work gauge. Entries carry
    /// stable shard ids — after a drain they need not be contiguous.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|handle| ShardLoad {
                shard: handle.shard,
                sessions: handle.sessions.load(Ordering::Relaxed),
                queue_depth: handle.queue.depth(),
                session_pixels: handle.session_pixels.get(),
                queued_pixels: handle.queued_pixels.get(),
                remaining_pixels: handle.remaining_pixels.get(),
                draining: false,
            })
            .collect()
    }

    /// The handle of a serving shard, by stable id.
    ///
    /// # Panics
    ///
    /// Panics if no serving shard has that id (never spawned, or drained).
    fn handle(&self, shard: usize) -> &ShardHandle {
        self.shards
            .iter()
            .find(|handle| handle.shard == shard)
            .unwrap_or_else(|| panic!("shard {shard} is unknown or drained"))
    }

    /// Elasticity counters (migrations, shard spawns/drains) as of the
    /// latest control action. Admission-side counters (rejections, queue
    /// waits, sheds requested) are the driving policy's to keep — see
    /// `ElasticController` — and are merged into the final report there.
    pub fn elasticity(&self) -> ElasticityCounters {
        self.elasticity
    }

    /// How many shards are currently serving.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Ids of sessions admitted and not yet completed, in id order.
    /// Completion events are absorbed first, so the answer is as fresh as
    /// the workers' reporting.
    pub fn live_sessions(&mut self) -> Vec<usize> {
        self.pump_events();
        self.assignments
            .keys()
            .filter(|id| !self.retired.contains(id) && !self.completed.contains_key(id))
            .copied()
            .collect()
    }

    /// The shard a session was placed on, or `None` for unknown ids.
    pub fn assignment(&self, session: usize) -> Option<usize> {
        self.assignments.get(&session).copied()
    }

    /// Admits a session: places it on a shard (via the placement policy's
    /// view of live shard loads) and hands it to that shard's producer.
    /// Returns the session id (admission index). Never blocks on frame
    /// backpressure — the control channel is unbounded.
    pub fn admit(&mut self, config: SessionConfig) -> usize {
        self.pump_events();
        let id = self.next_id;
        self.next_id += 1;
        let loads = self.shard_loads();
        let shard = self.placement.place(id, &config, &loads);
        let handle = self
            .shards
            .iter()
            .find(|handle| handle.shard == shard)
            .unwrap_or_else(|| panic!("placement chose unknown shard {shard}"));
        handle.sessions.fetch_add(1, Ordering::Relaxed);
        // Commit the pixel weight synchronously with the session count so
        // cost-aware placement sees back-to-back admissions too.
        handle.session_pixels.add(config.pixel_cost());
        handle
            .remaining_pixels
            .add(config.pixel_cost() * u64::from(config.frames()));
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::Admit, config.profile.tier.class_index(), id as u64);
        }
        handle
            .control
            .send(ShardControl::Admit { id, config })
            .expect("shard producer exited while the runtime is alive");
        self.assignments.insert(id, shard);
        self.churn.record_admission();
        id
    }

    /// Retires a session: blocks until its stream completes (it always
    /// finishes its configured frame budget — retirement is graceful, so
    /// the encoded stream stays bit-identical to an uninterrupted run) and
    /// returns its final report. Other sessions keep streaming throughout.
    ///
    /// The report is handed over, not copied: the runtime keeps only the
    /// session's contribution to [`ServiceReport::totals`] and the churn
    /// counters, so serving unbounded session churn does not accumulate
    /// per-session state (or collected payloads) until shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the id was never admitted or was already retired.
    pub fn retire(&mut self, session: usize) -> SessionReport {
        self.begin_retirement(session);
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::Retire, CLASS_OTHER, session as u64);
        }
        self.await_completion(session)
    }

    /// Hard-cancels a session: tells its shard to drop the session's
    /// not-yet-rendered frames, blocks until the partial report arrives,
    /// and returns it flagged [`cancelled`](SessionReport::cancelled).
    /// Other sessions keep streaming throughout, and their encoded
    /// streams are not perturbed by a single bit (pinned by
    /// `tests/cancel_determinism.rs`).
    ///
    /// The cancelled stream is a *prefix* of the session's uninterrupted
    /// stream: frames already rendered into the shard queue when the
    /// cancel lands are still encoded, so how long the prefix is depends
    /// on timing. A session that already finished its frame budget is
    /// returned complete, with `cancelled` false — cancelling it was a
    /// no-op.
    ///
    /// # Panics
    ///
    /// Panics if the id was never admitted or was already retired.
    pub fn retire_now(&mut self, session: usize) -> SessionReport {
        self.begin_retirement(session);
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::Cancel, CLASS_OTHER, session as u64);
        }
        let shard = self.assignments[&session];
        self.handle(shard)
            .control
            .send(ShardControl::Cancel { id: session })
            .expect("shard producer exited while the runtime is alive");
        self.await_completion(session)
    }

    /// Shared bookkeeping of [`Self::retire`] / [`Self::retire_now`]:
    /// validates the id, marks it retired, counts the retirement.
    fn begin_retirement(&mut self, session: usize) {
        assert!(
            self.assignments.contains_key(&session),
            "session {session} was never admitted"
        );
        assert!(
            self.retired.insert(session),
            "session {session} was already retired"
        );
        self.churn.record_retirement();
    }

    /// Blocks until the next event arrives, panicking if a serving shard
    /// thread exits in the meantime (before shutdown, that can only mean
    /// it panicked — the runtime holds an event sender, so the channel
    /// itself never closes).
    fn recv_event(&mut self) -> RuntimeEvent {
        loop {
            match self.events.recv_timeout(EVENT_POLL) {
                Ok(event) => return event,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(dead) = self
                        .shards
                        .iter()
                        .find(|handle| handle.producer.is_finished() || handle.worker.is_finished())
                    {
                        panic!(
                            "shard {} thread exited while the runtime is alive \
                             (see the shard thread's panic output above)",
                            dead.shard
                        );
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("the runtime holds an event sender")
                }
            }
        }
    }

    /// Blocks until `session`'s final report arrives and hands it over.
    fn await_completion(&mut self, session: usize) -> SessionReport {
        loop {
            self.pump_events();
            if let Some(report) = self.completed.remove(&session) {
                return report;
            }
            let event = self.recv_event();
            self.absorb(event);
        }
    }

    /// Blocks until every admitted session's stream has completed. The
    /// shard threads stay alive and ready for further admissions.
    pub fn drain(&mut self) {
        self.pump_events();
        while self.churn.in_flight() > 0 {
            let event = self.recv_event();
            self.absorb(event);
        }
    }

    /// Spawns a fresh shard thread pair and returns its stable id.
    /// Placement sees it (initially empty) from the next admission on.
    /// Ids are never reused: after spawn/drain cycles the serving set need
    /// not be contiguous.
    ///
    /// # Examples
    ///
    /// ```
    /// use pvc_frame::Dimensions;
    /// use pvc_stream::{ServiceConfig, SessionConfig, StreamRuntime};
    ///
    /// let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
    /// let id = runtime.admit(SessionConfig::synthetic(0, Dimensions::new(32, 32), 64));
    ///
    /// // Scale up, move the session onto the new shard, finish it there.
    /// let dest = runtime.spawn_shard();
    /// assert_eq!(dest, 1);
    /// assert!(runtime.migrate(id, dest));
    /// assert_eq!(runtime.assignment(id), Some(dest));
    /// let report = runtime.retire(id);
    /// assert_eq!(report.throughput.frames, 64, "migration loses no frames");
    ///
    /// // Scale back down; the drained shard's telemetry comes back.
    /// let drained = runtime.drain_shard(dest);
    /// assert_eq!(drained.shard, dest);
    /// assert_eq!(runtime.shard_count(), 1);
    ///
    /// let report = runtime.shutdown();
    /// assert_eq!(report.elasticity.migrated, 1);
    /// assert_eq!(report.elasticity.shards_spawned, 1);
    /// assert_eq!(report.elasticity.shards_drained, 1);
    /// assert_eq!(report.shards.len(), 2, "drained shards stay in the report");
    /// ```
    pub fn spawn_shard(&mut self) -> usize {
        let shard = self.next_shard_index;
        self.next_shard_index += 1;
        let handle = spawn_shard_threads(
            shard,
            &self.config,
            self.event_tx.clone(),
            self.tracing_spec.as_ref(),
        );
        self.shards.push(handle);
        self.shard_reports.push(None);
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::ShardSpawn, CLASS_OTHER, shard as u64);
        }
        self.elasticity.record_shard_spawned();
        shard
    }

    /// Drains a shard out of the fleet: migrates its live sessions to the
    /// remaining shards (placed by the runtime's policy, which must not
    /// pick the draining shard), winds down its thread pair, and returns
    /// its telemetry. The report also stays in the final
    /// [`ServiceReport::shards`] under the shard's stable id.
    ///
    /// Migrated streams stay bit-identical to their solo runs — see
    /// [`Self::migrate`].
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown/already drained, if it is the last
    /// serving shard, or if a shard thread panicked.
    pub fn drain_shard(&mut self, shard: usize) -> ShardReport {
        assert!(
            self.shards.iter().any(|handle| handle.shard == shard),
            "shard {shard} is unknown or already drained"
        );
        assert!(self.shards.len() > 1, "cannot drain the last serving shard");
        // Relocate every live member first so their streams continue on
        // the survivors.
        let members: Vec<usize> = self
            .live_sessions()
            .into_iter()
            .filter(|id| self.assignments[id] == shard)
            .collect();
        for id in members {
            // `false` means the session completed in the meantime —
            // nothing left to move.
            self.migrate_impl(id, MigrateDest::Rebalance { draining: shard });
        }
        let position = self
            .shards
            .iter()
            .position(|handle| handle.shard == shard)
            .expect("presence asserted above");
        let handle = self.shards.remove(position);
        handle.control.send(ShardControl::Shutdown).ok();
        // Wait for the shard's final report (the worker sends it on exit).
        while self.shard_reports[shard].is_none() {
            match self.events.recv_timeout(EVENT_POLL) {
                Ok(event) => self.absorb(event),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if handle.worker.is_finished() {
                        // Clean exits leave the report in the channel
                        // buffer; a panic leaves nothing — either way the
                        // joins below settle it.
                        self.pump_events();
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("the runtime holds an event sender")
                }
            }
        }
        handle.producer.join().expect("shard producer panicked");
        handle.worker.join().expect("shard worker panicked");
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::ShardDrain, CLASS_OTHER, shard as u64);
        }
        self.elasticity.record_shard_drained();
        self.shard_reports[shard].clone().unwrap_or(ShardReport {
            shard,
            ..ShardReport::default()
        })
    }

    /// Migrates a live session to the serving shard `to`, blocking until
    /// the hand-off completes. Returns `false` (without side effects) if
    /// the session's stream already completed or `to` is its current
    /// shard.
    ///
    /// The migrated stream is **bit-identical** to the session's solo
    /// run: the source worker encodes exactly the frames its producer
    /// rendered (the eviction travels the frame queue in order), the
    /// destination rebuilds renderer, gaze trace and encoder purely from
    /// the session config and resumes at the next frame index, and the
    /// digest/wire sinks are carried mid-chain. The encoder cache is the
    /// only state lost, and it never steers an encoded bit (pinned by
    /// `tests/migration_determinism.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the session was never admitted or `to` is not a serving
    /// shard.
    pub fn migrate(&mut self, session: usize, to: usize) -> bool {
        self.migrate_impl(session, MigrateDest::Fixed(to))
    }

    fn migrate_impl(&mut self, session: usize, dest: MigrateDest) -> bool {
        assert!(
            self.assignments.contains_key(&session),
            "session {session} was never admitted"
        );
        self.pump_events();
        if self.retired.contains(&session) || self.completed.contains_key(&session) {
            return false;
        }
        let from = self.assignments[&session];
        if let MigrateDest::Fixed(to) = dest {
            // Validate eagerly: the eviction is irrevocable once sent.
            let _ = self.handle(to);
            if to == from {
                return false;
            }
        }
        self.handle(from)
            .control
            .send(ShardControl::Migrate { id: session })
            .expect("shard producer exited while the runtime is alive");
        loop {
            match self.recv_event() {
                RuntimeEvent::Migrated { id, carry } if id == session => {
                    let to = match dest {
                        MigrateDest::Fixed(to) => to,
                        MigrateDest::Rebalance { draining } => {
                            let mut loads = self.shard_loads();
                            for load in &mut loads {
                                if load.shard == draining {
                                    load.draining = true;
                                }
                            }
                            let to = self.placement.place(session, &carry.config, &loads);
                            assert!(
                                to != draining,
                                "placement returned the draining shard {draining}"
                            );
                            to
                        }
                    };
                    let handle = self.handle(to);
                    handle.sessions.fetch_add(1, Ordering::Relaxed);
                    handle.session_pixels.add(carry.config.pixel_cost());
                    handle.remaining_pixels.add(
                        carry.config.pixel_cost()
                            * u64::from(carry.config.frames().saturating_sub(carry.frames_done)),
                    );
                    let class = carry.config.profile.tier.class_index();
                    handle
                        .control
                        .send(ShardControl::Resume { id: session, carry })
                        .expect("shard producer exited while the runtime is alive");
                    if let Some(tracing) = self.tracing.as_mut() {
                        tracing.control.mark(Marker::Migrate, class, session as u64);
                    }
                    self.assignments.insert(session, to);
                    self.elasticity.record_migration();
                    return true;
                }
                RuntimeEvent::MigrateRefused { id } if id == session => return false,
                event => self.absorb(event),
            }
        }
    }

    /// Downgrades a live session to `profile` mid-stream (tier shed:
    /// quality for throughput). Returns `false` if the session's stream
    /// already completed. Does not block: the downgrade lands on the
    /// shard threads asynchronously; the session's report will carry
    /// [`SessionReport::downgraded_from`] and
    /// [`SessionReport::downgrade_frame`], and its wire stream a
    /// tier-change record at that frame.
    ///
    /// The post-downgrade stream is bit-identical to a solo run started
    /// at `profile` from the same frame index (pinned by
    /// `tests/migration_determinism.rs`): renderer, gaze trace and
    /// encoder are re-derived purely from the new profile, and the frame
    /// index continues under the new numbering.
    ///
    /// # Panics
    ///
    /// Panics if the session was never admitted.
    pub fn shed(&mut self, session: usize, profile: SessionProfile) -> bool {
        assert!(
            self.assignments.contains_key(&session),
            "session {session} was never admitted"
        );
        self.pump_events();
        if self.retired.contains(&session) || self.completed.contains_key(&session) {
            return false;
        }
        let shard = self.assignments[&session];
        if let Some(tracing) = self.tracing.as_mut() {
            tracing
                .control
                .mark(Marker::Shed, profile.tier.class_index(), session as u64);
        }
        self.handle(shard)
            .control
            .send(ShardControl::Retier {
                id: session,
                profile,
            })
            .expect("shard producer exited while the runtime is alive");
        self.elasticity.record_shed();
        true
    }

    /// Stops the runtime: lets every in-flight session finish its frame
    /// budget, winds down the shard threads, and returns the service
    /// report. `sessions` holds the final reports not already handed out
    /// by [`Self::retire`]; `totals` and `churn` cover every session the
    /// runtime ever served, retired or not.
    ///
    /// # Panics
    ///
    /// Propagates panics from shard threads.
    pub fn shutdown(mut self) -> ServiceReport {
        for handle in &self.shards {
            handle.control.send(ShardControl::Shutdown).ok();
        }
        let handles = std::mem::take(&mut self.shards);
        let mut pending_shards = handles.len();
        while pending_shards > 0 {
            match self.events.recv_timeout(EVENT_POLL) {
                Ok(event) => {
                    if matches!(event, RuntimeEvent::ShardDone(_)) {
                        pending_shards -= 1;
                    }
                    self.absorb(event);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers send their report before exiting, so once
                    // every worker is finished the reports (if any) are
                    // already buffered. A report still missing after the
                    // flush means a worker panicked: fall through to the
                    // joins to surface it.
                    if handles.iter().all(|handle| handle.worker.is_finished()) {
                        self.pump_events();
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // The control lane reports one past the highest shard id ever
        // spawned, so drained shards keep their own trace groups.
        let control_lane_index = self.next_shard_index;
        for handle in handles {
            drop(handle.control);
            handle.producer.join().expect("shard producer panicked");
            handle.worker.join().expect("shard worker panicked");
        }

        let sessions: Vec<SessionReport> =
            std::mem::take(&mut self.completed).into_values().collect();
        let mut totals = self.totals;
        totals.wall_seconds = self.started.elapsed().as_secs_f64();
        let shards = std::mem::take(&mut self.shard_reports)
            .into_iter()
            .enumerate()
            .map(|(shard, report)| {
                report.unwrap_or(ShardReport {
                    shard,
                    ..ShardReport::default()
                })
            })
            .collect();
        // Every pipeline thread has been joined, so every sealed trace is
        // already sitting in the channel; drain without blocking.
        let trace = self.tracing.take().map(|tracing| {
            let RuntimeTracing {
                epoch,
                control,
                collected,
            } = tracing;
            let mut report = TraceReport::new(epoch);
            while let Ok(thread) = collected.try_recv() {
                report.threads.push(thread);
            }
            // The control plane reports as its own lane, one past the
            // last shard.
            report
                .threads
                .push(control.into_thread(control_lane_index, Lane::Control));
            report
                .threads
                .sort_by_key(|thread| (thread.shard, lane_rank(thread.lane)));
            report
        });
        ServiceReport {
            sessions,
            shards,
            totals,
            churn: self.churn,
            elasticity: self.elasticity,
            trace,
        }
    }

    /// Absorbs every event the workers have already delivered, without
    /// blocking.
    fn pump_events(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            self.absorb(event);
        }
    }

    fn absorb(&mut self, event: RuntimeEvent) {
        match event {
            RuntimeEvent::SessionDone(report) => {
                self.churn.record_completion();
                if report.cancelled {
                    self.churn.record_cancellation();
                }
                self.totals.merge(&report.throughput);
                self.completed.insert(report.session, report);
            }
            RuntimeEvent::ShardDone(report) => {
                let slot = &mut self.shard_reports[report.shard];
                debug_assert!(slot.is_none(), "shard {} reported twice", report.shard);
                *slot = Some(report);
            }
            // Exactly one migration is ever in flight (the runtime is
            // single-threaded and migrate_impl consumes its response
            // before returning), so these never reach the generic path.
            RuntimeEvent::Migrated { .. } | RuntimeEvent::MigrateRefused { .. } => {
                unreachable!("migration responses are consumed by the migration wait loop")
            }
        }
    }
}

/// Spawns one shard's producer/worker thread pair. `shard` is the stable
/// id the pair reports as; the runtime calls this both at start and from
/// [`StreamRuntime::spawn_shard`].
fn spawn_shard_threads(
    shard: usize,
    config: &ServiceConfig,
    events: mpsc::Sender<RuntimeEvent>,
    tracing: Option<&TracingSpec>,
) -> ShardHandle {
    let (control_tx, control_rx) = control_channel();
    let (job_tx, job_rx, queue) = bounded_queue(config.queue_depth);
    // Render buffers flow producer→worker inside ShardJob::Frame and come
    // back empty-handed on this recycle channel, so session lifetime — not
    // frame count — bounds the shard's frame allocations.
    let (recycle_tx, recycle_rx) = mpsc::channel();
    // Frames in the queue plus one in the producer's hands; recycled
    // buffers beyond the cap are dropped rather than hoarded.
    let frame_pool_cap = config.queue_depth + 1;
    let sessions = Arc::new(AtomicUsize::new(0));
    let session_pixels = Gauge::new();
    let queued_pixels = Gauge::new();
    let remaining_pixels = Gauge::new();
    // Always-on render-time accounting (satisfies ShardReport even with
    // tracing off): the producer adds, the worker reads at exit.
    let render_nanos = Arc::new(AtomicU64::new(0));
    let producer = std::thread::Builder::new()
        .name(format!("pvc-shard{shard}-render"))
        .spawn({
            let links = ProducerLinks {
                control: control_rx,
                jobs: job_tx,
                events: events.clone(),
                queued_pixels: queued_pixels.clone(),
                remaining_pixels: remaining_pixels.clone(),
                recycle: recycle_rx,
                frame_pool_cap,
                render_nanos: Arc::clone(&render_nanos),
                tracing: tracing.map(|spec| ShardTracing::new(shard, spec)),
            };
            move || run_producer(links)
        })
        .expect("spawning shard producer thread");
    let worker = std::thread::Builder::new()
        .name(format!("pvc-shard{shard}-encode"))
        .spawn({
            let config = config.clone();
            let links = WorkerLinks {
                jobs: job_rx,
                queue: queue.clone(),
                gauges: WorkerGauges {
                    sessions: Arc::clone(&sessions),
                    session_pixels: session_pixels.clone(),
                    queued_pixels: queued_pixels.clone(),
                },
                events,
                recycle: recycle_tx,
                render_nanos,
                tracing: tracing.map(|spec| ShardTracing::new(shard, spec)),
            };
            move || run_worker(shard, config, links)
        })
        .expect("spawning shard worker thread");
    ShardHandle {
        shard,
        control: control_tx,
        queue,
        sessions,
        session_pixels,
        queued_pixels,
        remaining_pixels,
        producer,
        worker,
    }
}

/// The pixels a member session is still due to render.
fn session_remaining_pixels(session: &ProducerSession) -> u64 {
    session.config.pixel_cost() * u64::from(session.config.frames().saturating_sub(session.next))
}

/// Hard-cancels `id` on the producer side: stops rendering its remaining
/// frames and tells the worker to finalize a partial, `cancelled` report.
/// A no-op when the session is not (or no longer) a member — its `Close`
/// has already been sent and its report will arrive complete.
///
/// Returns `Err` when the worker is gone (queue closed) and the producer
/// should stop.
fn cancel_session(
    active: &mut Vec<ProducerSession>,
    id: usize,
    links: &ProducerLinks,
) -> Result<(), ()> {
    let Some(position) = active.iter().position(|session| session.id == id) else {
        return Ok(());
    };
    // The worker still owes the runtime a report for this session even if
    // no frame was ever sent; send_first opens it so the Cancel below
    // finalizes an (empty) cancelled one.
    send_first(&mut active[position], &links.jobs)?;
    let session = active.remove(position);
    links
        .remaining_pixels
        .sub(session_remaining_pixels(&session));
    links.jobs.send(ShardJob::Cancel { id }).map_err(|_| ())
}

/// Downgrades member `id` to `profile`: re-derives its renderer and gaze
/// trace from the new profile (keeping the current frame index, now under
/// the new numbering) and tells the worker — through the frame queue, so
/// the change lands behind every old-profile frame — to rebuild the
/// encoder and stamp a tier-change record. A no-op for non-members.
///
/// Returns `Err` when the worker is gone and the producer should stop.
fn retier_session(
    active: &mut [ProducerSession],
    id: usize,
    profile: SessionProfile,
    links: &ProducerLinks,
) -> Result<(), ()> {
    let Some(session) = active.iter_mut().find(|session| session.id == id) else {
        return Ok(());
    };
    send_first(session, &links.jobs)?;
    links
        .remaining_pixels
        .sub(session_remaining_pixels(session));
    let next = session.next;
    let config = session.config.clone().with_profile(profile);
    *session = ProducerSession::admit(id, config.clone());
    session.next = next;
    session.opened = true;
    links
        .remaining_pixels
        .add(session_remaining_pixels(session));
    links
        .jobs
        .send(ShardJob::Retier { id, config })
        .map_err(|_| ())
}

/// Evicts member `id` for migration: stops rendering it and asks the
/// worker — again through the frame queue, behind every frame already
/// rendered — to package the session's carry. Non-members are refused
/// straight back to the runtime (their stream already completed).
///
/// Returns `Err` when the worker is gone and the producer should stop.
fn migrate_session(
    active: &mut Vec<ProducerSession>,
    id: usize,
    links: &ProducerLinks,
) -> Result<(), ()> {
    let Some(position) = active.iter().position(|session| session.id == id) else {
        links.events.send(RuntimeEvent::MigrateRefused { id }).ok();
        return Ok(());
    };
    send_first(&mut active[position], &links.jobs)?;
    let session = active.remove(position);
    links
        .remaining_pixels
        .sub(session_remaining_pixels(&session));
    links
        .jobs
        .send(ShardJob::Migrate {
            id,
            config: session.config,
            next: session.next,
        })
        .map_err(|_| ())
}

/// Everything one producer thread owns, bundled so the tracing kit and
/// the always-on render-time counter ride along without widening the
/// thread function's signature.
struct ProducerLinks {
    control: ControlReceiver<ShardControl>,
    jobs: BoundedSender<ShardJob>,
    /// For answering [`ShardControl::Migrate`] of a non-member directly
    /// (the worker never hears about those).
    events: mpsc::Sender<RuntimeEvent>,
    queued_pixels: Gauge,
    /// Work still due: lowered per rendered frame and adjusted on
    /// cancel/retier/migrate; the runtime raises it at admission/arrival.
    remaining_pixels: Gauge,
    recycle: mpsc::Receiver<LinearFrame>,
    frame_pool_cap: usize,
    /// Accumulated render time, read by the worker at exit into
    /// [`ShardReport::render_seconds`]. Always maintained.
    render_nanos: Arc<AtomicU64>,
    tracing: Option<ShardTracing>,
}

/// The producer thread: runs the loop, then seals and ships its trace.
/// `links` (and with it the job sender) drops when this returns, which is
/// what lets the worker drain and wind down.
fn run_producer(mut links: ProducerLinks) {
    producer_loop(&mut links);
    if let Some(tracing) = links.tracing.take() {
        tracing.finish(Lane::Producer);
    }
}

/// The producer loop: absorbs control commands (blocking while idle,
/// polling while busy) and renders member sessions' frames round-robin
/// into the bounded queue. Frame-major interleaving (A0 B0 A1 B1 …) is
/// fair across sessions while preserving per-session frame order — which
/// is all determinism needs. `queued_pixels` is raised before each frame
/// send (add-before-handoff, see [`Gauge`]) and released by the worker.
///
/// Render buffers come from a small pool fed by the worker's `recycle`
/// channel (capped at `frame_pool_cap`; excess buffers are dropped), so a
/// long-lived session renders its whole stream into a handful of
/// recirculating frames. Rendering overwrites every pixel, so recycling
/// cannot change a single emitted bit — and neither can any of the clock
/// reads tracing adds around it.
fn producer_loop(links: &mut ProducerLinks) {
    let mut active: Vec<ProducerSession> = Vec::new();
    let mut pool: Vec<LinearFrame> = Vec::new();
    let mut draining = false;
    loop {
        // Idle: sleep on the control channel rather than spinning.
        while active.is_empty() && !draining {
            match links.control.wait() {
                Some(ShardControl::Admit { id, config }) => {
                    active.push(ProducerSession::admit(id, config));
                }
                Some(ShardControl::Resume { id, carry }) => {
                    active.push(ProducerSession::resume(id, carry));
                }
                // No member can match a Cancel or Retier while idle: the
                // session already closed and its report is (or will be)
                // complete.
                Some(ShardControl::Cancel { .. }) | Some(ShardControl::Retier { .. }) => {}
                // Likewise a Migrate of a non-member: refuse it so the
                // waiting runtime unblocks.
                Some(ShardControl::Migrate { id }) => {
                    links.events.send(RuntimeEvent::MigrateRefused { id }).ok();
                }
                Some(ShardControl::Shutdown) | None => draining = true,
            }
        }
        // Busy: absorb whatever commands piled up, without blocking.
        loop {
            match links.control.poll() {
                ControlPoll::Message(ShardControl::Admit { id, config }) => {
                    active.push(ProducerSession::admit(id, config));
                }
                ControlPoll::Message(ShardControl::Resume { id, carry }) => {
                    active.push(ProducerSession::resume(id, carry));
                }
                ControlPoll::Message(ShardControl::Cancel { id }) => {
                    if cancel_session(&mut active, id, links).is_err() {
                        return;
                    }
                }
                ControlPoll::Message(ShardControl::Retier { id, profile }) => {
                    if retier_session(&mut active, id, profile, links).is_err() {
                        return;
                    }
                }
                ControlPoll::Message(ShardControl::Migrate { id }) => {
                    if migrate_session(&mut active, id, links).is_err() {
                        return;
                    }
                }
                ControlPoll::Message(ShardControl::Shutdown) | ControlPoll::Closed => {
                    draining = true;
                    break;
                }
                ControlPoll::Empty => break,
            }
        }
        if active.is_empty() {
            if draining {
                return; // returning drops `jobs` upstream; worker winds down
            }
            continue;
        }
        // Reclaim whatever render buffers the worker has finished with.
        let reclaim_start = Instant::now();
        while let Ok(frame) = links.recycle.try_recv() {
            if pool.len() < links.frame_pool_cap {
                pool.push(frame);
            }
        }
        if let Some(tracing) = links.tracing.as_mut() {
            tracing
                .recorder
                .span(Stage::PoolRecycle, CLASS_OTHER, 0, 0, reclaim_start);
        }
        // One frame per member session. Every send can block on the
        // bounded queue (backpressure); a send error means the worker is
        // gone (unwinding), so stop producing.
        let mut index = 0;
        while index < active.len() {
            let finished = {
                let session = &mut active[index];
                if send_first(session, &links.jobs).is_err() {
                    return;
                }
                if session.next < session.config.frames() {
                    let t = session.next;
                    let mut frame = pool.pop().unwrap_or_else(|| {
                        LinearFrame::filled(Dimensions::new(1, 1), LinearRgb::BLACK)
                    });
                    let render_start = Instant::now();
                    session.renderer.render_linear_into(t, &mut frame);
                    let rendered_nanos = render_start.elapsed().as_nanos() as u64;
                    links
                        .render_nanos
                        .fetch_add(rendered_nanos, Ordering::Relaxed);
                    if let Some(tracing) = links.tracing.as_mut() {
                        let class = session.config.profile.tier.class_index();
                        let start = tracing.recorder.epoch().nanos_since(render_start);
                        tracing.recorder.span_nanos(
                            Stage::Render,
                            class,
                            session.id as u64,
                            t,
                            start,
                            rendered_nanos,
                        );
                    }
                    let job = ShardJob::Frame {
                        id: session.id,
                        frame,
                        gaze: session.trace.samples()[t as usize],
                        enqueued: Instant::now(),
                    };
                    // Add-before-handoff keeps the gauge non-negative: the
                    // worker's release always follows this add.
                    let pixels = session.config.pixel_cost();
                    links.queued_pixels.add(pixels);
                    if links.jobs.send(job).is_err() {
                        links.queued_pixels.sub(pixels);
                        return;
                    }
                    // The frame is rendered: it is no longer "remaining".
                    links.remaining_pixels.sub(pixels);
                    session.next += 1;
                }
                session.next >= session.config.frames()
            };
            if finished {
                // `remove` (not swap_remove) keeps the round-robin order of
                // the remaining sessions stable.
                let done = active.remove(index);
                if links.jobs.send(ShardJob::Close { id: done.id }).is_err() {
                    return;
                }
            } else {
                index += 1;
            }
        }
    }
}

/// The shard-load gauges the worker releases as sessions and frames pass
/// through it; the admission side raises them.
struct WorkerGauges {
    sessions: Arc<AtomicUsize>,
    session_pixels: Gauge,
    queued_pixels: Gauge,
}

/// Everything one worker thread owns besides its encoder state, bundled
/// like [`ProducerLinks`] to keep the thread function's signature flat.
struct WorkerLinks {
    jobs: BoundedReceiver<ShardJob>,
    queue: QueueStats,
    gauges: WorkerGauges,
    events: mpsc::Sender<RuntimeEvent>,
    recycle: mpsc::Sender<LinearFrame>,
    /// The producer's accumulated render time; read once at exit (the
    /// queue has closed by then, so the producer has stopped adding).
    render_nanos: Arc<AtomicU64>,
    tracing: Option<ShardTracing>,
}

/// The worker loop: drains the frame queue in arrival order, encoding each
/// frame with its session's own encoder, and finalizes session reports on
/// `Close` (complete) or `Cancel` (partial, flagged cancelled). Exits when
/// the producer drops its sender and the queue drains.
///
/// One [`StreamScratch`] and one bitstream buffer serve every session of
/// the shard for the worker's whole lifetime: the scratch only changes
/// *where* intermediates live (never a computed bit), so sharing it across
/// heterogeneous sessions is safe — the buffers simply warm up to the
/// largest frame size the shard serves. Encoded frames are handed back to
/// the producer through `recycle` for re-rendering.
///
/// With tracing on, each frame contributes queue-wait, adjust, gamma and
/// BD-encode spans (the encode sub-stages come from the scratch's
/// [`StreamScratch::last_timing`] breakdown, chained from the encode
/// start — the gaze-map lookup between dequeue and adjust is untraced)
/// plus a wire-emit span around the sink fan-out. All of it is clock
/// reads and integer stores: no allocation, no encoded-bit drift.
fn run_worker(shard: usize, config: ServiceConfig, mut links: WorkerLinks) {
    let wall_start = Instant::now();
    let mut shard_report = ShardReport {
        shard,
        ..ShardReport::default()
    };
    let mut sessions: BTreeMap<usize, WorkerSession> = BTreeMap::new();
    let mut scratch = StreamScratch::new();
    let mut bitstream: Vec<u8> = Vec::new();
    let mut busy_seconds = 0.0f64;
    for job in links.jobs.iter() {
        match job {
            ShardJob::Open {
                id,
                config: session_config,
            } => {
                shard_report.sessions += 1;
                sessions.insert(id, WorkerSession::open(id, shard, &config, &session_config));
            }
            ShardJob::Frame {
                id,
                frame,
                gaze,
                enqueued,
            } => {
                let session = sessions
                    .get_mut(&id)
                    .expect("frame for a session that was never opened");
                // The frame left the queue: release its pixel weight.
                links.gauges.queued_pixels.sub(session.frame_pixels);
                let encode_start = Instant::now();
                let first_frame = *session.first_frame.get_or_insert(encode_start);
                let stats = session.encoder.encode_frame_stream_into(
                    &frame,
                    gaze,
                    &mut scratch,
                    &mut bitstream,
                );
                busy_seconds += encode_start.elapsed().as_secs_f64();
                // The frame's pixels are encoded; hand the buffer back for
                // re-rendering (the producer may already be gone at
                // shutdown, which is fine — the buffer just drops).
                links.recycle.send(frame).ok();
                let report = &mut session.report;
                // The frame's index within the session, before the
                // throughput counter moves past it.
                let frame_index = report.throughput.frames as u32;
                report.temporal.record_frame(
                    stats.temporal.keyframe,
                    stats.temporal.skip_tiles,
                    stats.temporal.delta_tiles,
                    stats.temporal.intra_tiles,
                    stats.temporal.bits,
                    stats.temporal.intra_bits,
                );
                report.throughput.record_frame_bits(
                    stats.compression.uncompressed_bits,
                    bitstream.len() as u64,
                    session.frame_pixels,
                );
                // Per-session wall-clock: first frame's encode start to the
                // latest frame's encode end. Refreshed every frame so the
                // final value lands on the last frame without needing one.
                report.throughput.wall_seconds = first_frame.elapsed().as_secs_f64();
                if let Some(tracing) = links.tracing.as_mut() {
                    record_frame_spans(
                        &mut tracing.recorder,
                        session.class,
                        id as u64,
                        frame_index,
                        enqueued,
                        encode_start,
                        scratch.last_timing(),
                    );
                }
                let emit_start = Instant::now();
                let keyframe = stats.temporal.keyframe;
                for sink in session.sinks() {
                    sink.frame(frame_index, keyframe, &bitstream);
                }
                if let Some(tracing) = links.tracing.as_mut() {
                    tracing.recorder.span(
                        Stage::WireEmit,
                        session.class,
                        id as u64,
                        frame_index,
                        emit_start,
                    );
                }
            }
            ShardJob::Close { id } => {
                let session = sessions
                    .remove(&id)
                    .expect("close for a session that was never opened");
                finalize(session, &mut shard_report, &links.gauges, &links.events);
            }
            ShardJob::Cancel { id } => {
                let mut session = sessions
                    .remove(&id)
                    .expect("cancel for a session that was never opened");
                session.report.cancelled = true;
                finalize(session, &mut shard_report, &links.gauges, &links.events);
            }
            ShardJob::Retier {
                id,
                config: session_config,
            } => {
                let session = sessions
                    .get_mut(&id)
                    .expect("retier for a session that was never opened");
                // Every old-profile frame precedes this job in the queue,
                // so the rebuild lands at exactly the producer's switch
                // point. Fold the outgoing encoder's cache counters before
                // replacing it.
                session.carried_cache =
                    merge_cache(session.carried_cache, session.encoder.cache_stats());
                let (mut encoder, tile_size) = encoder_for(&config, &session_config);
                // The shed rebuild clears the temporal reference (the old
                // tier's frames have a different geometry anyway), so the
                // first lower-tier frame is an intra refresh; seeding the
                // frame counter keeps the keyframe schedule aligned with a
                // solo run at the lower tier from this index on.
                encoder.set_next_frame_index(session.report.throughput.frames as u32);
                session.encoder = encoder;
                let old_tier = session.report.tier;
                links.gauges.session_pixels.sub(session.frame_pixels);
                session.frame_pixels = session_config.pixel_cost();
                links.gauges.session_pixels.add(session.frame_pixels);
                session.class = session_config.profile.tier.class_index();
                session.report.tier = session_config.profile.tier;
                // Only the first downgrade is "from" anything the client
                // did not already know about.
                session.report.downgraded_from.get_or_insert(old_tier);
                let frame_index = session.report.throughput.frames as u32;
                session.report.downgrade_frame = Some(frame_index);
                let change = WireTierChange {
                    frame_index,
                    tier: session_config.profile.tier,
                    width: session_config.dimensions().width,
                    height: session_config.dimensions().height,
                    tile_size,
                    frame_budget: session_config.frames(),
                };
                for sink in session.sinks() {
                    sink.tier_change(&change);
                }
            }
            ShardJob::Migrate {
                id,
                config: session_config,
                next,
            } => {
                let session = sessions
                    .remove(&id)
                    .expect("migrate for a session that was never opened");
                // Attribute the frames encoded here to this shard before
                // the session leaves; the destination claims only its own
                // share via the carried baselines.
                shard_report.frames += session.report.throughput.frames - session.counted_frames;
                shard_report.pixels += session.report.throughput.pixels - session.counted_pixels;
                let counted_frames = session.report.throughput.frames;
                let counted_pixels = session.report.throughput.pixels;
                let carried_cache =
                    merge_cache(session.carried_cache, session.encoder.cache_stats());
                links.gauges.sessions.fetch_sub(1, Ordering::Relaxed);
                links.gauges.session_pixels.sub(session.frame_pixels);
                let carry = Box::new(SessionCarry {
                    config: session_config,
                    frames_done: next,
                    report: session.report,
                    digest: session.digest,
                    wire: session.wire,
                    first_frame: session.first_frame,
                    carried_cache,
                    counted_frames,
                    counted_pixels,
                });
                links.events.send(RuntimeEvent::Migrated { id, carry }).ok();
            }
            ShardJob::Resume { id, carry } => {
                shard_report.sessions += 1;
                sessions.insert(id, WorkerSession::resume(shard, &config, *carry));
            }
        }
    }
    // The producer only exits without closing every session while
    // unwinding; finalize leftovers so retirees are not stranded.
    for (_, session) in std::mem::take(&mut sessions) {
        finalize(session, &mut shard_report, &links.gauges, &links.events);
    }
    shard_report.busy_seconds = busy_seconds;
    shard_report.render_seconds = links.render_nanos.load(Ordering::Relaxed) as f64 / 1e9;
    shard_report.wall_seconds = wall_start.elapsed().as_secs_f64();
    shard_report.queue_stalls = links.queue.stalls();
    shard_report.queue_enqueued = links.queue.enqueued();
    shard_report.queue_peak_depth = links.queue.peak_depth();
    // The stats are captured; start a fresh peak epoch so nothing that
    // reuses the queue's stats handle inherits this lifetime's high-water
    // mark (a drained shard must not leak into its replacement's report).
    links.queue.reset_peak_depth();
    links
        .events
        .send(RuntimeEvent::ShardDone(shard_report))
        .ok();
    if let Some(tracing) = links.tracing.take() {
        tracing.finish(Lane::Worker);
    }
}

/// Records one encoded frame's span ladder: queue wait (enqueue →
/// dequeue), then the encode broken into adjust / gamma / BD-encode via
/// the scratch's sub-stage timing, chained end to end from the encode
/// start.
fn record_frame_spans(
    recorder: &mut Recorder,
    class: u8,
    session: u64,
    frame: u32,
    enqueued: Instant,
    encode_start: Instant,
    timing: pvc_core::StageNanos,
) {
    let epoch = recorder.epoch();
    let enqueued_at = epoch.nanos_since(enqueued);
    let dequeued_at = epoch.nanos_since(encode_start);
    recorder.span_nanos(
        Stage::QueueWait,
        class,
        session,
        frame,
        enqueued_at,
        dequeued_at.saturating_sub(enqueued_at),
    );
    recorder.span_nanos(
        Stage::Adjust,
        class,
        session,
        frame,
        dequeued_at,
        timing.adjust,
    );
    let gamma_at = dequeued_at + timing.adjust;
    recorder.span_nanos(Stage::Gamma, class, session, frame, gamma_at, timing.gamma);
    let bd_at = gamma_at + timing.gamma;
    recorder.span_nanos(
        Stage::BdEncode,
        class,
        session,
        frame,
        bd_at,
        timing.bd_encode,
    );
}

/// Seals a session's report, releases its shard-load gauges, and hands it
/// back to the runtime.
fn finalize(
    mut session: WorkerSession,
    shard_report: &mut ShardReport,
    gauges: &WorkerGauges,
    events: &mpsc::Sender<RuntimeEvent>,
) {
    let cancelled = session.report.cancelled;
    for sink in session.sinks() {
        sink.finish(cancelled);
    }
    session.report.stream_digest = session.digest.digest();
    session.report.payloads = session.digest.take_payloads();
    session.report.wire_stream = session.wire.take().map(WireSink::into_bytes);
    // Cache counters span every encoder incarnation (sheds, migrations);
    // for a session that never changed tier or shard the carried part is
    // zero and this is exactly the live encoder's stats.
    session.report.cache = merge_cache(session.carried_cache, session.encoder.cache_stats());
    // Migrated-in sessions only credit this shard with the frames encoded
    // here; previous shards already claimed theirs.
    shard_report.frames += session.report.throughput.frames - session.counted_frames;
    shard_report.pixels += session.report.throughput.pixels - session.counted_pixels;
    gauges.sessions.fetch_sub(1, Ordering::Relaxed);
    gauges.session_pixels.sub(session.frame_pixels);
    events.send(RuntimeEvent::SessionDone(session.report)).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PowerOfTwoChoices;
    use pvc_frame::Dimensions;

    fn dims() -> Dimensions {
        Dimensions::new(32, 32)
    }

    #[test]
    fn sessions_admitted_after_a_retire_still_stream() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        let a = runtime.admit(SessionConfig::synthetic(0, dims(), 3));
        let report_a = runtime.retire(a);
        assert_eq!(report_a.throughput.frames, 3);
        assert!(report_a.throughput.wall_seconds > 0.0);
        assert!(report_a.throughput.frames_per_second() > 0.0);

        // The shard threads are still alive: admit another wave.
        let b = runtime.admit(SessionConfig::synthetic(1, dims(), 2));
        let report = runtime.shutdown();
        assert_eq!(
            report.sessions.len(),
            1,
            "session a's report was handed to retire()"
        );
        assert_eq!(report.sessions[0].session, b);
        assert_eq!(report.sessions[0].throughput.frames, 2);
        assert_eq!(report.totals.frames, 5, "totals still cover the retiree");
        assert_eq!(report.churn.admitted, 2);
        assert_eq!(report.churn.retired, 1);
        assert_eq!(report.churn.completed, 2);
        assert_eq!(
            report.churn.peak_concurrent, 1,
            "never two in flight at once"
        );
    }

    #[test]
    fn retire_waits_for_the_full_frame_budget() {
        // Retiring immediately after admission must still deliver every
        // frame the session was configured for: retirement is graceful.
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 6));
        let report = runtime.retire(id);
        assert_eq!(report.throughput.frames, 6);
        assert_ne!(report.stream_digest, FNV_OFFSET_BASIS);
        runtime.shutdown();
    }

    #[test]
    fn drain_completes_every_stream_and_keeps_the_runtime_alive() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        for index in 0..4 {
            runtime.admit(SessionConfig::synthetic(index, dims(), 2));
        }
        runtime.drain();
        assert_eq!(runtime.churn().in_flight(), 0);
        assert_eq!(runtime.churn().completed, 4);
        // Still serving after the drain.
        runtime.admit(SessionConfig::synthetic(4, dims(), 2));
        let report = runtime.shutdown();
        assert_eq!(report.sessions.len(), 5);
        assert_eq!(report.totals.frames, 10);
    }

    #[test]
    fn zero_frame_sessions_complete_immediately() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 0));
        let report = runtime.retire(id);
        assert_eq!(report.throughput.frames, 0);
        assert_eq!(
            report.stream_digest, FNV_OFFSET_BASIS,
            "no frames, seed digest"
        );
        runtime.shutdown();
    }

    #[test]
    fn static_assignments_are_modulo_and_observable() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(3));
        for index in 0..6 {
            let id = runtime.admit(SessionConfig::synthetic(index, dims(), 1));
            assert_eq!(runtime.assignment(id), Some(id % 3));
        }
        assert_eq!(runtime.assignment(99), None);
        let report = runtime.shutdown();
        for session in &report.sessions {
            assert_eq!(session.shard, session.session % 3);
        }
    }

    #[test]
    fn power_of_two_spreads_sessions_under_load() {
        // With 2 shards p2c always compares both, and admissions bump the
        // placed shard's live session count synchronously — so the second
        // admission must see shard 0 loaded and flee to shard 1. Exact
        // splits beyond that depend on live load (sessions completing
        // mid-loop lower their shard's score, legitimately attracting
        // later admissions), so only the both-shards-used property is
        // timing-independent.
        let mut runtime = StreamRuntime::start(
            ServiceConfig::default().with_shards(2),
            Box::new(PowerOfTwoChoices::default()),
        );
        for index in 0..8 {
            runtime.admit(SessionConfig::synthetic(index, dims(), 50));
        }
        let placed: Vec<usize> = (0..8).map(|id| runtime.assignment(id).unwrap()).collect();
        let on_zero = placed.iter().filter(|&&shard| shard == 0).count();
        assert!(
            (1..=7).contains(&on_zero),
            "p2c must not pile every session on one shard, got {placed:?}"
        );
        let report = runtime.shutdown();
        assert_eq!(report.totals.frames, 400);
        let served: usize = report.shards.iter().map(|shard| shard.sessions).sum();
        assert_eq!(served, 8);
    }

    #[test]
    fn shard_loads_report_live_population() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        runtime.admit(SessionConfig::synthetic(0, dims(), 40));
        let loads = runtime.shard_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].sessions, 1, "admission registers immediately");
        assert_eq!(
            loads[0].session_pixels,
            32 * 32,
            "the pixel gauge rises with the session count"
        );
        assert_eq!(loads[1].sessions, 0);
        assert_eq!(loads[1].session_pixels, 0);
        runtime.drain();
        let after = runtime.shard_loads();
        assert_eq!(after[0].sessions, 0, "completion deregisters");
        assert_eq!(after[0].session_pixels, 0, "pixels release with it");
        assert_eq!(after[0].queued_pixels, 0, "the queue drained");
        runtime.shutdown();
    }

    #[test]
    fn hard_cancel_returns_a_partial_cancelled_report() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        // A budget far beyond what could stream before the cancel lands.
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 100_000));
        let report = runtime.retire_now(id);
        assert!(report.cancelled, "the stream must have been cut short");
        assert!(
            report.throughput.frames < 100_000,
            "cancel must drop the remaining frame budget"
        );
        // The runtime keeps serving after a cancel.
        let survivor = runtime.admit(SessionConfig::synthetic(1, dims(), 3));
        let survivor_report = runtime.retire(survivor);
        assert_eq!(survivor_report.throughput.frames, 3);
        assert!(!survivor_report.cancelled);
        let service_report = runtime.shutdown();
        assert_eq!(service_report.churn.admitted, 2);
        assert_eq!(service_report.churn.retired, 2);
        assert_eq!(service_report.churn.completed, 2);
        assert_eq!(service_report.churn.cancelled, 1);
    }

    #[test]
    fn hard_cancel_of_a_finished_stream_returns_the_complete_report() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 2));
        runtime.drain();
        let report = runtime.retire_now(id);
        assert!(!report.cancelled, "a finished stream has nothing to cancel");
        assert_eq!(report.throughput.frames, 2);
        let service_report = runtime.shutdown();
        assert_eq!(service_report.churn.cancelled, 0);
        assert_eq!(service_report.churn.retired, 1);
    }

    #[test]
    fn hard_cancel_releases_the_shard_load_gauges() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 100_000));
        assert_eq!(runtime.shard_loads()[0].session_pixels, 32 * 32);
        let _ = runtime.retire_now(id);
        let load = runtime.shard_loads()[0];
        assert_eq!(load.sessions, 0);
        assert_eq!(load.session_pixels, 0, "cancel releases committed pixels");
        runtime.shutdown();
    }

    #[test]
    fn heterogeneous_profiles_stream_side_by_side() {
        use crate::session::{ResolutionTier, SessionProfile};
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        let base = dims();
        let ids: Vec<usize> = ResolutionTier::ALL
            .iter()
            .enumerate()
            .map(|(index, &tier)| {
                runtime.admit(
                    SessionConfig::synthetic(index, base, 4)
                        .with_profile(SessionProfile::for_tier(tier, base, 4)),
                )
            })
            .collect();
        runtime.drain();
        let report = runtime.shutdown();
        assert_eq!(report.sessions.len(), 3);
        for (id, session) in ids.iter().zip(&report.sessions) {
            assert_eq!(session.session, *id);
        }
        let by_tier: Vec<(&'static str, u64, u64)> = report
            .sessions
            .iter()
            .map(|s| (s.tier.name(), s.throughput.frames, s.throughput.pixels))
            .collect();
        assert_eq!(by_tier[0].0, "quest2");
        assert_eq!(by_tier[0].1, 4);
        assert_eq!(by_tier[1].0, "quest-pro");
        assert_eq!(by_tier[1].1, 5, "90 Hz budget");
        assert_eq!(by_tier[2].0, "vision");
        assert_eq!(by_tier[2].1, 5, "96 Hz budget");
        // Pixel telemetry reflects each tier's actual cost, not a shared
        // frame size.
        for session in &report.sessions {
            assert_eq!(
                session.throughput.pixels,
                session.throughput.frames
                    * u64::try_from(
                        ResolutionTier::ALL[session.session]
                            .scale(base)
                            .pixel_count()
                    )
                    .unwrap()
            );
        }
        assert_eq!(
            report.totals.pixels,
            report.sessions.iter().map(|s| s.throughput.pixels).sum()
        );
    }

    #[test]
    fn migrate_moves_a_live_session_and_its_gauges() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 400));
        assert_eq!(runtime.assignment(id), Some(0));
        assert!(runtime.migrate(id, 1), "a live session must move");
        assert_eq!(runtime.assignment(id), Some(1));
        let loads = runtime.shard_loads();
        assert_eq!(loads[0].sessions, 0, "the source released its gauges");
        assert_eq!(loads[0].session_pixels, 0);
        assert_eq!(loads[1].sessions, 1, "the destination picked them up");
        assert_eq!(loads[1].session_pixels, 32 * 32);
        let report = runtime.retire(id);
        assert_eq!(report.throughput.frames, 400, "no frame lost in transit");
        assert_eq!(report.shard, 1, "the report names the new home");
        let service_report = runtime.shutdown();
        assert_eq!(service_report.elasticity.migrated, 1);
        assert_eq!(
            service_report.shards[0].frames + service_report.shards[1].frames,
            400,
            "shard attribution splits at the migration point"
        );
    }

    #[test]
    fn migrate_refuses_completed_sessions_and_self_moves() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        let done = runtime.admit(SessionConfig::synthetic(0, dims(), 2));
        runtime.drain();
        assert!(!runtime.migrate(done, 1), "completed streams stay put");
        let live = runtime.admit(SessionConfig::synthetic(1, dims(), 200));
        assert!(!runtime.migrate(live, 1), "self-migration is refused");
        let report = runtime.shutdown();
        assert_eq!(report.elasticity.migrated, 0);
    }

    #[test]
    fn shed_downgrades_a_live_session_mid_stream() {
        use crate::session::{ResolutionTier, SessionProfile};
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let profile = SessionProfile::for_tier(ResolutionTier::VisionClass, dims(), 600);
        let lower = profile
            .downgraded()
            .expect("vision downgrades to quest-pro");
        let downgraded_frames = lower.frames;
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 600).with_profile(profile));
        assert!(runtime.shed(id, lower), "a live session must shed");
        let report = runtime.retire(id);
        assert_eq!(report.tier, ResolutionTier::QuestPro);
        assert_eq!(report.downgraded_from, Some(ResolutionTier::VisionClass));
        let switch = report
            .downgrade_frame
            .expect("the downgrade landed mid-stream");
        assert!(
            switch < downgraded_frames,
            "the switch point ({switch}) must precede the downgraded budget ({downgraded_frames})"
        );
        assert_eq!(
            report.throughput.frames,
            u64::from(downgraded_frames),
            "the stream finishes on the *downgraded* frame budget"
        );
        let service_report = runtime.shutdown();
        assert_eq!(service_report.elasticity.shed, 1);
    }

    #[test]
    fn drain_rebalances_members_onto_surviving_shards() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 400));
        let dest = runtime.spawn_shard();
        assert_eq!(dest, 1, "spawned shards take fresh stable ids");
        assert_eq!(runtime.shard_count(), 2);
        let drained = runtime.drain_shard(0);
        assert_eq!(drained.shard, 0);
        assert_eq!(drained.sessions, 1, "the shard served before handing off");
        assert_eq!(runtime.shard_count(), 1);
        assert_eq!(
            runtime.assignment(id),
            Some(dest),
            "drain migrated the live member to the survivor"
        );
        let report = runtime.retire(id);
        assert_eq!(report.throughput.frames, 400);
        let service_report = runtime.shutdown();
        assert_eq!(service_report.elasticity.shards_spawned, 1);
        assert_eq!(service_report.elasticity.shards_drained, 1);
        assert_eq!(service_report.elasticity.migrated, 1, "rebalance counts");
        assert_eq!(
            service_report.shards.len(),
            2,
            "drained shards still appear in the final report"
        );
        assert_eq!(service_report.totals.frames, 400);
    }

    #[test]
    fn remaining_pixels_gauge_tracks_admission_and_cancel() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let total = 100_000u64 * 32 * 32;
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 100_000));
        let load = runtime.shard_loads()[0];
        assert!(
            load.remaining_pixels > 0 && load.remaining_pixels <= total,
            "remaining work commits on admission, drains per frame: {}",
            load.remaining_pixels
        );
        let _ = runtime.retire_now(id);
        assert_eq!(
            runtime.shard_loads()[0].remaining_pixels,
            0,
            "hard-cancel decommits the remaining work"
        );
        runtime.shutdown();
    }

    #[test]
    #[should_panic(expected = "cannot drain the last serving shard")]
    fn draining_the_last_shard_panics() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let _ = runtime.drain_shard(0);
    }

    #[test]
    #[should_panic(expected = "unknown or already drained")]
    fn draining_an_unknown_shard_panics() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default().with_shards(2));
        let _ = runtime.drain_shard(7);
    }

    #[test]
    #[should_panic(expected = "was never admitted")]
    fn retiring_an_unknown_session_panics() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let _ = runtime.retire(3);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn retiring_twice_panics() {
        let mut runtime = StreamRuntime::start_static(ServiceConfig::default());
        let id = runtime.admit(SessionConfig::synthetic(0, dims(), 1));
        let _ = runtime.retire(id);
        let _ = runtime.retire(id);
    }
}
